//! `ping` with hardware timestamps: OSNT measures ICMP round-trip time
//! to a host behind the legacy switch — the everyday measurement, made
//! measurement-grade.
//!
//! Request sequence numbers pair departures (recorded by the generator)
//! with echo replies (captured and MAC-stamped by the monitor on the
//! same card port), so each RTT sample is hardware-to-hardware.
//!
//! ```sh
//! cargo run --release --example ping
//! ```

use osnt::core::{DeviceConfig, OsntDevice, PortRole, SimpleHost, Summary};
use osnt::gen::{GenConfig, Schedule, Workload};
use osnt::mon::{HostPathConfig, MonConfig};
use osnt::netsim::{LinkSpec, SimBuilder};
use osnt::packet::icmp::IcmpEcho;
use osnt::packet::parser::L3;
use osnt::packet::{MacAddr, Packet, PacketBuilder};
use osnt::switch::{LegacyConfig, LegacySwitch};
use osnt::time::{DriftModel, SimDuration, SimTime};
use std::net::Ipv4Addr;

const HOST_MAC: MacAddr = MacAddr([0x02, 0, 0, 0, 0, 0x42]);
const HOST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 42);
const MY_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const PING_ID: u16 = 0xBEEF;

/// Emits ICMP echo requests with increasing sequence numbers.
struct PingWorkload;
impl Workload for PingWorkload {
    fn next_frame(&mut self, seq: u64) -> Packet {
        PacketBuilder::ethernet(MacAddr::local(1), HOST_MAC)
            .ipv4(MY_IP, HOST_IP)
            .icmp_echo(PING_ID, seq as u16)
            .payload(b"osnt-rs ping payload....") // 24 B, like iputils
            .build()
    }
}

fn main() {
    let n_pings = 100u64;
    let mut b = SimBuilder::new();
    let device = OsntDevice::install(
        &mut b,
        DeviceConfig {
            clock_model: DriftModel::ideal(),
            clock_seed: 1,
            gps: None,
            gps_signal: osnt::time::GpsSignal::always_on(),
            ports: vec![PortRole::generator(
                Box::new(PingWorkload),
                GenConfig {
                    schedule: Schedule::ConstantPps(1_000.0), // 1 ms interval
                    count: Some(n_pings),
                    record_departures: true,
                    ..GenConfig::default()
                },
            )
            .with_monitor(MonConfig {
                host: HostPathConfig::unlimited(),
                ..MonConfig::default()
            })],
        },
    );
    let sw = b.add_component(
        "switch",
        Box::new(LegacySwitch::new(LegacyConfig::default())),
        4,
    );
    let host = SimpleHost::new(HOST_MAC, HOST_IP);
    let host_counters = host.counters();
    let h = b.add_component("host", Box::new(host), 1);
    b.connect(device.ports[0].id, 0, sw, 0, LinkSpec::ten_gig());
    b.connect(h, 0, sw, 1, LinkSpec::ten_gig());

    let mut sim = b.build();
    sim.run_until(SimTime::from_ms(200));

    // Pair each reply (by ICMP sequence) with its departure.
    let departures = device.ports[0]
        .gen_stats
        .as_ref()
        .unwrap()
        .borrow()
        .departures
        .clone();
    let capture = device.ports[0].capture.borrow();
    let mut rtts = Vec::new();
    for cap in &capture.packets {
        let parsed = cap.packet.parse();
        let Some(L3::Ipv4(ip)) = parsed.l3 else {
            continue;
        };
        if ip.protocol != osnt::packet::ipv4::protocol::ICMP {
            continue;
        }
        let seg_end = (parsed.l4_offset + ip.payload_len()).min(cap.packet.len());
        let Ok(echo) = IcmpEcho::parse(&cap.packet.data()[parsed.l4_offset..seg_end]) else {
            continue;
        };
        if echo.identifier != PING_ID {
            continue;
        }
        let Some(tx) = departures.get(echo.sequence as usize) else {
            continue;
        };
        rtts.push(SimDuration::from_ps(
            cap.rx_stamp.to_ps().saturating_sub(tx.as_ps()),
        ));
    }

    println!(
        "PING {HOST_IP} ({} requests, 24 B payload) through a store-and-forward switch",
        n_pings
    );
    println!(
        "{} replies received, host answered {} echoes",
        rtts.len(),
        host_counters.borrow().echo_replies
    );
    if let Some(s) = Summary::from_durations(&rtts) {
        println!(
            "rtt min/avg/max/mdev = {:.3}/{:.3}/{:.3}/{:.3} us",
            s.min_ns / 1000.0,
            s.mean_ns / 1000.0,
            s.max_ns / 1000.0,
            s.stddev_ns / 1000.0
        );
    }
    assert_eq!(
        rtts.len() as u64,
        n_pings,
        "no ping may be lost on this path"
    );
}
