//! PCAP replay with a tunable inter-departure time (paper §1).
//!
//! Builds a small capture in memory, then replays it three ways —
//! as recorded, 10x faster, and at a fixed 2 µs gap — and shows the
//! departure schedule the generator actually achieved.
//!
//! ```sh
//! cargo run --release --example pcap_replay
//! ```

use osnt::gen::{GenConfig, GeneratorPort, IdtMode, PcapReplay};
use osnt::netsim::{Component, ComponentId, Kernel, LinkSpec, SimBuilder};
use osnt::packet::pcap::{self, PcapRecord, TsResolution};
use osnt::packet::{MacAddr, Packet, PacketBuilder};
use osnt::time::{HwClock, SimDuration, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

struct Sink;
impl Component for Sink {
    fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
}

fn main() {
    // A capture: 8 packets with 100/300/500… µs gaps, mixed sizes.
    let mut records = Vec::new();
    let mut t = 0u64;
    for i in 0..8u32 {
        t += (100 + 200 * (i as u64 % 3)) * 1_000_000; // ps
        let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(192, 168, 0, 1), Ipv4Addr::new(192, 168, 0, 2))
            .udp(4000, 4001)
            .ip_identification(i as u16)
            .pad_to_frame(if i % 2 == 0 { 64 } else { 1518 })
            .build();
        records.push(PcapRecord::full(t, pkt.into_vec()));
    }
    // Round-trip through the real file format, like loading from disk.
    let image = pcap::to_bytes(&records, TsResolution::Nano);
    let records = pcap::from_bytes(&image).expect("valid pcap");
    println!(
        "capture: {} packets, {} byte pcap image\n",
        records.len(),
        image.len()
    );

    for (label, mode) in [
        ("as recorded", IdtMode::AsRecorded),
        ("10x faster", IdtMode::Scaled(0.1)),
        ("fixed 2us", IdtMode::Fixed(SimDuration::from_us(2))),
    ] {
        let mut b = SimBuilder::new();
        let clock = Rc::new(RefCell::new(HwClock::ideal()));
        let (port, stats) = GeneratorPort::from_replay(
            PcapReplay::new(records.clone(), mode),
            GenConfig {
                record_departures: true,
                ..GenConfig::default()
            },
            clock,
        );
        let g = b.add_component("replay", Box::new(port), 1);
        let s = b.add_component("sink", Box::new(Sink), 1);
        b.connect(g, 0, s, 0, LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1));
        let departures = stats.borrow().departures.clone();
        let gaps: Vec<String> = departures
            .windows(2)
            .map(|w| format!("{:.1}", (w[1] - w[0]).as_ns_f64() / 1000.0))
            .collect();
        println!(
            "{label:<14} departures={} gaps(us)=[{}]",
            departures.len(),
            gaps.join(", ")
        );
    }
    println!(
        "\nEach mode reshapes the inter-departure times while replaying\n\
         the identical bytes; gaps shorter than a frame's wire time are\n\
         floored at line rate."
    );
}
