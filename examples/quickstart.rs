//! Quickstart: generate a stamped stream through a cable, capture it,
//! and print latency statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the smallest complete OSNT-rs program: one card, two ports,
//! one cable, and the measurement primitives from `osnt_core`.

use osnt::core::{latencies_from_capture, DeviceConfig, OsntDevice, PortRole, Summary};
use osnt::gen::txstamp::StampConfig;
use osnt::gen::workload::FixedTemplate;
use osnt::gen::{GenConfig, Schedule};
use osnt::netsim::{LinkSpec, SimBuilder};
use osnt::time::{DriftModel, SimTime};

fn main() {
    // 1. A simulation with one OSNT card: port 0 generates, port 1
    //    captures.
    let mut builder = SimBuilder::new();
    let gen_cfg = GenConfig {
        schedule: Schedule::ConstantPps(500_000.0),
        count: Some(10_000),
        stamp: Some(StampConfig::default_payload()),
        ..GenConfig::default()
    };
    let device = OsntDevice::install(
        &mut builder,
        DeviceConfig {
            clock_model: DriftModel::ideal(),
            clock_seed: 1,
            gps: None,
            gps_signal: osnt::time::GpsSignal::always_on(),
            ports: vec![
                PortRole::generator(
                    Box::new(FixedTemplate::new(FixedTemplate::udp_frame(256))),
                    gen_cfg,
                ),
                PortRole::monitor_only(),
            ],
        },
    );

    // 2. Wire port 0 to port 1 with a 10 GbE cable.
    builder.connect(
        device.ports[0].id,
        0,
        device.ports[1].id,
        0,
        LinkSpec::ten_gig(),
    );

    // 3. Run 50 ms of simulated time.
    let mut sim = builder.build();
    sim.run_until(SimTime::from_ms(50));

    // 4. Report.
    let sent = device.ports[0]
        .gen_stats
        .as_ref()
        .unwrap()
        .borrow()
        .sent_frames;
    let capture = device.ports[1].capture.borrow();
    let latencies = latencies_from_capture(&capture, StampConfig::DEFAULT_OFFSET);
    println!("sent     : {sent} frames");
    println!("captured : {} frames", capture.len());
    match Summary::from_durations(&latencies) {
        Some(s) => println!("latency  : {}", s.to_line()),
        None => println!("latency  : no samples"),
    }
    assert_eq!(sent as usize, capture.len(), "a cable loses nothing");
}
