//! Using the tester to characterise a faulty link: inject seeded loss
//! and jitter, then measure both from the capture — loss via sequence
//! tags, delay distribution via embedded timestamps.
//!
//! ```sh
//! cargo run --release --example impaired_link
//! ```

use osnt::core::{
    analyze_sequence, latencies_from_capture, DeviceConfig, OsntDevice, PortRole, Summary,
};
use osnt::gen::txstamp::StampConfig;
use osnt::gen::workload::FixedTemplate;
use osnt::gen::{GenConfig, Schedule};
use osnt::mon::{HostPathConfig, MonConfig};
use osnt::netsim::{ImpairConfig, Impairment, LinkSpec, SimBuilder};
use osnt::time::{DriftModel, SimDuration, SimTime};

fn main() {
    let n_frames = 20_000u64;
    let injected_loss = 0.03;

    let mut b = SimBuilder::new();
    let device = OsntDevice::install(
        &mut b,
        DeviceConfig {
            clock_model: DriftModel::ideal(),
            clock_seed: 1,
            gps: None,
            gps_signal: osnt::time::GpsSignal::always_on(),
            ports: vec![
                PortRole::generator(
                    Box::new(FixedTemplate::new(FixedTemplate::udp_frame(512)).with_sequence_tag()),
                    GenConfig {
                        schedule: Schedule::ConstantPps(1_000_000.0),
                        count: Some(n_frames),
                        stamp: Some(StampConfig::default_payload()),
                        ..GenConfig::default()
                    },
                ),
                PortRole::monitor_only().with_monitor(MonConfig {
                    host: HostPathConfig::unlimited(),
                    ..MonConfig::default()
                }),
            ],
        },
    );
    let impairment = Impairment::new(ImpairConfig {
        drop_probability: injected_loss,
        extra_delay: SimDuration::from_us(20),
        jitter: SimDuration::from_us(15),
        seed: 4242,
    });
    let imp = b.add_component("bad-link", Box::new(impairment), 2);
    b.connect(device.ports[0].id, 0, imp, 0, LinkSpec::ten_gig());
    b.connect(imp, 1, device.ports[1].id, 0, LinkSpec::ten_gig());

    let mut sim = b.build();
    sim.run_until(SimTime::from_ms(50));

    let capture = device.ports[1].capture.borrow();
    let seq = analyze_sequence(&capture);
    println!(
        "sent {n_frames} frames through a link with {:.0}% injected loss, 20±15 µs delay\n",
        injected_loss * 100.0
    );
    println!("sequence analysis:");
    println!("  received   : {}", seq.tagged);
    println!(
        "  lost       : {} ({:.2}%)",
        seq.lost,
        seq.loss_fraction(n_frames) * 100.0
    );
    println!("  reordered  : {}", seq.reordered);
    println!("  duplicated : {}", seq.duplicated);

    let lat = latencies_from_capture(&capture, StampConfig::DEFAULT_OFFSET);
    if let Some(s) = Summary::from_durations(&lat) {
        println!("\nlatency (wire + injected delay):\n  {}", s.to_line());
    }
}
