//! Demo Part II as a runnable example: evaluate an OpenFlow switch with
//! OFLOPS-turbo — flow-table update latency seen from the control plane
//! vs the data plane, plus forwarding consistency (paper §2).
//!
//! ```sh
//! cargo run --release --example openflow_eval
//! ```

use osnt::gen::txstamp::StampConfig;
use osnt::gen::{GenConfig, Schedule};
use osnt::oflops::modules::{
    AddLatencyModule, AddLatencyReport, ConsistencyModule, ConsistencyReport, RoundRobinDst,
};
use osnt::oflops::{Testbed, TestbedSpec};
use osnt::switch::OfSwitchConfig;
use osnt::time::SimTime;

const N_RULES: usize = 50;

fn probe() -> (Box<RoundRobinDst>, GenConfig) {
    (
        Box::new(RoundRobinDst::new(N_RULES, 128)),
        GenConfig {
            schedule: Schedule::ConstantPps(2_000_000.0),
            start_at: SimTime::from_ms(5),
            stop_at: Some(SimTime::from_ms(60)),
            stamp: Some(StampConfig::default_payload()),
            ..GenConfig::default()
        },
    )
}

fn main() {
    // --- Flow insertion latency -------------------------------------
    let (module, state) = AddLatencyModule::new(N_RULES, SimTime::from_ms(10));
    let (workload, gen_cfg) = probe();
    let mut tb = Testbed::build(
        TestbedSpec {
            switch: OfSwitchConfig::default(),
            probe: Some((workload, gen_cfg)),
            ..TestbedSpec::control_only()
        },
        Box::new(module),
    );
    tb.run_until(SimTime::from_ms(70));
    let add = AddLatencyReport::analyze(&tb, &state.borrow(), N_RULES);
    println!("Flow insertion ({N_RULES} rules):");
    println!(
        "  control plane (barrier reply): {}",
        add.barrier_latency
            .map(|d| d.to_string())
            .unwrap_or("-".into())
    );
    println!(
        "  data plane (median / max rule activation): {} / {}",
        add.median_activation()
            .map(|d| d.to_string())
            .unwrap_or("-".into()),
        add.max_activation()
            .map(|d| d.to_string())
            .unwrap_or("-".into()),
    );
    println!(
        "  rules that became active only AFTER the barrier reply: {}/{}\n",
        add.activated_after_barrier, N_RULES
    );

    // --- Forwarding consistency during a large update ----------------
    let (module, state) = ConsistencyModule::new(N_RULES, SimTime::from_ms(20));
    let (workload, gen_cfg) = probe();
    let mut tb = Testbed::build(
        TestbedSpec {
            switch: OfSwitchConfig::default(),
            probe: Some((workload, gen_cfg)),
            ..TestbedSpec::control_only()
        },
        Box::new(module),
    );
    tb.run_until(SimTime::from_ms(80));
    let cons = ConsistencyReport::analyze(&tb, &state.borrow(), N_RULES);
    println!("Rule rewrite A→B ({N_RULES} rules):");
    println!(
        "  barrier latency: {}",
        cons.barrier_latency
            .map(|d| d.to_string())
            .unwrap_or("-".into())
    );
    println!(
        "  slowest rule migration: {}",
        cons.max_activation()
            .map(|d| d.to_string())
            .unwrap_or("-".into())
    );
    println!(
        "  packets still forwarded per the OLD rules after the switch\n\
         \x20 acknowledged the update: {} (worst lag {})",
        cons.stale_after_barrier,
        cons.max_stale_lag
            .map(|d| d.to_string())
            .unwrap_or("-".into())
    );
    println!(
        "\nThe gap between barrier reply and data-plane convergence is the\n\
         OFLOPS-turbo finding this demo exists to showcase."
    );
}
