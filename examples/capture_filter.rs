//! Hardware capture features: wildcard filtering, packet thinning and
//! the loss-limited host path (paper §1).
//!
//! A 64-flow aggregate at full line rate is captured three ways and the
//! resulting host delivery is compared. Also writes the filtered capture
//! to `/tmp/osnt_capture.pcap` (nanosecond pcap).
//!
//! ```sh
//! cargo run --release --example capture_filter
//! ```

use osnt::gen::workload::FlowPool;
use osnt::gen::{GenConfig, GeneratorPort, Schedule};
use osnt::mon::{FilterAction, FilterTable, MonConfig, MonitorPort, ThinConfig};
use osnt::netsim::{LinkSpec, SimBuilder};
use osnt::packet::wildcard::IpPrefix;
use osnt::packet::WildcardRule;
use osnt::time::{HwClock, SimTime};
use std::cell::RefCell;
use std::net::{IpAddr, Ipv4Addr};
use std::rc::Rc;

fn run(mon_cfg: MonConfig, label: &str) -> Rc<RefCell<osnt::mon::CaptureBuffer>> {
    let mut b = SimBuilder::new();
    let clock = Rc::new(RefCell::new(HwClock::ideal()));
    let (gen, _) = GeneratorPort::new(
        Box::new(FlowPool::new(64, 512, 7)),
        GenConfig {
            schedule: Schedule::BackToBack,
            stop_at: Some(SimTime::from_ms(10)),
            ..GenConfig::default()
        },
        clock.clone(),
    );
    let (mon, buffer, stats) = MonitorPort::new(mon_cfg, clock);
    let g = b.add_component("gen", Box::new(gen), 1);
    let m = b.add_component("mon", Box::new(mon), 1);
    b.connect(g, 0, m, 0, LinkSpec::ten_gig());
    let mut sim = b.build();
    sim.run_until(SimTime::from_ms(12));
    let s = *stats.borrow();
    println!(
        "{label:<28} rx={:>7} filtered={:>7} host={:>7} drops={:>6} ({:.1}% of passed)",
        s.rx_frames,
        s.filtered_out,
        s.host_frames,
        s.host_drops,
        s.host_delivery_ratio().unwrap_or(1.0) * 100.0
    );
    buffer
}

fn main() {
    println!("64 UDP flows, 512 B frames, full line rate for 10 ms:\n");

    // Everything, full frames: the DMA cannot keep up.
    run(MonConfig::default(), "capture-all, full frames");

    // Everything, thinned to 64 B with a CRC of the original.
    run(
        MonConfig {
            thin: ThinConfig::cut_with_hash(64),
            ..MonConfig::default()
        },
        "capture-all, thin to 64B",
    );

    // Only one subnet's traffic (wildcard filter in hardware).
    let mut filter = FilterTable::drop_by_default();
    filter.push(
        WildcardRule::any().with_src_ip(IpPrefix::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 0)),
            28, // 16 of the 64 flows
        )),
        FilterAction::Capture,
    );
    let buffer = run(
        MonConfig {
            filter,
            ..MonConfig::default()
        },
        "filter 10.0.0.0/28, full",
    );

    // Export the filtered capture as a nanosecond pcap.
    let bytes = buffer
        .borrow()
        .write_pcap(Vec::new())
        .expect("in-memory pcap");
    std::fs::write("/tmp/osnt_capture.pcap", &bytes).expect("write pcap");
    println!(
        "\nwrote {} packets ({} bytes) to /tmp/osnt_capture.pcap",
        buffer.borrow().len(),
        bytes.len()
    );
}
