//! Demo Part I as a runnable example: measure a legacy switch's
//! packet-processing latency under increasing load (paper §2, Fig. 2).
//!
//! ```sh
//! cargo run --release --example legacy_switch_latency
//! ```

use osnt::core::LatencyExperiment;
use osnt::switch::LegacyConfig;
use osnt::time::SimDuration;

fn main() {
    println!("Legacy switch latency under load (Fig. 2 topology)\n");
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "load(%)", "probes", "p50(ns)", "p99(ns)", "max(ns)", "loss(%)"
    );
    for load in [0.0f64, 0.25, 0.5, 0.75, 0.9, 0.98] {
        let experiment = LatencyExperiment {
            background_load: load,
            duration: SimDuration::from_ms(20),
            warmup: SimDuration::from_ms(5),
            ..LatencyExperiment::default()
        };
        let report = experiment
            .run_legacy(LegacyConfig::default())
            .expect("statically valid experiment");
        match &report.latency {
            Some(s) => println!(
                "{:>10.0} {:>8} {:>10.0} {:>10.0} {:>10.0} {:>9.2}",
                load * 100.0,
                report.probe_sent,
                s.p50_ns,
                s.p99_ns,
                s.max_ns,
                report.loss * 100.0
            ),
            None => println!(
                "{:>10.0} {:>8} {:>10} {:>10} {:>10} {:>9.2}",
                load * 100.0,
                report.probe_sent,
                "-",
                "-",
                "-",
                report.loss * 100.0
            ),
        }
    }
    println!(
        "\nThe curve is flat while the output port has headroom, then\n\
         queueing dominates as the background load approaches line rate."
    );
}
