//! Integration test of the full demo scenario (paper Fig. 2), spanning
//! every crate: time, packet, netsim, gen, mon, switch, openflow,
//! oflops and core.

use osnt::core::LatencyExperiment;
use osnt::gen::txstamp::StampConfig;
use osnt::gen::{GenConfig, Schedule};
use osnt::oflops::modules::{AddLatencyModule, AddLatencyReport, RoundRobinDst};
use osnt::oflops::{Testbed, TestbedSpec};
use osnt::switch::{LegacyConfig, OfSwitchConfig};
use osnt::time::{DriftModel, ServoGains, SimDuration, SimTime};

#[test]
fn part_one_legacy_switch_latency_curve() {
    // The measured latency-vs-load relation must be monotone and show
    // the saturation knee.
    let mut medians = Vec::new();
    for load in [0.0f64, 0.5, 0.9, 0.98] {
        let exp = LatencyExperiment {
            background_load: load,
            duration: SimDuration::from_ms(15),
            warmup: SimDuration::from_ms(4),
            ..LatencyExperiment::default()
        };
        let r = exp.run_legacy(LegacyConfig::default()).expect("valid run");
        assert_eq!(r.loss, 0.0, "no loss below saturation (load {load})");
        medians.push(r.latency.expect("samples").p50_ns);
    }
    for w in medians.windows(2) {
        assert!(
            w[1] >= w[0],
            "latency must not decrease with load: {medians:?}"
        );
    }
    assert!(
        medians[3] > medians[0] * 3.0,
        "saturation knee missing: {medians:?}"
    );
}

#[test]
fn part_one_with_realistic_clocks_still_measures_accurately() {
    // GPS-disciplined commodity clocks must agree with ideal clocks to
    // well under a microsecond.
    let ideal = LatencyExperiment {
        duration: SimDuration::from_ms(15),
        warmup: SimDuration::from_ms(4),
        ..LatencyExperiment::default()
    }
    .run_legacy(LegacyConfig::default())
    .expect("valid run")
    .latency
    .unwrap();
    let real = LatencyExperiment {
        duration: SimDuration::from_ms(15),
        warmup: SimDuration::from_ms(4),
        clock_model: DriftModel::commodity_xo(),
        seed: 3,
        ..LatencyExperiment::default()
    }
    .run_legacy(LegacyConfig::default())
    .expect("valid run")
    .latency
    .unwrap();
    let err = (real.mean_ns - ideal.mean_ns).abs();
    // Short run: the free-running drift contribution stays small; the
    // dominant error is stamp quantisation plus reading jitter.
    assert!(err < 1_000.0, "clock-induced error {err} ns");
}

#[test]
fn part_two_openflow_insertion_measured_on_both_planes() {
    let n = 30usize;
    let (module, state) = AddLatencyModule::new(n, SimTime::from_ms(10));
    let spec = TestbedSpec {
        switch: OfSwitchConfig::default(),
        probe: Some((
            Box::new(RoundRobinDst::new(n, 128)),
            GenConfig {
                schedule: Schedule::ConstantPps(2_000_000.0),
                start_at: SimTime::from_ms(5),
                stop_at: Some(SimTime::from_ms(40)),
                stamp: Some(StampConfig::default_payload()),
                ..GenConfig::default()
            },
        )),
        ..TestbedSpec::control_only()
    };
    let mut tb = Testbed::build(spec, Box::new(module));
    tb.run_until(SimTime::from_ms(50));
    let report = AddLatencyReport::analyze(&tb, &state.borrow(), n);
    let barrier = report.barrier_latency.expect("barrier");
    let max_act = report.max_activation().expect("activations");
    assert_eq!(report.never_activated(), 0);
    assert!(
        max_act > barrier,
        "data plane must lag the dishonest barrier"
    );
    // Growth with batch size: run n=5 for comparison.
    let (module5, state5) = AddLatencyModule::new(5, SimTime::from_ms(10));
    let spec5 = TestbedSpec {
        switch: OfSwitchConfig::default(),
        probe: Some((
            Box::new(RoundRobinDst::new(5, 128)),
            GenConfig {
                schedule: Schedule::ConstantPps(2_000_000.0),
                start_at: SimTime::from_ms(5),
                stop_at: Some(SimTime::from_ms(40)),
                stamp: Some(StampConfig::default_payload()),
                ..GenConfig::default()
            },
        )),
        ..TestbedSpec::control_only()
    };
    let mut tb5 = Testbed::build(spec5, Box::new(module5));
    tb5.run_until(SimTime::from_ms(50));
    let report5 = AddLatencyReport::analyze(&tb5, &state5.borrow(), 5);
    assert!(
        report.barrier_latency.unwrap() > report5.barrier_latency.unwrap(),
        "larger batches take longer on the control plane"
    );
}

#[test]
fn gps_keeps_one_way_measurements_honest_across_cards() {
    // Two *different* clocks (as if TX and RX were separate cards) both
    // GPS-disciplined: their mutual offset must stay sub-µs, which is
    // what makes one-way latency measurement possible at all.
    use osnt::time::{GpsDiscipline, HwClock};
    let mut a = HwClock::new(DriftModel::commodity_xo(), 100);
    let mut b = HwClock::new(DriftModel::commodity_xo(), 200);
    let mut da = GpsDiscipline::new(ServoGains::default());
    let mut db = GpsDiscipline::new(ServoGains::default());
    for s in 1..=120u64 {
        let t = SimTime::from_secs(s);
        da.on_pps(&mut a, t);
        db.on_pps(&mut b, t);
    }
    let t = SimTime::from_secs(121);
    a.advance_to(t);
    b.advance_to(t);
    let mutual = (a.offset_ps() - b.offset_ps()).abs();
    assert!(mutual < 1e6, "mutual card offset {mutual} ps exceeds 1 µs");
    assert!(da.is_locked() && db.is_locked());
}
