//! Property-based tests over the core data structures and invariants.

use osnt::packet::pcap::{self, PcapRecord, TsResolution};
use osnt::packet::wildcard::IpPrefix;
use osnt::packet::{MacAddr, PacketBuilder, WildcardRule};
use osnt::time::{HwTimestamp, SimDuration, SimTime};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(|mut b| {
        b[0] &= 0xfe; // unicast
        MacAddr::new(b)
    })
}

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    // ---------------- timestamps ----------------

    #[test]
    fn timestamp_roundtrip_error_is_bounded(ps in 0u64..90_000_000_000_000) {
        let ts = HwTimestamp::from_sim_time(SimTime::from_ps(ps));
        let back = ts.to_ps();
        prop_assert!(back <= ps);
        prop_assert!(ps - back <= osnt::time::timestamp::MAX_ROUNDTRIP_ERROR_PS);
    }

    #[test]
    fn timestamp_encoding_is_monotone(a in 0u64..1_000_000_000_000, b in 0u64..1_000_000_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ta = HwTimestamp::from_sim_time(SimTime::from_ps(lo));
        let tb = HwTimestamp::from_sim_time(SimTime::from_ps(hi));
        prop_assert!(ta <= tb);
        prop_assert!(ta.to_ps() <= tb.to_ps());
    }

    #[test]
    fn timestamp_wire_roundtrip(raw in any::<u64>()) {
        let ts = HwTimestamp::from_raw(raw);
        prop_assert_eq!(HwTimestamp::from_be_bytes(ts.to_be_bytes()), ts);
    }

    #[test]
    fn sim_duration_sum_is_associative(a in 0u64..1u64<<40, b in 0u64..1u64<<40, c in 0u64..1u64<<40) {
        let (da, db, dc) = (SimDuration::from_ps(a), SimDuration::from_ps(b), SimDuration::from_ps(c));
        prop_assert_eq!((da + db) + dc, da + (db + dc));
    }

    // ---------------- packets ----------------

    #[test]
    fn udp_frame_roundtrips_fields(
        src_mac in arb_mac(),
        dst_mac in arb_mac(),
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
        sport in 1u16..,
        dport in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let pkt = PacketBuilder::ethernet(src_mac, dst_mac)
            .ipv4(src_ip, dst_ip)
            .udp(sport, dport)
            .payload(&payload)
            .build();
        let v = pkt.parse();
        prop_assert_eq!(v.src_mac(), Some(src_mac));
        prop_assert_eq!(v.dst_mac(), Some(dst_mac));
        let ft = v.five_tuple().expect("five tuple");
        prop_assert_eq!(ft.src_ip, IpAddr::V4(src_ip));
        prop_assert_eq!(ft.dst_ip, IpAddr::V4(dst_ip));
        prop_assert_eq!(ft.src_port, sport);
        prop_assert_eq!(ft.dst_port, dport);
        // The frame respects the Ethernet minimum.
        prop_assert!(pkt.frame_len() >= 64);
        // Payload is recoverable (zero-padded frames may append padding).
        let got = v.l4_payload().expect("payload view");
        prop_assert!(got.len() >= payload.len());
        prop_assert_eq!(&got[..payload.len()], &payload[..]);
    }

    #[test]
    fn tcp_frame_checksum_always_verifies(
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
        sport in 1u16..,
        dport in 1u16..,
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        use osnt::packet::checksum::{pseudo_header_v4, Checksum};
        use osnt::packet::parser::L3;
        let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(src_ip, dst_ip)
            .tcp(sport, dport, seq)
            .payload(&payload)
            .build();
        let v = pkt.parse();
        let Some(L3::Ipv4(ip)) = v.l3 else { panic!("not ipv4") };
        let seg = &pkt.data()[v.l4_offset..v.l4_offset + ip.payload_len()];
        let mut c = Checksum::new();
        pseudo_header_v4(&mut c, ip.src, ip.dst, 6, seg.len() as u16);
        c.add_bytes(seg);
        prop_assert_eq!(c.finish(), 0);
    }

    #[test]
    fn pad_to_frame_hits_any_legal_size(target in 64usize..=1518) {
        let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(1, 2)
            .pad_to_frame(target)
            .build();
        prop_assert_eq!(pkt.frame_len(), target);
        prop_assert!(pkt.parse().five_tuple().is_some());
    }

    // ---------------- pcap ----------------

    #[test]
    fn pcap_nano_roundtrip(
        recs in proptest::collection::vec(
            (0u64..1u64 << 50, proptest::collection::vec(any::<u8>(), 0..128)),
            0..20,
        )
    ) {
        let records: Vec<PcapRecord> = recs
            .into_iter()
            .map(|(ts, data)| PcapRecord::full(ts - ts % 1000, data))
            .collect();
        let img = pcap::to_bytes(&records, TsResolution::Nano);
        let back = pcap::from_bytes(&img).unwrap();
        prop_assert_eq!(back, records);
    }

    // ---------------- wildcard rules ----------------

    #[test]
    fn rule_from_own_fields_always_matches(
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
        sport in 1u16..,
        dport in 1u16..,
    ) {
        let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(src_ip, dst_ip)
            .udp(sport, dport)
            .build();
        let rule = WildcardRule::any()
            .with_src_mac(MacAddr::local(1))
            .with_dst_mac(MacAddr::local(2))
            .with_src_ip(IpPrefix::host(IpAddr::V4(src_ip)))
            .with_dst_ip(IpPrefix::host(IpAddr::V4(dst_ip)))
            .with_ip_protocol(17)
            .with_src_port(sport)
            .with_dst_port(dport);
        prop_assert!(rule.matches(&pkt.parse()));
        prop_assert!(WildcardRule::any().matches(&pkt.parse()));
    }

    #[test]
    fn prefix_contains_is_consistent_with_masking(
        base in any::<u32>(),
        addr in any::<u32>(),
        len in 0u8..=32,
    ) {
        let p = IpPrefix::new(IpAddr::V4(Ipv4Addr::from(base)), len);
        let expected = len == 0 || (base ^ addr) >> (32 - len as u32) == 0;
        prop_assert_eq!(p.contains(IpAddr::V4(Ipv4Addr::from(addr))), expected);
    }

    // ---------------- hashing ----------------

    #[test]
    fn crc32_streaming_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        use osnt::packet::hash::{crc32, crc32_update};
        let split = split.min(data.len());
        let mut state = 0xffff_ffffu32;
        state = crc32_update(state, &data[..split]);
        state = crc32_update(state, &data[split..]);
        prop_assert_eq!(state ^ 0xffff_ffff, crc32(&data));
    }
}

// ---------------- queue model check ----------------

proptest! {
    #[test]
    fn byte_fifo_agrees_with_model(ops in proptest::collection::vec((any::<bool>(), 1usize..2000), 1..200)) {
        use osnt::netsim::ByteFifo;
        use std::collections::VecDeque;
        let cap = 4096usize;
        let mut fifo: ByteFifo<usize> = ByteFifo::with_byte_limit(cap);
        let mut model: VecDeque<(usize, usize)> = VecDeque::new();
        let mut model_bytes = 0usize;
        for (i, (push, size)) in ops.into_iter().enumerate() {
            if push {
                let fits = model_bytes + size <= cap;
                let r = fifo.push(i, size);
                prop_assert_eq!(r == osnt::netsim::queue::EnqueueResult::Enqueued, fits);
                if fits {
                    model.push_back((i, size));
                    model_bytes += size;
                }
            } else {
                let got = fifo.pop();
                let want = model.pop_front();
                if let Some((v, s)) = want {
                    model_bytes -= s;
                    prop_assert_eq!(got, Some(v));
                } else {
                    prop_assert_eq!(got, None);
                }
            }
            prop_assert_eq!(fifo.bytes(), model_bytes);
            prop_assert_eq!(fifo.len(), model.len());
        }
    }
}

// ---------------- OpenFlow codec ----------------

proptest! {
    #[test]
    fn flow_mod_wire_roundtrip(
        dst in any::<u32>(),
        priority in any::<u16>(),
        cookie in any::<u64>(),
        idle in any::<u16>(),
        hard in any::<u16>(),
        port in 1u16..1000,
        xid in any::<u32>(),
    ) {
        use osnt::openflow::messages::{FlowMod, Message};
        use osnt::openflow::{Action, OfMatch};
        let mut fm = FlowMod::add(
            OfMatch::ipv4_dst(Ipv4Addr::from(dst)),
            priority,
            vec![Action::Output { port, max_len: 0 }],
        );
        fm.cookie = cookie;
        fm.idle_timeout = idle;
        fm.hard_timeout = hard;
        let msg = Message::FlowMod(fm);
        let wire = msg.encode(xid);
        let (back, back_xid) = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(back_xid, xid);
    }

    #[test]
    fn echo_roundtrip_any_payload(data in proptest::collection::vec(any::<u8>(), 0..1024), xid in any::<u32>()) {
        use osnt::openflow::messages::{EchoData, Message};
        let msg = Message::EchoRequest(EchoData(data));
        let wire = msg.encode(xid);
        let (back, _) = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn codec_reassembles_any_chunking(chunk in 1usize..64, xids in proptest::collection::vec(any::<u32>(), 1..10)) {
        use osnt::openflow::messages::Message;
        use osnt::openflow::MessageCodec;
        let wire: Vec<u8> = xids.iter().flat_map(|x| Message::BarrierRequest.encode(*x)).collect();
        let mut codec = MessageCodec::new();
        let mut got = Vec::new();
        for c in wire.chunks(chunk) {
            codec.feed(c);
            got.extend(codec.drain_messages().unwrap());
        }
        prop_assert_eq!(got.len(), xids.len());
        for ((m, x), want) in got.iter().zip(&xids) {
            prop_assert_eq!(m, &Message::BarrierRequest);
            prop_assert_eq!(x, want);
        }
    }
}

// ---------------- OpenFlow match & flow table ----------------

fn arb_of_match() -> impl Strategy<Value = osnt::openflow::OfMatch> {
    use osnt::openflow::match_field::wildcards;
    use osnt::openflow::OfMatch;
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        1u16..,
        1u16..,
        0u8..=32,
        0u8..=32,
    )
        .prop_map(|(dst, src, wc_bits, tp_src, tp_dst, src_len, dst_len)| {
            let mut m = OfMatch::any();
            m.dl_type = 0x0800;
            m.nw_dst = Ipv4Addr::from(dst);
            m.nw_src = Ipv4Addr::from(src);
            m.tp_src = tp_src;
            m.tp_dst = tp_dst;
            // Randomly expose some exact-match fields.
            if wc_bits & 1 != 0 {
                m.wildcards &= !wildcards::DL_TYPE;
            }
            if wc_bits & 2 != 0 {
                m.wildcards &= !wildcards::TP_SRC;
            }
            if wc_bits & 4 != 0 {
                m.wildcards &= !wildcards::TP_DST;
            }
            m.set_nw_src_prefix(src_len);
            m.set_nw_dst_prefix(dst_len);
            m
        })
}

proptest! {
    #[test]
    fn of_match_wire_roundtrip(m in arb_of_match()) {
        use osnt::openflow::OfMatch;
        let mut buf = Vec::new();
        m.write_to(&mut buf);
        prop_assert_eq!(OfMatch::parse(&buf).unwrap(), m);
    }

    #[test]
    fn covers_is_reflexive_and_any_covers_all(m in arb_of_match()) {
        use osnt::switch::flowtable::covers;
        use osnt::openflow::OfMatch;
        prop_assert!(covers(&m, &m));
        prop_assert!(covers(&OfMatch::any(), &m));
    }

    #[test]
    fn covering_filter_matches_superset_of_packets(
        m in arb_of_match(),
        dst in any::<u32>(),
        dport in 1u16..,
    ) {
        // If `any` state: for every packet the entry matches, a covering
        // filter must match too. Test with the wide filter = entry with
        // one more wildcarded field.
        use osnt::openflow::match_field::wildcards;
        let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::from(dst))
            .udp(5001, dport)
            .build();
        let mut wide = m;
        wide.wildcards |= wildcards::TP_DST; // strictly wider or equal
        if m.matches(1, &pkt.parse()) {
            prop_assert!(wide.matches(1, &pkt.parse()));
        }
        prop_assert!(osnt::switch::flowtable::covers(&wide, &m));
    }

    #[test]
    fn flow_table_lookup_respects_priority(
        prios in proptest::collection::vec(0u16..1000, 2..20),
    ) {
        use osnt::openflow::{Action, OfMatch};
        use osnt::switch::{FlowEntry, FlowTable};
        use osnt::time::SimTime;
        // All entries match everything; lookup must return the highest
        // priority.
        let mut t = FlowTable::new(prios.len());
        for (i, p) in prios.iter().enumerate() {
            // Distinct cookies so identical (match, priority) replacing
            // doesn't confuse the expectation: track the max that
            // survives.
            let mut e = FlowEntry::new(
                OfMatch::any(),
                *p,
                vec![Action::Output { port: (i % 4 + 1) as u16, max_len: 0 }],
                SimTime::ZERO,
            );
            e.cookie = i as u64;
            t.add(e).unwrap();
        }
        let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(1, 2)
            .build();
        let best = t.lookup(1, &pkt.parse()).unwrap().priority;
        // Duplicated (match, priority) pairs replace in place, so the
        // best priority is still the max of the list.
        prop_assert_eq!(best, *prios.iter().max().unwrap());
    }
}

// ---------------- latency summaries ----------------

proptest! {
    #[test]
    fn summary_percentiles_are_ordered(samples in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        use osnt::core::Summary;
        let d: Vec<SimDuration> = samples.iter().map(|&n| SimDuration::from_ns(n)).collect();
        let s = Summary::from_durations(&d).unwrap();
        prop_assert!(s.min_ns <= s.p50_ns);
        prop_assert!(s.p50_ns <= s.p90_ns);
        prop_assert!(s.p90_ns <= s.p99_ns);
        prop_assert!(s.p99_ns <= s.max_ns);
        prop_assert!(s.min_ns <= s.mean_ns && s.mean_ns <= s.max_ns);
        prop_assert_eq!(s.count, samples.len());
    }
}

// ---------------- streaming summary parity ----------------

proptest! {
    /// `StreamingSummary` must agree with the exact collect-and-sort
    /// `Summary` on any sample sequence: count/min/max/mean/jitter
    /// bit-for-bit (same accumulation order), stddev to floating-point
    /// association, percentiles within the documented 1/256 relative
    /// error bound.
    #[test]
    fn streaming_summary_matches_exact_summary(
        samples in proptest::collection::vec(1u64..20_000_000_000, 1..400),
    ) {
        use osnt::core::{StreamingSummary, Summary};
        let d: Vec<SimDuration> = samples.iter().map(|&p| SimDuration::from_ps(p)).collect();
        let exact = Summary::from_durations(&d).unwrap();
        let mut stream = StreamingSummary::new();
        for s in &d {
            stream.record(*s);
        }
        let got = stream.finish().unwrap();
        prop_assert_eq!(got.count, exact.count);
        prop_assert_eq!(got.min_ns, exact.min_ns);
        prop_assert_eq!(got.max_ns, exact.max_ns);
        prop_assert_eq!(got.mean_ns, exact.mean_ns);
        prop_assert_eq!(got.jitter_ns, exact.jitter_ns);
        let sd_tol = 1e-6 * exact.stddev_ns.max(1.0);
        prop_assert!((got.stddev_ns - exact.stddev_ns).abs() <= sd_tol,
            "stddev {} vs {}", got.stddev_ns, exact.stddev_ns);
        for (g, e) in [(got.p50_ns, exact.p50_ns), (got.p90_ns, exact.p90_ns), (got.p99_ns, exact.p99_ns)] {
            let rel = (g - e).abs() / e.max(1e-9);
            prop_assert!(rel <= 1.0 / 256.0 + 1e-12, "quantile rel error {rel}: {g} vs {e}");
        }
    }

    /// Sharded merge: splitting a stream into chunks, summarising each
    /// independently and merging must reproduce the single-stream
    /// result — and the merge must be order-independent for everything
    /// except jitter (whose boundary terms depend on concatenation
    /// order by definition).
    #[test]
    fn streaming_merge_is_order_independent(
        samples in proptest::collection::vec(1u64..20_000_000_000, 2..400),
        cuts in proptest::collection::vec(1usize..100, 1..4),
    ) {
        use osnt::core::StreamingSummary;
        // Split into chunks at pseudo-random boundaries.
        let mut chunks: Vec<&[u64]> = Vec::new();
        let mut rest: &[u64] = &samples;
        for c in &cuts {
            if rest.len() <= 1 { break; }
            let at = 1 + (c % (rest.len() - 1));
            let (head, tail) = rest.split_at(at);
            chunks.push(head);
            rest = tail;
        }
        chunks.push(rest);
        let summarise = |xs: &[u64]| {
            let mut s = StreamingSummary::new();
            for &p in xs { s.record_ps(p); }
            s
        };
        let mut whole = StreamingSummary::new();
        for &p in &samples { whole.record_ps(p); }
        let whole = whole.finish().unwrap();

        // Merge in shard order: everything agrees (jitter included —
        // concatenation of adjacent chunks is the original sequence).
        let mut fwd = StreamingSummary::new();
        for c in &chunks { fwd.merge(&summarise(c)); }
        let fwd = fwd.finish().unwrap();
        prop_assert_eq!(fwd.count, whole.count);
        prop_assert_eq!(fwd.min_ns, whole.min_ns);
        prop_assert_eq!(fwd.max_ns, whole.max_ns);
        prop_assert_eq!(fwd.p50_ns, whole.p50_ns);
        prop_assert_eq!(fwd.p90_ns, whole.p90_ns);
        prop_assert_eq!(fwd.p99_ns, whole.p99_ns);
        let tol = 1e-6 * whole.mean_ns.max(1.0);
        prop_assert!((fwd.mean_ns - whole.mean_ns).abs() <= tol);
        prop_assert!((fwd.jitter_ns - whole.jitter_ns).abs() <= 1e-6 * whole.jitter_ns.max(1.0));

        // Merge in reversed chunk order: count/min/max and the
        // histogram-derived percentiles are exactly order-independent.
        let mut rev = StreamingSummary::new();
        for c in chunks.iter().rev() { rev.merge(&summarise(c)); }
        let rev = rev.finish().unwrap();
        prop_assert_eq!(rev.count, whole.count);
        prop_assert_eq!(rev.min_ns, whole.min_ns);
        prop_assert_eq!(rev.max_ns, whole.max_ns);
        prop_assert_eq!(rev.p50_ns, whole.p50_ns);
        prop_assert_eq!(rev.p90_ns, whole.p90_ns);
        prop_assert_eq!(rev.p99_ns, whole.p99_ns);
        prop_assert!((rev.mean_ns - whole.mean_ns).abs() <= tol);
    }

    /// Compiled wildcard rules agree with the interpreter on arbitrary
    /// generated frames and rules (the flow-key lowering is exact).
    #[test]
    fn compiled_rule_matches_interpreter(
        src in arb_mac(), dst in arb_mac(),
        sip in arb_ipv4(), dip in arb_ipv4(),
        sport in 0u16..3, dport in 0u16..3,
        // The vendored proptest stand-in has no Option strategies:
        // sentinel values encode "field not named by the rule".
        rule_sport in 0u16..4, // 3 = absent
        rule_dport in 0u16..4, // 3 = absent
        rule_proto in 0u8..3,  // 0 = absent, 1 = TCP, 2 = UDP
        plen in 0u8..34,       // 33 = absent
    ) {
        use osnt::packet::{CompiledRule, FlowKey, WildcardRule};
        use osnt::packet::wildcard::IpPrefix;
        let pkt = PacketBuilder::ethernet(src, dst)
            .ipv4(sip, dip)
            .udp(sport, dport)
            .build();
        let mut rule = WildcardRule::any();
        if rule_sport < 3 { rule = rule.with_src_port(rule_sport); }
        if rule_dport < 3 { rule = rule.with_dst_port(rule_dport); }
        match rule_proto {
            1 => rule = rule.with_ip_protocol(6),
            2 => rule = rule.with_ip_protocol(17),
            _ => {}
        }
        if plen <= 32 {
            rule = rule.with_src_ip(IpPrefix::new(std::net::IpAddr::V4(sip), plen));
        }
        let parsed = pkt.parse();
        let key = FlowKey::extract(&parsed);
        prop_assert_eq!(
            CompiledRule::compile(&rule).matches(&key),
            rule.matches(&parsed)
        );
    }
}
