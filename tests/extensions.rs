//! Integration tests of the extension features: link impairment with
//! sequence-tracked loss measurement, echo-under-load, and the RFC 2544
//! throughput search wired through the CLI-facing APIs.

use osnt::core::{analyze_sequence, DeviceConfig, OsntDevice, PortRole};
use osnt::gen::workload::FixedTemplate;
use osnt::gen::{GenConfig, Schedule};
use osnt::mon::{HostPathConfig, MonConfig};
use osnt::netsim::{ImpairConfig, Impairment, LinkSpec, SimBuilder};
use osnt::oflops::modules::{EchoLoadModule, RoundRobinDst};
use osnt::oflops::{Testbed, TestbedSpec};
use osnt::switch::OfSwitchConfig;
use osnt::time::{DriftModel, SimDuration, SimTime};

#[test]
fn tester_measures_impaired_link_loss_with_sequence_tags() {
    // OSNT port 0 → impaired link (10% loss) → OSNT port 1.
    let mut b = SimBuilder::new();
    let n_frames = 5_000u64;
    let device = OsntDevice::install(
        &mut b,
        DeviceConfig {
            clock_model: DriftModel::ideal(),
            clock_seed: 1,
            gps: None,
            gps_signal: osnt::time::GpsSignal::always_on(),
            ports: vec![
                PortRole::generator(
                    Box::new(FixedTemplate::new(FixedTemplate::udp_frame(256)).with_sequence_tag()),
                    GenConfig {
                        schedule: Schedule::ConstantPps(1_000_000.0),
                        count: Some(n_frames),
                        ..GenConfig::default()
                    },
                ),
                PortRole::monitor_only().with_monitor(MonConfig {
                    host: HostPathConfig::unlimited(),
                    ..MonConfig::default()
                }),
            ],
        },
    );
    let imp = b.add_component(
        "impairment",
        Box::new(Impairment::new(ImpairConfig::loss(0.10, 99))),
        2,
    );
    b.connect(device.ports[0].id, 0, imp, 0, LinkSpec::ten_gig());
    b.connect(imp, 1, device.ports[1].id, 0, LinkSpec::ten_gig());
    let mut sim = b.build();
    sim.run_until(SimTime::from_ms(50));

    let capture = device.ports[1].capture.borrow();
    let report = analyze_sequence(&capture);
    assert_eq!(report.duplicated, 0);
    assert_eq!(report.reordered, 0);
    let measured_loss = report.loss_fraction(n_frames);
    assert!(
        (measured_loss - 0.10).abs() < 0.02,
        "measured loss {measured_loss} vs injected 0.10"
    );
    // Holes detected by the tracker match the arithmetic of the capture.
    assert_eq!(
        report.tagged as u64 + report.lost,
        report.max_seq + 1,
        "every sequence number is either seen or counted lost"
    );
}

#[test]
fn impairment_jitter_inflates_measured_latency_spread() {
    use osnt::core::{latencies_from_capture, Summary};
    use osnt::gen::txstamp::StampConfig;
    let run = |jitter_us: u64| {
        let mut b = SimBuilder::new();
        let device = OsntDevice::install(
            &mut b,
            DeviceConfig {
                clock_model: DriftModel::ideal(),
                clock_seed: 1,
                gps: None,
                gps_signal: osnt::time::GpsSignal::always_on(),
                ports: vec![
                    PortRole::generator(
                        Box::new(FixedTemplate::new(FixedTemplate::udp_frame(256))),
                        GenConfig {
                            schedule: Schedule::ConstantPps(100_000.0),
                            count: Some(1_000),
                            stamp: Some(StampConfig::default_payload()),
                            ..GenConfig::default()
                        },
                    ),
                    PortRole::monitor_only().with_monitor(MonConfig {
                        host: HostPathConfig::unlimited(),
                        ..MonConfig::default()
                    }),
                ],
            },
        );
        let imp = b.add_component(
            "imp",
            Box::new(Impairment::new(ImpairConfig {
                jitter: SimDuration::from_us(jitter_us),
                seed: 3,
                ..ImpairConfig::default()
            })),
            2,
        );
        b.connect(device.ports[0].id, 0, imp, 0, LinkSpec::ten_gig());
        b.connect(imp, 1, device.ports[1].id, 0, LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_ms(50));
        let capture = device.ports[1].capture.borrow();
        let lat = latencies_from_capture(&capture, StampConfig::DEFAULT_OFFSET);
        Summary::from_durations(&lat).unwrap()
    };
    let clean = run(0);
    let jittered = run(50);
    assert!(
        clean.stddev_ns < 10.0,
        "clean path stddev {}",
        clean.stddev_ns
    );
    assert!(
        jittered.stddev_ns > 1_000.0,
        "jittered path stddev {}",
        jittered.stddev_ns
    );
    assert!(jittered.max_ns > clean.max_ns + 10_000.0);
}

#[test]
fn echo_rtt_inflates_during_flow_mod_burst() {
    // 40 echoes every 500 µs; a 100-rule burst at t = 10 ms.
    let (module, state) =
        EchoLoadModule::new(40, SimDuration::from_us(500), SimTime::from_ms(10), 100);
    let spec = TestbedSpec {
        switch: OfSwitchConfig::default(),
        probe: Some((
            Box::new(RoundRobinDst::new(4, 128)),
            GenConfig {
                // Tiny probe just to keep the dataplane busy.
                schedule: Schedule::ConstantPps(10_000.0),
                start_at: SimTime::from_ms(1),
                stop_at: Some(SimTime::from_ms(30)),
                ..GenConfig::default()
            },
        )),
        ..TestbedSpec::control_only()
    };
    let mut tb = Testbed::build(spec, Box::new(module));
    tb.run_until(SimTime::from_ms(40));
    let st = state.borrow();
    assert!(st.rtts.len() >= 38, "echoes answered: {}", st.rtts.len());
    let baseline = st.baseline_rtt().expect("baseline");
    let worst = st.worst_rtt_after_burst().expect("worst");
    // 100 × 25 µs of flow_mod CPU stands between an echo and its reply.
    assert!(
        worst >= baseline.saturating_mul(5),
        "worst {worst} vs baseline {baseline}"
    );
    assert!(worst >= SimDuration::from_ms(1), "worst {worst}");
}
