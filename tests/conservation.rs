//! Conservation and accounting invariants across a whole testbed: in a
//! mesh of four OSNT ports blasting through a switch, every frame is
//! accounted for exactly once — transmitted, delivered, or attributed to
//! a named drop counter. No silent loss, ever.

use osnt::core::{DeviceConfig, OsntDevice, PortRole};
use osnt::gen::workload::FixedTemplate;
use osnt::gen::{GenConfig, Schedule};
use osnt::mon::{HostPathConfig, MonConfig};
use osnt::netsim::{LinkSpec, SimBuilder};
use osnt::packet::{MacAddr, PacketBuilder};
use osnt::switch::{LegacyConfig, LegacySwitch};
use osnt::time::SimTime;
use std::net::Ipv4Addr;

/// Four card ports, each generating toward the "next" port's MAC through
/// one legacy switch: a full ring of unicast flows.
#[test]
fn four_port_ring_conserves_every_frame() {
    let mut b = SimBuilder::new();
    let frame_for = |src: u8, dst: u8| {
        PacketBuilder::ethernet(MacAddr::local(src), MacAddr::local(dst))
            .ipv4(Ipv4Addr::new(10, 0, 0, src), Ipv4Addr::new(10, 0, 0, dst))
            .udp(5000 + src as u16, 9000 + dst as u16)
            .pad_to_frame(512)
            .build()
    };
    let mut roles = Vec::new();
    for i in 0..4u8 {
        let dst = (i + 1) % 4;
        roles.push(
            PortRole::generator(
                Box::new(FixedTemplate::new(frame_for(i + 1, dst + 1))),
                GenConfig {
                    // 20% each → the switch fabric is comfortably under
                    // capacity on every output.
                    schedule: Schedule::Utilization {
                        fraction: 0.2,
                        line_rate_bps: 10_000_000_000,
                    },
                    stop_at: Some(SimTime::from_ms(10)),
                    ..GenConfig::default()
                },
            )
            .with_monitor(MonConfig {
                host: HostPathConfig::unlimited(),
                ..MonConfig::default()
            }),
        );
    }
    let device = OsntDevice::install(
        &mut b,
        DeviceConfig {
            clock_model: osnt::time::DriftModel::ideal(),
            clock_seed: 1,
            gps: None,
            gps_signal: osnt::time::GpsSignal::always_on(),
            ports: roles,
        },
    );
    let sw = b.add_component(
        "switch",
        Box::new(LegacySwitch::new(LegacyConfig::default())),
        4,
    );
    for i in 0..4 {
        b.connect(device.ports[i].id, 0, sw, i, LinkSpec::ten_gig());
    }
    let mut sim = b.build();
    sim.run_until(SimTime::from_ms(20));

    // Per-stream accounting. The first frame of each stream floods
    // (unknown destination) and the flood copies also land on the other
    // two monitors, so match captured frames per destination port.
    let mut total_sent = 0u64;
    let mut per_port_expected = [0u64; 4];
    for (i, p) in device.ports.iter().enumerate() {
        let sent = p.gen_stats.as_ref().unwrap().borrow().sent_frames;
        assert!(sent > 4000, "port {i} sent {sent}");
        total_sent += sent;
        per_port_expected[(i + 1) % 4] += sent;
    }
    let mut total_delivered_matching = 0u64;
    for (i, p) in device.ports.iter().enumerate() {
        // Count only frames addressed to this port's station MAC.
        let want_mac = MacAddr::local(i as u8 + 1);
        let matching = p
            .capture
            .borrow()
            .packets
            .iter()
            .filter(|c| c.packet.parse().dst_mac() == Some(want_mac))
            .count() as u64;
        assert_eq!(
            matching, per_port_expected[i],
            "port {i}: every frame addressed here must arrive exactly once"
        );
        total_delivered_matching += matching;
    }
    assert_eq!(total_delivered_matching, total_sent);

    // Kernel-level conservation: switch rx == sum of generator tx.
    let mut switch_rx = 0u64;
    let mut switch_tx = 0u64;
    let sw_id = sw;
    for port in 0..4 {
        let c = sim.kernel().counters(sw_id, port);
        switch_rx += c.rx_frames;
        switch_tx += c.tx_frames;
        assert_eq!(c.tx_drops, 0, "no output drops at 20% load");
    }
    assert_eq!(switch_rx, total_sent);
    // Flood copies of the four first-frames add at most 2 extra tx each.
    assert!(switch_tx >= total_sent && switch_tx <= total_sent + 8);
}

/// The same ring with ideal monitors must capture identical streams on
/// repeated runs (global determinism at system scale).
#[test]
fn system_scale_determinism() {
    let run = || {
        let mut b = SimBuilder::new();
        let device = OsntDevice::install(
            &mut b,
            DeviceConfig {
                clock_model: osnt::time::DriftModel::commodity_xo(),
                clock_seed: 77,
                gps: Some(osnt::time::ServoGains::default()),
                gps_signal: osnt::time::GpsSignal::always_on(),
                ports: vec![
                    PortRole::generator(
                        Box::new(FixedTemplate::new(FixedTemplate::udp_frame(256))),
                        GenConfig {
                            schedule: Schedule::Poisson {
                                mean_pps: 200_000.0,
                                seed: 9,
                            },
                            stop_at: Some(SimTime::from_ms(5)),
                            stamp: Some(osnt::gen::StampConfig::default_payload()),
                            ..GenConfig::default()
                        },
                    ),
                    PortRole::monitor_only().with_monitor(MonConfig {
                        host: HostPathConfig::unlimited(),
                        ..MonConfig::default()
                    }),
                ],
            },
        );
        let sw = b.add_component(
            "switch",
            Box::new(LegacySwitch::new(LegacyConfig::default())),
            4,
        );
        b.connect(device.ports[0].id, 0, sw, 0, LinkSpec::ten_gig());
        b.connect(device.ports[1].id, 0, sw, 1, LinkSpec::ten_gig());
        let mut sim = b.build();
        // Prime the CAM so the stream unicasts (first frame floods).
        sim.run_until(SimTime::from_ms(10));
        let cap = device.ports[1].capture.borrow();
        cap.packets
            .iter()
            .map(|c| (c.rx_stamp.as_raw(), c.packet.data().to_vec()))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical seeds must give identical captures");
}
