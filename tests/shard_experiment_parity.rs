//! End-to-end sharding parity: the canonical latency experiment (the
//! paper's Fig. 2 topology) must produce a **byte-identical**
//! `LatencyReport` whether it runs on the single-threaded kernel or on
//! the sharded kernel (`OSNT_SHARDS` ≥ 2: tester device on one shard,
//! DUT on the other). Every field — Poisson probe timestamps, latency
//! summary floats, fault tallies — goes through the comparison via the
//! report's `Debug` rendering, so even a one-ULP drift fails.

use osnt::chaos::{ChaosScenario, Episode};
use osnt::core::experiment::LatencyExperiment;
use osnt::netsim::{FaultConfig, LossModel};
use osnt::switch::LegacyConfig;
use osnt::time::{SimDuration, SimTime};

fn short_run(faults: Option<FaultConfig>, background: f64) -> String {
    let exp = LatencyExperiment {
        duration: SimDuration::from_ms(5),
        warmup: SimDuration::from_ms(1),
        background_load: background,
        probe_faults: faults,
        ..LatencyExperiment::default()
    };
    let report = exp
        .run_legacy(LegacyConfig::default())
        .expect("experiment runs");
    format!("{report:?}")
}

/// One test (not several) because the shard count comes from a
/// process-global environment variable.
#[test]
fn sharded_experiment_reports_are_byte_identical() {
    let faulty = Some(FaultConfig {
        loss: LossModel::Uniform { probability: 0.05 },
        corrupt_probability: 0.05,
        seed: 42,
        ..FaultConfig::default()
    });

    std::env::remove_var("OSNT_SHARDS");
    let clean_ref = short_run(None, 0.5);
    let faulty_ref = short_run(faulty.clone(), 0.0);

    for shards in ["2", "4"] {
        std::env::set_var("OSNT_SHARDS", shards);
        let clean = short_run(None, 0.5);
        let faulty_run = short_run(faulty.clone(), 0.0);
        std::env::remove_var("OSNT_SHARDS");
        assert_eq!(
            clean, clean_ref,
            "clean report diverged at OSNT_SHARDS={shards}"
        );
        assert_eq!(
            faulty_run, faulty_ref,
            "faulty report diverged at OSNT_SHARDS={shards}"
        );
    }
}

/// A lowered chaos scenario — composed loss, duplication, jitter, GPS
/// holdover and a capture bound all at once — is the hardest parity
/// input the platform has: every stochastic subsystem is live. The
/// experiment's explicit `shards` override (no env var) must still
/// render byte-identical at 1, 2 and 4 shards.
#[test]
fn chaos_scenario_reports_are_byte_identical_across_shard_counts() {
    let scenario = ChaosScenario {
        name: "parity-chaos".into(),
        duration: SimDuration::from_ms(5),
        warmup: SimDuration::from_ms(1),
        background_load: 0.6,
        capture_limit: Some(256),
        episodes: vec![
            Episode::LossBurst {
                enter_probability: 0.01,
                mean_burst_frames: 6.0,
            },
            Episode::Duplicate { probability: 0.02 },
            Episode::Jitter {
                extra_delay: SimDuration::from_us(2),
                jitter: SimDuration::from_us(1),
            },
            Episode::GpsOutage {
                start: SimTime::from_ms(2),
                length: SimDuration::from_ms(2),
            },
        ],
    };
    let lowered = scenario.lower(77).expect("scenario lowers");

    let run_at = |shards: usize| -> String {
        let exp = LatencyExperiment {
            duration: scenario.duration,
            warmup: scenario.warmup,
            background_load: scenario.background_load,
            probe_faults: lowered.faults.clone(),
            gps_signal: lowered.gps.clone(),
            capture_limit: scenario.capture_limit,
            record_raw: true,
            seed: 77,
            shards: Some(shards),
            ..LatencyExperiment::default()
        };
        let report = exp
            .run_legacy(LegacyConfig::default())
            .expect("chaos experiment runs");
        format!("{report:?}")
    };

    let reference = run_at(1);
    assert!(
        reference.contains("fault_stats: Some"),
        "the lowered fault channel must be live"
    );
    for shards in [2, 4] {
        assert_eq!(
            run_at(shards),
            reference,
            "chaos report diverged at {shards} shards"
        );
    }
}
