//! End-to-end sharding parity: the canonical latency experiment (the
//! paper's Fig. 2 topology) must produce a **byte-identical**
//! `LatencyReport` whether it runs on the single-threaded kernel or on
//! the sharded kernel (`OSNT_SHARDS` ≥ 2: tester device on one shard,
//! DUT on the other). Every field — Poisson probe timestamps, latency
//! summary floats, fault tallies — goes through the comparison via the
//! report's `Debug` rendering, so even a one-ULP drift fails.

use osnt::core::experiment::LatencyExperiment;
use osnt::netsim::{FaultConfig, LossModel};
use osnt::switch::LegacyConfig;
use osnt::time::SimDuration;

fn short_run(faults: Option<FaultConfig>, background: f64) -> String {
    let exp = LatencyExperiment {
        duration: SimDuration::from_ms(5),
        warmup: SimDuration::from_ms(1),
        background_load: background,
        probe_faults: faults,
        ..LatencyExperiment::default()
    };
    let report = exp
        .run_legacy(LegacyConfig::default())
        .expect("experiment runs");
    format!("{report:?}")
}

/// One test (not several) because the shard count comes from a
/// process-global environment variable.
#[test]
fn sharded_experiment_reports_are_byte_identical() {
    let faulty = Some(FaultConfig {
        loss: LossModel::Uniform { probability: 0.05 },
        corrupt_probability: 0.05,
        seed: 42,
        ..FaultConfig::default()
    });

    std::env::remove_var("OSNT_SHARDS");
    let clean_ref = short_run(None, 0.5);
    let faulty_ref = short_run(faulty.clone(), 0.0);

    for shards in ["2", "4"] {
        std::env::set_var("OSNT_SHARDS", shards);
        let clean = short_run(None, 0.5);
        let faulty_run = short_run(faulty.clone(), 0.0);
        std::env::remove_var("OSNT_SHARDS");
        assert_eq!(
            clean, clean_ref,
            "clean report diverged at OSNT_SHARDS={shards}"
        );
        assert_eq!(
            faulty_run, faulty_ref,
            "faulty report diverged at OSNT_SHARDS={shards}"
        );
    }
}
