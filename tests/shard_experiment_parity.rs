//! End-to-end sharding parity: the canonical latency experiment (the
//! paper's Fig. 2 topology) must produce a **byte-identical**
//! `LatencyReport` whether it runs on the single-threaded kernel or on
//! the sharded kernel (`OSNT_SHARDS` ≥ 2: tester device on one shard,
//! DUT on the other). Every field — Poisson probe timestamps, latency
//! summary floats, fault tallies — goes through the comparison via the
//! report's `Debug` rendering, so even a one-ULP drift fails.

use osnt::chaos::{ChaosScenario, Episode};
use osnt::core::experiment::LatencyExperiment;
use osnt::netsim::{
    Component, ComponentId, FaultConfig, FaultyLink, Kernel, LinkSpec, LossModel, ShardPlan,
    ShardStats, SimBuilder, WindowPolicy,
};
use osnt::packet::{hash::crc32, Packet};
use osnt::switch::LegacyConfig;
use osnt::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn short_run(faults: Option<FaultConfig>, background: f64) -> String {
    let exp = LatencyExperiment {
        duration: SimDuration::from_ms(5),
        warmup: SimDuration::from_ms(1),
        background_load: background,
        probe_faults: faults,
        ..LatencyExperiment::default()
    };
    let report = exp
        .run_legacy(LegacyConfig::default())
        .expect("experiment runs");
    format!("{report:?}")
}

/// One test (not several) because the shard count comes from a
/// process-global environment variable.
#[test]
fn sharded_experiment_reports_are_byte_identical() {
    let faulty = Some(FaultConfig {
        loss: LossModel::Uniform { probability: 0.05 },
        corrupt_probability: 0.05,
        seed: 42,
        ..FaultConfig::default()
    });

    std::env::remove_var("OSNT_SHARDS");
    let clean_ref = short_run(None, 0.5);
    let faulty_ref = short_run(faulty.clone(), 0.0);

    for shards in ["2", "4"] {
        // Both window policies: adaptive (the default) and the legacy
        // global-lookahead reference must render the same bytes — the
        // policy only changes how the event order is sliced into
        // rounds, never the order itself.
        for policy in [None, Some("legacy")] {
            std::env::set_var("OSNT_SHARDS", shards);
            match policy {
                Some(p) => std::env::set_var("OSNT_WINDOW_POLICY", p),
                None => std::env::remove_var("OSNT_WINDOW_POLICY"),
            }
            let clean = short_run(None, 0.5);
            let faulty_run = short_run(faulty.clone(), 0.0);
            std::env::remove_var("OSNT_SHARDS");
            std::env::remove_var("OSNT_WINDOW_POLICY");
            assert_eq!(
                clean, clean_ref,
                "clean report diverged at OSNT_SHARDS={shards} (policy {policy:?})"
            );
            assert_eq!(
                faulty_run, faulty_ref,
                "faulty report diverged at OSNT_SHARDS={shards} (policy {policy:?})"
            );
        }
    }
}

/// A lowered chaos scenario — composed loss, duplication, jitter, GPS
/// holdover and a capture bound all at once — is the hardest parity
/// input the platform has: every stochastic subsystem is live. The
/// experiment's explicit `shards` override (no env var) must still
/// render byte-identical at 1, 2 and 4 shards.
#[test]
fn chaos_scenario_reports_are_byte_identical_across_shard_counts() {
    let scenario = ChaosScenario {
        name: "parity-chaos".into(),
        duration: SimDuration::from_ms(5),
        warmup: SimDuration::from_ms(1),
        background_load: 0.6,
        capture_limit: Some(256),
        episodes: vec![
            Episode::LossBurst {
                enter_probability: 0.01,
                mean_burst_frames: 6.0,
            },
            Episode::Duplicate { probability: 0.02 },
            Episode::Jitter {
                extra_delay: SimDuration::from_us(2),
                jitter: SimDuration::from_us(1),
            },
            Episode::GpsOutage {
                start: SimTime::from_ms(2),
                length: SimDuration::from_ms(2),
            },
        ],
    };
    let lowered = scenario.lower(77).expect("scenario lowers");

    let run_at = |shards: usize| -> String {
        let exp = LatencyExperiment {
            duration: scenario.duration,
            warmup: scenario.warmup,
            background_load: scenario.background_load,
            probe_faults: lowered.faults.clone(),
            gps_signal: lowered.gps.clone(),
            capture_limit: scenario.capture_limit,
            record_raw: true,
            seed: 77,
            shards: Some(shards),
            ..LatencyExperiment::default()
        };
        let report = exp
            .run_legacy(LegacyConfig::default())
            .expect("chaos experiment runs");
        format!("{report:?}")
    };

    let reference = run_at(1);
    assert!(
        reference.contains("fault_stats: Some"),
        "the lowered fault channel must be live"
    );
    for shards in [2, 4] {
        assert_eq!(
            run_at(shards),
            reference,
            "chaos report diverged at {shards} shards"
        );
    }
}

// ---------------------------------------------------------------------
// Adaptive-window parity on raw netsim topologies: random multi-shard
// rings with *asymmetric* per-direction cross-shard delays, optional
// fault injection mid-ring, run under the adaptive per-channel-lookahead
// policy and the legacy global-lookahead reference. Every observable —
// arrival logs (time, digest), per-port counters, dispatched-event
// count — must be byte-identical to the single-threaded run, and the
// executive's window-accounting ledger must balance.
// ---------------------------------------------------------------------

/// CBR source; also ignores anything bounced back at it.
struct Src {
    n: u64,
    interval: SimDuration,
    sent: u64,
}

impl Component for Src {
    fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
        if self.n > 0 {
            k.schedule_timer(me, SimDuration::ZERO, 0);
        }
    }
    fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, _tag: u64) {
        let mut data = vec![0u8; 60];
        data[..8].copy_from_slice(&self.sent.to_be_bytes());
        let _ = k.transmit(me, 0, Packet::from_vec(data));
        self.sent += 1;
        if self.sent < self.n {
            k.schedule_timer(me, self.interval, 0);
        }
    }
    fn on_packet(&mut self, _k: &mut Kernel, _me: ComponentId, _port: usize, _pkt: Packet) {
        // Bounced frames terminate here.
    }
}

type Log = Rc<RefCell<Vec<(u64, u32)>>>;

/// Logs every arrival on port 0 and bounces every third frame back
/// upstream — the bounce forces cross-shard traffic *against* the ring
/// direction, exercising the influence matrix's cycle entries.
struct BounceSink {
    log: Log,
    seen: u64,
}

impl Component for BounceSink {
    fn on_packet(&mut self, k: &mut Kernel, me: ComponentId, _port: usize, pkt: Packet) {
        self.log
            .borrow_mut()
            .push((k.now().as_ps(), crc32(pkt.data())));
        self.seen += 1;
        if self.seen.is_multiple_of(3) {
            let _ = k.transmit(me, 0, Packet::from_vec(pkt.data().to_vec()));
        }
    }
}

struct RingTopo {
    nodes: usize,
    frames: u64,
    interval_ns: u64,
    /// Per-hop (forward_ns, reverse_ns) — asymmetric cross delays.
    delays: Vec<(u64, u64)>,
    /// Wrap this hop (if any) in a lossy fault injector.
    faulty_hop: Option<usize>,
    loss: f64,
    fault_seed: u64,
}

struct RingBuilt {
    builder: SimBuilder,
    logs: Vec<Log>,
    ids: Vec<ComponentId>,
    node_of: Vec<(ComponentId, usize)>,
}

/// Node `i` hosts a source whose frames cross hop `i` (delay
/// `delays[i]`) into node `(i+1) % nodes`'s sink; the sink's bounces
/// ride the same wire back. One hop optionally goes through a
/// `FaultyLink` that lives on the *receiving* node.
fn build_ring(t: &RingTopo) -> RingBuilt {
    let mut b = SimBuilder::new();
    let mut logs = Vec::new();
    let mut node_of = Vec::new();
    let mut srcs = Vec::new();
    let mut sinks = Vec::new();
    for i in 0..t.nodes {
        let src = b.add_component(
            &format!("src{i}"),
            Box::new(Src {
                n: t.frames,
                interval: SimDuration::from_ns(t.interval_ns),
                sent: 0,
            }),
            1,
        );
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let sink = b.add_component(
            &format!("sink{i}"),
            Box::new(BounceSink {
                log: log.clone(),
                seen: 0,
            }),
            1,
        );
        logs.push(log);
        node_of.push((src, i));
        node_of.push((sink, i));
        srcs.push(src);
        sinks.push(sink);
    }
    for (i, &src) in srcs.iter().enumerate() {
        let dst = (i + 1) % t.nodes;
        let (fwd_ns, rev_ns) = t.delays[i];
        let fwd = LinkSpec::ten_gig().with_propagation(SimDuration::from_ns(fwd_ns));
        let rev = LinkSpec::ten_gig().with_propagation(SimDuration::from_ns(rev_ns));
        if t.faulty_hop == Some(i) {
            let (link, _stats) = FaultyLink::new(FaultConfig {
                loss: LossModel::Uniform {
                    probability: t.loss,
                },
                seed: t.fault_seed,
                ..FaultConfig::default()
            })
            .expect("valid fault config");
            let mid = b.add_component(&format!("fault{i}"), Box::new(link), 2);
            node_of.push((mid, dst));
            b.connect_asym(src, 0, mid, 0, fwd, rev);
            // The injector sits on the receiving node: its second hop
            // is node-local.
            b.connect(
                mid,
                1,
                sinks[dst],
                0,
                LinkSpec::ten_gig().with_propagation(SimDuration::from_ns(50)),
            );
        } else {
            b.connect_asym(src, 0, sinks[dst], 0, fwd, rev);
        }
    }
    let ids = node_of.iter().map(|&(c, _)| c).collect();
    RingBuilt {
        builder: b,
        logs,
        ids,
        node_of,
    }
}

#[derive(Debug, PartialEq)]
struct RingObserved {
    arrivals: Vec<Vec<(u64, u32)>>,
    counters: Vec<(u64, u64, u64, u64, u64)>,
    dispatched: u64,
}

const RING_HORIZON_MS: u64 = 2;

fn ring_single(t: &RingTopo) -> RingObserved {
    let built = build_ring(t);
    let mut sim = built.builder.build();
    let dispatched = sim.run_until(SimTime::from_ms(RING_HORIZON_MS));
    RingObserved {
        arrivals: built.logs.iter().map(|l| l.borrow().clone()).collect(),
        counters: built
            .ids
            .iter()
            .map(|&id| {
                let c = sim.kernel().counters(id, 0);
                (c.tx_frames, c.tx_bytes, c.tx_drops, c.rx_frames, c.rx_bytes)
            })
            .collect(),
        dispatched,
    }
}

fn ring_sharded(t: &RingTopo, shards: usize, policy: WindowPolicy) -> RingObserved {
    let built = build_ring(t);
    let mut plan = ShardPlan::new(built.builder.component_count(), shards);
    for &(c, node) in &built.node_of {
        plan.assign(c, node % shards);
    }
    let mut sim = built.builder.build_sharded(plan);
    sim.set_window_policy(policy);
    let dispatched = sim.run_until(SimTime::from_ms(RING_HORIZON_MS));

    // The executive's deterministic ledger must balance on every run:
    // rounds are lockstep across shards, and summed ring pushes equal
    // drains + spills once the run quiesces.
    let stats: Vec<ShardStats> = sim.shard_stats();
    assert_eq!(stats.len(), shards);
    let rounds = stats[0].rounds();
    assert!(
        stats.iter().all(|s| s.rounds() == rounds),
        "shards disagree on round count: {stats:?}"
    );
    let merged = stats
        .iter()
        .fold(ShardStats::default(), |a, s| a.merged(*s));
    assert_eq!(
        merged.ring_pushes,
        merged.ring_drains + merged.spill_events,
        "ring ledger does not balance: {merged:?}"
    );

    RingObserved {
        arrivals: built.logs.iter().map(|l| l.borrow().clone()).collect(),
        counters: built
            .ids
            .iter()
            .map(|&id| {
                let c = sim.counters(id, 0);
                (c.tx_frames, c.tx_bytes, c.tx_drops, c.rx_frames, c.rx_bytes)
            })
            .collect(),
        dispatched,
    }
}

proptest! {
    #[test]
    fn adaptive_windows_match_reference_on_asymmetric_rings(
        nodes in 2usize..5,
        frames in 1u64..30,
        interval_ns in (0usize..3).prop_map(|i| [68u64, 500, 5_000][i]),
        delay_picks in proptest::collection::vec((0usize..4, 0usize..4), 4),
        fault in any::<bool>(),
        fault_seed in any::<u64>(),
        loss in (0usize..2).prop_map(|i| [0.1f64, 0.4][i]),
    ) {
        let menu = [500u64, 5_000, 50_000, 150_000];
        let t = RingTopo {
            nodes,
            frames,
            interval_ns,
            delays: delay_picks
                .iter()
                .take(nodes)
                .map(|&(a, b)| (menu[a], menu[b]))
                .collect(),
            faulty_hop: fault.then_some(nodes - 1),
            loss,
            fault_seed,
        };
        let reference = ring_single(&t);
        prop_assert!(reference.dispatched > 0);
        for shards in [2, 4] {
            let shards = shards.min(nodes);
            for policy in [WindowPolicy::Adaptive, WindowPolicy::GlobalLookahead] {
                let got = ring_sharded(&t, shards, policy);
                prop_assert!(
                    got == reference,
                    "{:?} diverged at {} shards under {:?}:\n got {:?}\n ref {:?}",
                    t.delays,
                    shards,
                    policy,
                    got,
                    reference
                );
            }
        }
    }
}
