//! Offline stand-in for the `smallvec` crate (the build environment has
//! no crates.io access): a growable vector that stores up to `N`
//! elements inline — no heap allocation — and spills to an ordinary
//! `Vec<T>` once it grows past the inline capacity.
//!
//! Only the API subset this workspace uses is provided. The shape
//! differs from upstream `smallvec` (const-generic `SmallVec<T, N>`
//! instead of the `SmallVec<[T; N]>` array-trait encoding) because the
//! stand-in targets our call sites, not drop-in source compatibility.

use std::mem::MaybeUninit;

/// A vector holding up to `N` elements inline, spilling to the heap
/// beyond that.
pub struct SmallVec<T, const N: usize> {
    /// Inline storage; elements `0..len` are initialised iff `!spilled`.
    inline: [MaybeUninit<T>; N],
    /// Length of the inline prefix (0 once spilled).
    len: usize,
    /// Heap storage; holds *all* elements once `spilled`.
    heap: Vec<T>,
    spilled: bool,
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> Self {
        SmallVec {
            // SAFETY: an array of `MaybeUninit` needs no initialisation.
            inline: unsafe { MaybeUninit::uninit().assume_init() },
            len: 0,
            heap: Vec::new(),
            spilled: false,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.len
        }
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once elements have moved to the heap.
    #[inline]
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// The inline capacity `N`.
    #[inline]
    pub fn inline_size(&self) -> usize {
        N
    }

    /// Append an element, spilling to the heap when the inline buffer
    /// is full.
    pub fn push(&mut self, value: T) {
        if self.spilled {
            self.heap.push(value);
            return;
        }
        if self.len < N {
            self.inline[self.len].write(value);
            self.len += 1;
            return;
        }
        self.spill(self.len + 1);
        self.heap.push(value);
    }

    /// Remove and return the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            return self.heap.pop();
        }
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // SAFETY: index `len` was initialised and is now out of the
        // live prefix, so ownership moves out exactly once.
        Some(unsafe { self.inline[self.len].assume_init_read() })
    }

    /// Remove and return the element at `index`, shifting the tail
    /// left. Panics when out of bounds.
    pub fn remove(&mut self, index: usize) -> T {
        if self.spilled {
            return self.heap.remove(index);
        }
        assert!(index < self.len, "remove index {index} out of bounds");
        // SAFETY: `index` is initialised; the shift below re-fills its
        // slot, keeping `0..len-1` the initialised prefix.
        let out = unsafe { self.inline[index].assume_init_read() };
        for i in index..self.len - 1 {
            // SAFETY: slot i+1 is initialised; moving it left leaves
            // slot i initialised and i+1 logically vacant.
            let v = unsafe { self.inline[i + 1].assume_init_read() };
            self.inline[i].write(v);
        }
        self.len -= 1;
        out
    }

    /// Split into two at `at`: `self` keeps `0..at`, the returned
    /// vector holds `at..len`.
    pub fn split_off(&mut self, at: usize) -> Self {
        let n = self.len();
        assert!(at <= n, "split_off index {at} out of bounds (len {n})");
        let mut tail = SmallVec::new();
        if self.spilled {
            tail.extend(self.heap.split_off(at));
            return tail;
        }
        for i in at..n {
            // SAFETY: `i` is in the initialised prefix; each slot is
            // read exactly once and the length is truncated below.
            tail.push(unsafe { self.inline[i].assume_init_read() });
        }
        self.len = at;
        tail
    }

    /// View the elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.heap
        } else {
            // SAFETY: `0..len` is the initialised inline prefix.
            unsafe { std::slice::from_raw_parts(self.inline.as_ptr() as *const T, self.len) }
        }
    }

    /// View the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled {
            &mut self.heap
        } else {
            // SAFETY: `0..len` is the initialised inline prefix.
            unsafe { std::slice::from_raw_parts_mut(self.inline.as_mut_ptr() as *mut T, self.len) }
        }
    }

    /// Iterate by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Iterate by mutable reference.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.as_mut_slice().iter_mut()
    }

    /// Move every inline element into the heap vector.
    fn spill(&mut self, capacity: usize) {
        debug_assert!(!self.spilled);
        self.heap.reserve(capacity.max(self.len));
        for i in 0..self.len {
            // SAFETY: `0..len` is initialised; each slot is moved out
            // exactly once and `len` is zeroed right after.
            self.heap.push(unsafe { self.inline[i].assume_init_read() });
        }
        self.len = 0;
        self.spilled = true;
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T, const N: usize> Drop for SmallVec<T, N> {
    fn drop(&mut self) {
        if !self.spilled {
            for i in 0..self.len {
                // SAFETY: `0..len` is the initialised prefix; dropped
                // exactly once here.
                unsafe { self.inline[i].assume_init_drop() };
            }
        }
    }
}

impl<T, const N: usize> std::ops::Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> std::ops::DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        v.extend(iter);
        v
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        self.iter().cloned().collect()
    }
}

/// Consuming iterator over a [`SmallVec`].
pub struct IntoIter<T, const N: usize> {
    vec: SmallVec<T, N>,
    next: usize,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.vec.spilled {
            if self.next >= self.vec.heap.len() {
                return None;
            }
            // Draining from the front of the heap vec: swap-free read
            // via replace would need T: Default; a VecDeque would be
            // overkill. Take ownership by index using a raw read and
            // mark the element consumed by advancing `next`; the Drop
            // impl below skips consumed slots.
            let v = unsafe { std::ptr::read(self.vec.heap.as_ptr().add(self.next)) };
            self.next += 1;
            Some(v)
        } else {
            if self.next >= self.vec.len {
                return None;
            }
            // SAFETY: each inline slot is read exactly once; Drop skips
            // `0..next`.
            let v = unsafe { self.vec.inline[self.next].assume_init_read() };
            self.next += 1;
            Some(v)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl<T, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T, const N: usize> Drop for IntoIter<T, N> {
    fn drop(&mut self) {
        // Drop the unconsumed tail, then defuse the SmallVec's own Drop
        // (and Vec's) so nothing is dropped twice.
        if self.vec.spilled {
            for i in self.next..self.vec.heap.len() {
                unsafe { std::ptr::drop_in_place(self.vec.heap.as_mut_ptr().add(i)) };
            }
            // SAFETY: all heap elements are either moved out or dropped.
            unsafe { self.vec.heap.set_len(0) };
        } else {
            for i in self.next..self.vec.len {
                unsafe { self.vec.inline[i].assume_init_drop() };
            }
            self.vec.len = 0;
        }
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { vec: self, next: 0 }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn inline_then_spill() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v.push(4);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn pop_and_remove() {
        let mut v: SmallVec<String, 3> = SmallVec::new();
        for s in ["a", "b", "c"] {
            v.push(s.to_string());
        }
        assert_eq!(v.remove(0), "a");
        assert_eq!(v.as_slice(), &["b".to_string(), "c".to_string()]);
        assert_eq!(v.pop().as_deref(), Some("c"));
        assert_eq!(v.pop().as_deref(), Some("b"));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn split_off_inline_and_spilled() {
        let mut v: SmallVec<u8, 2> = (0..6).collect();
        assert!(v.spilled());
        let tail = v.split_off(2);
        assert_eq!(v.as_slice(), &[0, 1]);
        assert_eq!(tail.as_slice(), &[2, 3, 4, 5]);

        let mut w: SmallVec<u8, 8> = (0..6).collect();
        assert!(!w.spilled());
        let tail = w.split_off(4);
        assert_eq!(w.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(tail.as_slice(), &[4, 5]);
    }

    #[test]
    fn into_iter_moves_everything_once() {
        // Rc counts prove each element is dropped/moved exactly once.
        let token = Rc::new(());
        let mut v: SmallVec<Rc<()>, 2> = SmallVec::new();
        for _ in 0..5 {
            v.push(token.clone());
        }
        assert_eq!(Rc::strong_count(&token), 6);
        let collected: Vec<_> = v.into_iter().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(Rc::strong_count(&token), 6);
        drop(collected);
        assert_eq!(Rc::strong_count(&token), 1);
    }

    #[test]
    fn partial_into_iter_drops_tail() {
        let token = Rc::new(());
        let mut v: SmallVec<Rc<()>, 8> = SmallVec::new();
        for _ in 0..5 {
            v.push(token.clone());
        }
        let mut it = v.into_iter();
        let _first = it.next().unwrap();
        drop(it);
        assert_eq!(Rc::strong_count(&token), 2); // token + _first
    }

    #[test]
    fn drop_inline_releases_elements() {
        let token = Rc::new(());
        {
            let mut v: SmallVec<Rc<()>, 4> = SmallVec::new();
            v.push(token.clone());
            v.push(token.clone());
            assert_eq!(Rc::strong_count(&token), 3);
        }
        assert_eq!(Rc::strong_count(&token), 1);
    }
}
