//! Offline stand-in for [`rand`](https://crates.io/crates/rand) 0.8.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the small slice of the `rand` API that OSNT-rs uses:
//!
//! * [`rngs::SmallRng`] — a fast, seedable, non-cryptographic PRNG
//!   (xoshiro256++, the same algorithm `rand 0.8`'s `SmallRng` uses on
//!   64-bit targets, seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and `f64` ranges, and
//!   [`Rng::gen_bool`].
//!
//! Streams are deterministic per seed but are **not** guaranteed to be
//! bit-identical to upstream `rand` (range sampling differs); every
//! in-repo consumer only relies on per-seed determinism and statistical
//! behaviour, both of which hold.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (SplitMix64-expanded, like
    /// upstream `rand`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive; integer or
    /// `f64`). Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// `next_u64` folded to a uniform f64 in `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeFrom<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard the half-open contract against rounding at either edge.
        if x < self.start {
            self.start
        } else if x >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            x
        }
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind upstream `SmallRng` on 64-bit
    /// platforms: fast, small state, excellent statistical quality,
    /// explicitly not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1 << 40)).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u8..=7);
            assert!((5..=7).contains(&y));
            let f = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }

    #[test]
    fn mean_of_unit_range_is_half() {
        let mut r = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
