//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of the Criterion API the OSNT-rs benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `throughput` / `sample_size`, `Bencher::iter`,
//! `black_box`) on top of a simple but honest wall-clock harness:
//!
//! * each benchmark is warmed up, then timed over enough iterations to
//!   fill a measurement window (`--quick` shrinks the window for CI);
//! * results print as `time/iter` plus derived element / byte throughput;
//! * a machine-readable line (`BENCH_JSON {...}`) is emitted per
//!   benchmark so harness scripts can scrape numbers without parsing the
//!   human text.
//!
//! There is no statistical engine (no outlier analysis, no regression
//! detection) — numbers are mean wall-clock per iteration over the
//! window, which is exactly what the repo's perf-trajectory tracking
//! consumes.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque identity function that defeats constant folding, same
/// contract as `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark: how much work one iteration
/// represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A parameterized benchmark id, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id that is just the parameter's display form.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{p}", name.into()),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(b: BenchmarkId) -> String {
        b.id
    }
}

/// Passed to the measured closure; `iter` runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Harness configuration plus result sink. Mirrors `criterion::Criterion`.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --quick` (and CI) shrink the window.
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion {
            measurement_window: if quick {
                Duration::from_millis(60)
            } else {
                Duration::from_millis(400)
            },
        }
    }
}

impl Criterion {
    /// Run one benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        run_bench(&id, None, self.measurement_window, f);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            window: self.measurement_window,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    window: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate how much work one iteration of subsequent benches does.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the harness sizes its own window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink or grow the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.window = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.throughput, self.window, f);
    }

    /// Run one benchmark in the group with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<String>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (printing happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, tp: Option<Throughput>, window: Duration, mut f: F) {
    // Calibration: run single iterations until we know roughly how long
    // one takes, then choose an iteration count that fills the window.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));
    let warm_target = window / 4;
    // Warm up for ~1/4 window.
    let warm_iters =
        ((warm_target.as_nanos() / per_iter.as_nanos().max(1)) as u64).clamp(1, 1 << 20);
    b.iters = warm_iters;
    f(&mut b);
    per_iter = (b.elapsed / warm_iters.max(1) as u32).max(Duration::from_nanos(1));
    // Measure over the window.
    let iters = ((window.as_nanos() / per_iter.as_nanos().max(1)) as u64).clamp(1, 1 << 24);
    b.iters = iters;
    f(&mut b);
    let total = b.elapsed;
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    let mut line = format!(
        "{id:<44} time: {:>12}/iter  ({iters} iters)",
        fmt_ns(mean_ns)
    );
    let mut json_extra = String::new();
    match tp {
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 * 1e9 / mean_ns;
            line.push_str(&format!("  thrpt: {:>12}", fmt_rate(eps, "elem/s")));
            json_extra = format!(",\"elements_per_iter\":{n},\"elements_per_sec\":{eps:.1}");
        }
        Some(Throughput::Bytes(n)) => {
            let bps = n as f64 * 1e9 / mean_ns;
            line.push_str(&format!("  thrpt: {:>12}", fmt_rate(bps, "B/s")));
            json_extra = format!(",\"bytes_per_iter\":{n},\"bytes_per_sec\":{bps:.1}");
        }
        None => {}
    }
    println!("{line}");
    println!("BENCH_JSON {{\"id\":\"{id}\",\"mean_ns_per_iter\":{mean_ns:.1}{json_extra}}}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(v: f64, unit: &str) -> String {
    if v >= 1e9 {
        format!("{:.3} G{unit}", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M{unit}", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} k{unit}", v / 1e3)
    } else {
        format!("{v:.1} {unit}")
    }
}

/// Define a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
