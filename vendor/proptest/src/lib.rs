//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the OSNT-rs test suite
//! uses:
//!
//! * the [`proptest!`] macro wrapping `#[test] fn name(x in strategy)`
//!   items;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples of strategies and [`arbitrary::any`];
//! * [`collection::vec`] for variable-length vectors.
//!
//! Differences from upstream, deliberately accepted: **no shrinking**
//! (a failing case reports its case number and the deterministic seed
//! that reproduces it), and a fixed deterministic seed per test name so
//! CI runs are reproducible. Case count defaults to 256 and can be
//! raised with `PROPTEST_CASES`.

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen_range(-1.0e12..1.0e12)
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length bounds for [`vec`]; converts from usize ranges.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case driving.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl RngCore for TestRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property with its explanation.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl TestCaseError {
        /// Build from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Drives the cases of one `proptest!` function.
    pub struct TestRunner {
        /// Number of cases to run.
        pub cases: u32,
        seed_base: u64,
    }

    impl TestRunner {
        /// Runner for the named test: fixed seed derived from the name,
        /// case count from `PROPTEST_CASES` (default 256).
        pub fn for_test(name: &str) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            // FNV-1a over the test name: deterministic, no RandomState.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                cases,
                seed_base: h,
            }
        }

        /// The RNG for case `i`.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng(SmallRng::seed_from_u64(
                self.seed_base.wrapping_add(case as u64),
            ))
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test needs in scope.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case aborts with the stringified condition (plus optional context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Wrap `#[test] fn name(arg in strategy, ...) { body }` items into
/// randomized property tests.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::test_runner::TestRunner::for_test(stringify!($name));
                for case in 0..runner.cases {
                    let mut rng = runner.rng_for(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (set PROPTEST_CASES to rerun):\n{}",
                            stringify!($name),
                            case,
                            runner.cases,
                            e
                        );
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_length_in_bounds(v in crate::collection::vec(any::<u8>(), 3..10)) {
            prop_assert!(v.len() >= 3 && v.len() < 10);
        }

        #[test]
        fn map_applies(x in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 200);
        }

        #[test]
        fn tuples_and_arrays(pair in (any::<bool>(), 1usize..5), mac in any::<[u8; 6]>()) {
            let (_b, n) = pair;
            prop_assert!((1..5).contains(&n));
            prop_assert_eq!(mac.len(), 6);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let r1 = TestRunner::for_test("x");
        let r2 = TestRunner::for_test("x");
        let mut a = r1.rng_for(3);
        let mut b = r2.rng_for(3);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
