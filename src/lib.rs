//! OSNT-rs umbrella crate: re-exports every subsystem of the workspace.
//!
//! See the `osnt_core` crate for the main platform API.
pub use oflops_turbo as oflops;
pub use osnt_chaos as chaos;
pub use osnt_core as core;
pub use osnt_gen as gen;
pub use osnt_mon as mon;
pub use osnt_netsim as netsim;
pub use osnt_openflow as openflow;
pub use osnt_packet as packet;
pub use osnt_switch as switch;
pub use osnt_time as time;
