#!/usr/bin/env python3
"""CI perf-regression guard over the committed BENCH_*.json baselines.

Usage:
    perf_guard.py BASELINE_DIR CURRENT.json [CURRENT.json ...]

For every CURRENT artifact, the committed baseline of the same filename
is loaded from BASELINE_DIR and each result row's throughput metric
(`frames_per_wall_s`, `events_per_wall_s` or `sim_frames_per_wall_s`)
is compared against the baseline row with the same identity (the
non-measured keys: burst size, shard count, path name, frame length,
...). The guard fails when any metric drops more than THRESHOLD below
its baseline.

Wall-clock throughput on shared CI runners is noisy; 15% is wide enough
to absorb scheduler jitter while still catching a real datapath
regression (the optimised paths this repo commits are 2-4x faster than
their scalar references, so a genuine fast-path break shows up as a
50%+ drop, not 15%).

Shard-scaling artifacts are only compared when both sides were produced
under the same `cores_limited` condition: a 1-core artifact measures
scheduling overhead, not parallelism, and must not gate a multi-core
run (or vice versa).
"""

import json
import pathlib
import sys

THRESHOLD = 0.15
RATE_KEYS = (
    "frames_per_wall_s",
    "events_per_wall_s",
    "sim_frames_per_wall_s",
    "ops_per_wall_s",
    "sessions_per_wall_s",
)
# Keys that are measurements (vary run to run), not row identity.
MEASURED = set(RATE_KEYS) | {
    "wall_s",
    "scalar_wall_s",
    "burst_wall_s",
    "linear_wall_s",
    "tuple_wall_s",
    "linear_ops_per_wall_s",
    "ops",
    "speedup",
    "achieved_pps",
    "deficit_pct",
    "stream_wall_s",
    "collect_wall_s",
    # Run-size/outcome fields: these scale with --frames, so keeping
    # them in the identity would break comparisons whenever CI runs a
    # different frame count than the committed baseline.
    "digest",
    "captured",
    "events",
    # Fairness is a quality score the bench already asserts on (> 0.95);
    # tiny float drift must not split row identity.
    "jain_fairness",
    # Sharded-executive window/ring ledger (BENCH_e17.json): the
    # counters are deterministic per build, but retuning the window
    # machinery legitimately shifts them — the bench gates on the
    # reduction itself, so they must not split row identity here.
    "windows_executed",
    "windows_skipped",
    "barrier_waits",
    "ring_pushes",
    "ring_drains",
    "spill_events",
    "window_reduction",
}


def rows(doc):
    """Yield (identity, rate_key, rate) for every comparable row."""
    for row in doc.get("results", []):
        rate_key = next((k for k in RATE_KEYS if k in row), None)
        if rate_key is None:
            continue
        ident = tuple(
            sorted((k, v) for k, v in row.items() if k not in MEASURED and not isinstance(v, (list, dict)))
        )
        yield ident, rate_key, float(row[rate_key])


def check(base_path, cur_path):
    base = json.load(open(base_path))
    cur = json.load(open(cur_path))
    # Correctness records (e.g. BENCH_chaos.json) carry no throughput
    # rows at all — they are audit tallies, not rate measurements. A
    # rate guard has nothing to compare there; the only thing worth
    # enforcing is that the audit itself is clean.
    if not list(rows(base)) and not list(rows(cur)):
        violations = cur.get("violations")
        if violations:
            return [
                f"  FAIL {cur_path.name}: correctness artifact reports "
                f"{violations} invariant violation(s)"
            ]
        print(f"  ok   {cur_path.name}: correctness artifact (no rate rows), audit clean")
        return []
    if base.get("cores_limited") != cur.get("cores_limited"):
        print(
            f"  SKIP {cur_path.name}: cores_limited "
            f"{base.get('cores_limited')} (baseline) vs {cur.get('cores_limited')} (current) "
            f"— artifacts are not comparable across host classes"
        )
        return []
    baseline_rows = {ident: (k, r) for ident, k, r in rows(base)}
    failures = []
    compared = 0
    for ident, rate_key, rate in rows(cur):
        if ident not in baseline_rows:
            continue
        _, base_rate = baseline_rows[ident]
        compared += 1
        if base_rate <= 0:
            continue
        drop = 1.0 - rate / base_rate
        label = ", ".join(f"{k}={v}" for k, v in ident)
        if drop > THRESHOLD:
            failures.append(
                f"  FAIL {cur_path.name} [{label}]: {rate_key} "
                f"{rate:.0f} is {drop:.1%} below baseline {base_rate:.0f}"
            )
        else:
            word = "down" if drop > 0 else "up"
            print(
                f"  ok   {cur_path.name} [{label}]: {rate_key} "
                f"{rate:.0f} vs {base_rate:.0f} ({abs(drop):.1%} {word})"
            )
    if compared == 0:
        failures.append(f"  FAIL {cur_path.name}: no comparable rows against {base_path.name}")
    return failures


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline_dir = pathlib.Path(argv[1])
    failures = []
    for arg in argv[2:]:
        cur_path = pathlib.Path(arg)
        base_path = baseline_dir / cur_path.name
        if not base_path.exists():
            print(f"  SKIP {cur_path.name}: no committed baseline")
            continue
        if not cur_path.exists():
            failures.append(f"  FAIL {cur_path.name}: artifact was not produced")
            continue
        failures += check(base_path, cur_path)
    if failures:
        print(f"\nPerf regression guard: {len(failures)} failure(s), threshold {THRESHOLD:.0%}")
        print("\n".join(failures))
        return 1
    print(f"\nPerf regression guard: all artifacts within {THRESHOLD:.0%} of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
