//! The simulation kernel: virtual time, the event queue, the MAC/link
//! timing model and per-port accounting.

use crate::burst::PacketBurst;
use crate::component::ComponentId;
use crate::event::EventKind;
use crate::link::LinkSpec;
use crate::stats::PortCounters;
use crate::trace::{TraceEvent, Tracer};
use crate::wheel::TimerWheel;
use osnt_packet::{Packet, IFG_LEN};
use osnt_time::{SimDuration, SimTime};

/// Outcome of [`Kernel::transmit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxResult {
    /// The frame was accepted by the MAC.
    Transmitted {
        /// Instant the first bit goes on the wire (now, or when the MAC
        /// finishes earlier frames).
        tx_start: SimTime,
        /// Instant the last bit arrives at the peer.
        delivery: SimTime,
    },
    /// The output buffer was full; the frame was tail-dropped.
    Dropped,
    /// The port has no link attached; the frame went nowhere.
    NotConnected,
}

impl TxResult {
    /// True when the frame made it onto the wire.
    pub fn is_transmitted(&self) -> bool {
        matches!(self, TxResult::Transmitted { .. })
    }
}

/// Outcome of [`Kernel::transmit_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchTx {
    /// Frames accepted onto the wire.
    pub accepted: u64,
    /// Frame bytes accepted (conventional length, summed).
    pub accepted_bytes: u64,
    /// Frames tail-dropped at the output buffer.
    pub dropped: u64,
    /// Wire start instant of the first accepted frame.
    pub first_tx_start: Option<SimTime>,
    /// Wire start instant of the last accepted frame.
    pub last_tx_start: Option<SimTime>,
    /// Arrival instant of the last accepted frame's final bit.
    pub last_delivery: Option<SimTime>,
    /// True when the port has no link: nothing was sent.
    pub not_connected: bool,
}

#[derive(Debug, Clone, Copy)]
struct Wire {
    spec: LinkSpec,
    peer: ComponentId,
    peer_port: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct OutPort {
    wire: Option<Wire>,
    /// Instant the MAC becomes free to start another frame (includes the
    /// inter-frame gap of the previous frame).
    busy_until: SimTime,
    /// Frame bytes accepted but not yet fully serialised.
    queued_bytes: usize,
    /// Output buffer capacity in frame bytes (`None` = unbounded; tester
    /// ports pace themselves, switch ports set a real limit).
    buffer_bytes: Option<usize>,
    counters: PortCounters,
}

impl OutPort {
    fn new() -> Self {
        OutPort {
            wire: None,
            busy_until: SimTime::ZERO,
            queued_bytes: 0,
            buffer_bytes: None,
            counters: PortCounters::default(),
        }
    }
}

/// Bits of the event key reserved for the per-source sequence counter.
/// The remaining high bits hold the source component id, so keys order
/// by `(source component, per-source seq)` — see [`event_key`].
pub(crate) const SRC_SEQ_BITS: u32 = 40;

/// Largest component id the key encoding supports (16M components).
pub(crate) const MAX_COMPONENTS: usize = 1 << (64 - SRC_SEQ_BITS);

/// The total event order is ascending `(time, event_key)`. The key packs
/// `(source component id, per-source sequence number)` so that ties at
/// one instant break by source component id, then by the order the
/// source scheduled them. Crucially the key depends only on *which*
/// component scheduled the event and on that component's own scheduling
/// history — never on the global interleaving — so a sharded run
/// computes byte-identical keys to the single-threaded kernel and
/// dispatches in byte-identical order.
#[inline]
pub(crate) fn event_key(src: ComponentId, ctr: u64) -> u64 {
    // 2^40 events per component outlasts any realistic run (a port at
    // 14.88 Mpps takes ~20 simulated hours to get there).
    debug_assert!(
        ctr < 1 << SRC_SEQ_BITS,
        "per-component event counter overflow"
    );
    ((src.0 as u64) << SRC_SEQ_BITS) | ctr
}

/// The simulation kernel. Components receive `&mut Kernel` in their event
/// handlers; harness code reaches it through [`crate::Sim::kernel`].
pub struct Kernel {
    pub(crate) now: SimTime,
    /// Per-component event sequence counters (the low bits of
    /// [`event_key`]). Indexed by component id; counts every event the
    /// component has scheduled, including cross-shard ones.
    pub(crate) comp_seq: Vec<u64>,
    pub(crate) queue: TimerWheel<EventKind>,
    /// ports[component][port]
    pub(crate) ports: Vec<Vec<OutPort>>,
    pub(crate) tracers: Vec<Box<dyn Tracer>>,
    pub(crate) events_dispatched: u64,
    /// Cross-shard routing state — `None` on single-threaded sims, so the
    /// fast path pays one branch.
    pub(crate) router: Option<crate::shard::ShardRouter>,
    /// Supervision heartbeat + cooperative abort flag — `None` on
    /// unsupervised runs, so the dispatch loop pays one branch.
    pub(crate) progress: Option<std::sync::Arc<osnt_time::ProgressProbe>>,
    /// Reusable arrival buffer for batch delivery (capacity persists
    /// across bursts; taken/restored around each `on_packet_batch`).
    pub(crate) batch_buf: Vec<(SimTime, Packet)>,
}

impl Kernel {
    pub(crate) fn new() -> Self {
        Kernel {
            now: SimTime::ZERO,
            comp_seq: Vec::new(),
            queue: TimerWheel::new(),
            ports: Vec::new(),
            tracers: Vec::new(),
            events_dispatched: 0,
            router: None,
            progress: None,
            batch_buf: Vec::new(),
        }
    }

    pub(crate) fn add_component_ports(&mut self, n_ports: usize) {
        assert!(
            self.ports.len() < MAX_COMPONENTS,
            "component id space exhausted"
        );
        self.ports
            .push((0..n_ports).map(|_| OutPort::new()).collect());
        self.comp_seq.push(0);
    }

    pub(crate) fn add_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracers.push(tracer);
    }

    pub(crate) fn connect_simplex(
        &mut self,
        src: ComponentId,
        src_port: usize,
        dst: ComponentId,
        dst_port: usize,
        spec: LinkSpec,
    ) {
        let port = self.out_port_mut(src, src_port);
        assert!(
            port.wire.is_none(),
            "port {src_port} of component {} already connected",
            src.0
        );
        port.wire = Some(Wire {
            spec,
            peer: dst,
            peer_port: dst_port,
        });
    }

    fn out_port_mut(&mut self, comp: ComponentId, port: usize) -> &mut OutPort {
        self.ports
            .get_mut(comp.0)
            .unwrap_or_else(|| panic!("unknown component id {}", comp.0))
            .get_mut(port)
            .unwrap_or_else(|| panic!("component {} has no port {port}", comp.0))
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far (debugging / progress metric).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Schedule `kind` at `time` on behalf of `src` (the component whose
    /// handler — or wiring — created the event). Events whose target
    /// lives on another shard are routed over that shard's inbound
    /// channel instead of the local wheel; the `(src, ctr)` key travels
    /// with them so the destination wheel slots them into the same total
    /// order the single-threaded kernel would.
    fn push_event(&mut self, time: SimTime, src: ComponentId, kind: EventKind) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let ctr = self.comp_seq[src.0];
        self.comp_seq[src.0] = ctr + 1;
        let key = event_key(src, ctr);
        if let Some(router) = &mut self.router {
            if router.is_remote(kind.target()) {
                router.send(time, key, kind);
                return;
            }
        }
        self.queue.push(time, key, kind);
    }

    /// Insert an event that arrived from another shard, carrying the key
    /// its source computed. Crate-internal: the shard executive calls
    /// this while draining inbound channels at a window boundary.
    pub(crate) fn inject(&mut self, time: SimTime, key: u64, kind: EventKind) {
        debug_assert!(time >= self.now, "cross-shard event arrived in the past");
        self.queue.push(time, key, kind);
    }

    /// Earliest pending event time in picoseconds (`None` when idle).
    /// (`&mut` because the wheel may migrate overflow entries to find
    /// its minimum.)
    pub(crate) fn peek_next_ps(&mut self) -> Option<u64> {
        self.queue.peek().map(|(t, _)| t.as_ps())
    }

    /// Every installed simplex wire as `(src, peer, propagation)` —
    /// the shard builder derives lookahead from this.
    pub(crate) fn wire_endpoints(
        &self,
    ) -> impl Iterator<Item = (ComponentId, ComponentId, SimDuration)> + '_ {
        self.ports.iter().enumerate().flat_map(|(src, ports)| {
            ports.iter().filter_map(move |p| {
                p.wire
                    .map(|w| (ComponentId(src), w.peer, w.spec.propagation))
            })
        })
    }

    /// Clone this kernel's static state (wiring, counters, clock) for
    /// one shard of a sharded build. The event queue must be empty and
    /// no tracers registered: events are created per-shard by
    /// `on_start`, and `Box<dyn Tracer>` cannot be replicated (the
    /// sharded builder rejects traced sims up front).
    pub(crate) fn replicate_for_shard(&self) -> Kernel {
        assert_eq!(self.queue.len(), 0, "replicate before scheduling events");
        assert!(
            self.tracers.is_empty(),
            "kernel tracers are not supported on sharded sims"
        );
        Kernel {
            now: self.now,
            comp_seq: self.comp_seq.clone(),
            queue: TimerWheel::new(),
            ports: self.ports.clone(),
            tracers: Vec::new(),
            events_dispatched: 0,
            router: None,
            // Shards share the one probe: `fetch_max` publishing keeps
            // the high-water mark coherent across workers.
            progress: self.progress.clone(),
            batch_buf: Vec::new(),
        }
    }

    /// Arm a timer for `me` firing after `delay` with discriminator
    /// `tag`. A zero delay fires after the current handler returns, at
    /// the same simulated time.
    pub fn schedule_timer(&mut self, me: ComponentId, delay: SimDuration, tag: u64) {
        self.push_event(self.now + delay, me, EventKind::Timer { target: me, tag });
    }

    /// Arm a timer at an absolute instant (must not be in the past).
    pub fn schedule_timer_at(&mut self, me: ComponentId, at: SimTime, tag: u64) {
        assert!(
            at >= self.now,
            "schedule_timer_at: {at} is in the past (now {})",
            self.now
        );
        self.push_event(at, me, EventKind::Timer { target: me, tag });
    }

    /// The earliest instant a frame offered now on (`me`, `port`) would
    /// start transmission — `now`, or later if the MAC is still clocking
    /// out earlier frames. The TX timestamping unit sits exactly here,
    /// "just before the transmit 10GbE MAC".
    pub fn next_tx_start(&self, me: ComponentId, port: usize) -> SimTime {
        let p = &self.ports[me.0][port];
        self.now.max(p.busy_until)
    }

    /// Bytes currently buffered in (`me`, `port`)'s output MAC.
    pub fn tx_queue_bytes(&self, me: ComponentId, port: usize) -> usize {
        self.ports[me.0][port].queued_bytes
    }

    /// Set (or clear) the output-buffer capacity of a port, in frame
    /// bytes. Frames offered while the buffer is full are tail-dropped.
    pub fn set_tx_buffer(&mut self, me: ComponentId, port: usize, bytes: Option<usize>) {
        self.out_port_mut(me, port).buffer_bytes = bytes;
    }

    /// Counter snapshot for (`comp`, `port`).
    pub fn counters(&self, comp: ComponentId, port: usize) -> PortCounters {
        self.ports[comp.0][port].counters
    }

    /// Transmit `packet` out of (`me`, `port`).
    ///
    /// Models a store-and-forward MAC: the frame starts when the port is
    /// free, occupies the wire for its serialisation time (including
    /// preamble and inter-frame gap) and is delivered to the peer when its
    /// last bit arrives.
    pub fn transmit(&mut self, me: ComponentId, port: usize, packet: Packet) -> TxResult {
        self.transmit_at(me, port, self.now, packet)
    }

    /// [`Kernel::transmit`] with an explicit earliest-start instant:
    /// the frame starts at `earliest` (which must not be in the past),
    /// or later if the MAC is still clocking out earlier frames.
    ///
    /// This is the per-member primitive of burst handlers
    /// ([`crate::Component::on_burst`]): during a burst the kernel
    /// clock reads the *burst-start* instant, so a forwarder passes
    /// each member's own arrival (or release) time here to get exactly
    /// the wire timing the scalar path would have produced.
    pub fn transmit_at(
        &mut self,
        me: ComponentId,
        port: usize,
        earliest: SimTime,
        packet: Packet,
    ) -> TxResult {
        debug_assert!(
            earliest >= self.now,
            "transmit_at: earliest start {earliest} is in the past (now {})",
            self.now
        );
        let now = earliest;
        let frame_len = packet.frame_len();
        let wire_len = packet.wire_len();
        let p = self.out_port_mut(me, port);
        let Some(wire) = p.wire else {
            return TxResult::NotConnected;
        };
        if let Some(cap) = p.buffer_bytes {
            if p.queued_bytes + frame_len > cap {
                p.counters.tx_drops += 1;
                self.emit_trace(TraceEvent::TxDropped {
                    src: me,
                    port,
                    frame_len,
                });
                return TxResult::Dropped;
            }
        }
        let tx_start = now.max(p.busy_until);
        // Time on the wire: preamble + frame (visible), then the IFG
        // before the next frame may start.
        let ser_visible = wire.spec.serialization(wire_len - IFG_LEN);
        let ser_total = wire.spec.serialization(wire_len);
        let tx_end = tx_start + ser_visible;
        let delivery = tx_end + wire.spec.propagation;
        p.busy_until = tx_start + ser_total;
        p.queued_bytes += frame_len;
        p.counters.tx_frames += 1;
        p.counters.tx_bytes += frame_len as u64;
        let (peer, peer_port) = (wire.peer, wire.peer_port);
        self.push_event(
            tx_end,
            me,
            EventKind::TxDone {
                src: me,
                port,
                frame_len,
            },
        );
        self.push_event(
            delivery,
            me,
            EventKind::Deliver {
                dst: peer,
                port: peer_port,
                packet,
            },
        );
        self.emit_trace(TraceEvent::TxAccepted {
            src: me,
            port,
            frame_len,
        });
        TxResult::Transmitted { tx_start, delivery }
    }

    /// Transmit a burst of frames back-to-back out of (`me`, `port`),
    /// coalescing the bookkeeping: one MAC reservation walk and a single
    /// TxDone event for the whole batch (frames still get individual
    /// Deliver events — the peer observes identical arrival times as
    /// `count` separate [`Kernel::transmit`] calls).
    ///
    /// `frames` is a factory, not an iterator: it is handed the wire
    /// start instant the MAC has reserved for the next frame and returns
    /// the frame to put there (`None` ends the batch). Knowing the
    /// departure instant *before* the frame is enqueued is what lets the
    /// generator embed TX timestamps on the batched path — the stamp it
    /// writes is exactly the `tx_start` the per-frame path would have
    /// observed from [`Kernel::transmit`]. A frame the factory built for
    /// a slot may still be tail-dropped by the output buffer, exactly as
    /// in per-frame transmit (the per-frame path also stamps before it
    /// learns the drop verdict); the slot is then re-offered to the next
    /// frame.
    ///
    /// Each accepted frame's wire start time is appended to `tx_starts`
    /// when provided (the generator's departure log).
    ///
    /// With no tracers installed the accepted frames leave as a single
    /// [`crate::PacketBurst`] event — one timer-wheel entry for the
    /// whole run, carrying per-member arrival instants and the same
    /// per-member event keys the per-frame path would have allocated,
    /// so the dispatch-side total order is unchanged (the dispatch loop
    /// splits the burst lazily when a timer or foreign event interleaves).
    /// Under tracers the batch falls back to one `Deliver` per frame.
    ///
    /// Note the event stream is *not* byte-for-byte identical to
    /// per-frame transmits — TxDone events are merged, so sequence
    /// numbers differ. Paths that must preserve the legacy event stream
    /// (determinism pinning) keep calling `transmit` per frame.
    pub fn transmit_batch(
        &mut self,
        me: ComponentId,
        port: usize,
        frames: &mut dyn FnMut(SimTime) -> Option<Packet>,
        mut tx_starts: Option<&mut Vec<SimTime>>,
    ) -> BatchTx {
        let now = self.now;
        let mut out = BatchTx::default();
        if self.ports[me.0][port].wire.is_none() {
            out.not_connected = true;
            return out;
        }
        let mut batch_bytes = 0usize;
        let mut last_tx_end = None;
        // Batches are overwhelmingly same-sized frames: memoise the
        // serialisation times for the last wire length seen. The port,
        // wire and event-queue borrows are hoisted/split so the loop
        // body touches disjoint fields instead of re-resolving the port
        // per frame.
        let mut ser_cache: Option<(usize, SimDuration, SimDuration)> = None;
        let Kernel {
            ports,
            comp_seq,
            queue,
            router,
            tracers,
            ..
        } = self;
        let p = &mut ports[me.0][port];
        let wire = p.wire.expect("checked above");
        let tracing = !tracers.is_empty();
        // Is the peer on another shard? Resolved once for the batch —
        // a wire's peer never moves.
        let remote = router.as_ref().is_some_and(|r| r.is_remote(wire.peer));
        // Accepted frames accumulate into one burst event (traced runs
        // keep the legacy one-Deliver-per-frame stream instead).
        let mut burst: Option<Box<PacketBurst>> = None;
        loop {
            let tx_start = now.max(p.busy_until);
            let Some(packet) = frames(tx_start) else {
                break;
            };
            let frame_len = packet.frame_len();
            let wire_len = packet.wire_len();
            if let Some(cap) = p.buffer_bytes {
                if p.queued_bytes + frame_len > cap {
                    p.counters.tx_drops += 1;
                    out.dropped += 1;
                    if tracing {
                        let ev = TraceEvent::TxDropped {
                            src: me,
                            port,
                            frame_len,
                        };
                        for tr in tracers.iter_mut() {
                            tr.trace(now, &ev);
                        }
                    }
                    continue;
                }
            }
            let (ser_visible, ser_total) = match ser_cache {
                Some((len, vis, tot)) if len == wire_len => (vis, tot),
                _ => {
                    let vis = wire.spec.serialization(wire_len - IFG_LEN);
                    let tot = wire.spec.serialization(wire_len);
                    ser_cache = Some((wire_len, vis, tot));
                    (vis, tot)
                }
            };
            let tx_end = tx_start + ser_visible;
            let delivery = tx_end + wire.spec.propagation;
            p.busy_until = tx_start + ser_total;
            p.queued_bytes += frame_len;
            p.counters.tx_frames += 1;
            p.counters.tx_bytes += frame_len as u64;
            batch_bytes += frame_len;
            last_tx_end = Some(tx_end);
            out.accepted += 1;
            out.accepted_bytes += frame_len as u64;
            out.first_tx_start.get_or_insert(tx_start);
            out.last_tx_start = Some(tx_start);
            out.last_delivery = Some(delivery);
            if let Some(ts) = tx_starts.as_deref_mut() {
                ts.push(tx_start);
            }
            let ctr = comp_seq[me.0];
            comp_seq[me.0] = ctr + 1;
            let key = event_key(me, ctr);
            if tracing {
                let ev = EventKind::Deliver {
                    dst: wire.peer,
                    port: wire.peer_port,
                    packet,
                };
                if remote {
                    router
                        .as_mut()
                        .expect("remote implies router")
                        .send(delivery, key, ev);
                } else {
                    queue.push(delivery, key, ev);
                }
                let ev = TraceEvent::TxAccepted {
                    src: me,
                    port,
                    frame_len,
                };
                for tr in tracers.iter_mut() {
                    tr.trace(now, &ev);
                }
            } else {
                burst
                    .get_or_insert_with(|| Box::new(PacketBurst::new(key)))
                    .push(delivery, packet);
            }
        }
        if let Some(mut b) = burst {
            let time = b.first_time();
            let key = b.first_key();
            // A one-frame "burst" ships as a plain Deliver: same key,
            // same arrival, smaller event.
            let ev = if b.len() == 1 {
                let (_, packet) = b.pop_front().expect("len checked");
                EventKind::Deliver {
                    dst: wire.peer,
                    port: wire.peer_port,
                    packet,
                }
            } else {
                EventKind::DeliverBurst {
                    dst: wire.peer,
                    port: wire.peer_port,
                    burst: b,
                }
            };
            if remote {
                router
                    .as_mut()
                    .expect("remote implies router")
                    .send(time, key, ev);
            } else {
                queue.push(time, key, ev);
            }
        }
        if let Some(tx_end) = last_tx_end {
            // TxDone targets `me`, which is by definition local — no
            // routing check needed, but push_event does it anyway.
            self.push_event(
                tx_end,
                me,
                EventKind::TxDone {
                    src: me,
                    port,
                    frame_len: batch_bytes,
                },
            );
        }
        out
    }

    /// Transmit a burst of frames out of (`me`, `port`), each with its
    /// own earliest-start instant (the member-wise analogue of
    /// [`Kernel::transmit_at`], the burst-wise analogue of
    /// [`Kernel::transmit_batch`]).
    ///
    /// This is how burst-aware forwarders ([`crate::Component::on_burst`])
    /// keep a burst *one* queue entry across a hop: the accepted frames
    /// leave as a single [`crate::PacketBurst`] plus one merged TxDone,
    /// and every member's wire timing is exactly what per-frame
    /// [`Kernel::transmit_at`] calls with the same `earliest` instants
    /// would have produced.
    ///
    /// Falls back to per-frame transmits (scalar event stream) on
    /// buffer-capped ports — a merged TxDone would delay the
    /// queued-byte drain and change tail-drop verdicts — and under
    /// kernel tracers.
    pub fn transmit_burst(
        &mut self,
        me: ComponentId,
        port: usize,
        frames: impl IntoIterator<Item = (SimTime, Packet)>,
    ) -> BatchTx {
        let mut out = BatchTx::default();
        if self.ports[me.0][port].wire.is_none() {
            out.not_connected = true;
            return out;
        }
        if self.ports[me.0][port].buffer_bytes.is_some() || !self.tracers.is_empty() {
            for (earliest, packet) in frames {
                match self.transmit_at(me, port, earliest, packet) {
                    TxResult::Transmitted { tx_start, delivery } => {
                        out.accepted += 1;
                        out.first_tx_start.get_or_insert(tx_start);
                        out.last_tx_start = Some(tx_start);
                        out.last_delivery = Some(delivery);
                    }
                    TxResult::Dropped => out.dropped += 1,
                    TxResult::NotConnected => unreachable!("wire checked above"),
                }
            }
            return out;
        }
        let mut batch_bytes = 0usize;
        let mut last_tx_end = None;
        let mut ser_cache: Option<(usize, SimDuration, SimDuration)> = None;
        let now = self.now;
        let Kernel {
            ports,
            comp_seq,
            queue,
            router,
            ..
        } = self;
        let p = &mut ports[me.0][port];
        let wire = p.wire.expect("checked above");
        let remote = router.as_ref().is_some_and(|r| r.is_remote(wire.peer));
        let mut burst: Option<Box<PacketBurst>> = None;
        for (earliest, packet) in frames {
            debug_assert!(
                earliest >= now,
                "transmit_burst: earliest start {earliest} is in the past (now {now})"
            );
            let frame_len = packet.frame_len();
            let wire_len = packet.wire_len();
            let (ser_visible, ser_total) = match ser_cache {
                Some((len, vis, tot)) if len == wire_len => (vis, tot),
                _ => {
                    let vis = wire.spec.serialization(wire_len - IFG_LEN);
                    let tot = wire.spec.serialization(wire_len);
                    ser_cache = Some((wire_len, vis, tot));
                    (vis, tot)
                }
            };
            let tx_start = earliest.max(p.busy_until);
            let tx_end = tx_start + ser_visible;
            let delivery = tx_end + wire.spec.propagation;
            p.busy_until = tx_start + ser_total;
            p.queued_bytes += frame_len;
            p.counters.tx_frames += 1;
            p.counters.tx_bytes += frame_len as u64;
            batch_bytes += frame_len;
            last_tx_end = Some(tx_end);
            out.accepted += 1;
            out.accepted_bytes += frame_len as u64;
            out.first_tx_start.get_or_insert(tx_start);
            out.last_tx_start = Some(tx_start);
            out.last_delivery = Some(delivery);
            let ctr = comp_seq[me.0];
            comp_seq[me.0] = ctr + 1;
            let key = event_key(me, ctr);
            burst
                .get_or_insert_with(|| Box::new(PacketBurst::new(key)))
                .push(delivery, packet);
        }
        if let Some(mut b) = burst {
            let time = b.first_time();
            let key = b.first_key();
            let ev = if b.len() == 1 {
                let (_, packet) = b.pop_front().expect("len checked");
                EventKind::Deliver {
                    dst: wire.peer,
                    port: wire.peer_port,
                    packet,
                }
            } else {
                EventKind::DeliverBurst {
                    dst: wire.peer,
                    port: wire.peer_port,
                    burst: b,
                }
            };
            if remote {
                router
                    .as_mut()
                    .expect("remote implies router")
                    .send(time, key, ev);
            } else {
                queue.push(time, key, ev);
            }
        }
        if let Some(tx_end) = last_tx_end {
            self.push_event(
                tx_end,
                me,
                EventKind::TxDone {
                    src: me,
                    port,
                    frame_len: batch_bytes,
                },
            );
        }
        out
    }

    /// Put a partially consumed burst back on the queue under its next
    /// member's own `(time, key)` — the lazy-split half of burst
    /// dispatch (the un-consumed tail re-enters the total order exactly
    /// where its members always were).
    pub(crate) fn requeue_burst(&mut self, dst: ComponentId, port: usize, burst: Box<PacketBurst>) {
        debug_assert!(!burst.is_empty(), "requeue of an empty burst");
        self.queue.push(
            burst.first_time(),
            burst.first_key(),
            EventKind::DeliverBurst { dst, port, burst },
        );
    }

    #[inline]
    pub(crate) fn emit_trace(&mut self, ev: TraceEvent) {
        // With no tracers installed (the common case, and every perf
        // path) this inlines to a load + branch and the event
        // construction sinks away.
        if self.tracers.is_empty() {
            return;
        }
        let t = self.now;
        for tr in &mut self.tracers {
            tr.trace(t, &ev);
        }
    }

    pub(crate) fn note_rx(&mut self, dst: ComponentId, port: usize, frame_len: usize) {
        let p = self.out_port_mut(dst, port);
        p.counters.rx_frames += 1;
        p.counters.rx_bytes += frame_len as u64;
        self.emit_trace(TraceEvent::Delivered {
            dst,
            port,
            frame_len,
        });
    }

    pub(crate) fn note_tx_done(&mut self, src: ComponentId, port: usize, frame_len: usize) {
        let p = self.out_port_mut(src, port);
        debug_assert!(p.queued_bytes >= frame_len);
        p.queued_bytes -= frame_len;
    }

    /// Extend a delivery batch: keep popping events at or before `limit`
    /// for as long as the head of the queue is either another `Deliver`
    /// to the same `(dst, port)` or a `TxDone` (which carries no handler
    /// and only decrements per-port byte accounting, so running it
    /// inline preserves observable state exactly). Stops — leaving the
    /// queue untouched — at the first timer, foreign delivery, or event
    /// past `limit`. Returns the number of events consumed.
    ///
    /// Every event is popped at its exact position in the total order
    /// and stamps `now`/`events_dispatched` just like
    /// [`Kernel::pop_event_until`], so a run with coalescing dispatches
    /// the same events in the same order as one without — only the
    /// handler granularity changes.
    pub(crate) fn coalesce_arrivals(
        &mut self,
        dst: ComponentId,
        port: usize,
        limit: SimTime,
        batch: &mut Vec<(SimTime, Packet)>,
    ) -> u64 {
        let lim = limit;
        let mut consumed = 0;
        loop {
            let take = match self.queue.peek_item() {
                Some((t, _seq, kind)) if t <= lim => match kind {
                    EventKind::Deliver {
                        dst: d, port: p, ..
                    } => *d == dst && *p == port,
                    EventKind::DeliverBurst {
                        dst: d, port: p, ..
                    } => *d == dst && *p == port,
                    EventKind::TxDone { .. } => true,
                    EventKind::Timer { .. } => false,
                },
                _ => false,
            };
            if !take {
                return consumed;
            }
            let (time, _seq, kind) = self.queue.pop().expect("peeked above");
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.events_dispatched += 1;
            consumed += 1;
            match kind {
                EventKind::Deliver { dst, port, packet } => {
                    self.note_rx(dst, port, packet.frame_len());
                    batch.push((time, packet));
                }
                EventKind::DeliverBurst {
                    dst,
                    port,
                    mut burst,
                } => {
                    // The pop above accounted for member 0 only; the
                    // remaining members dispatch one at a time at their
                    // own `(time, key)` slots, stopping (and re-queuing
                    // the tail) as soon as the queue head — a TxDone or
                    // a competing delivery — would scalar-dispatch
                    // first. The batch a coalescing run hands to the
                    // sink is therefore byte-identical to the scalar
                    // event stream's.
                    let (t0, pkt0) = burst.pop_front().expect("bursts are non-empty");
                    debug_assert_eq!(t0, time, "burst scheduled at member 0's arrival");
                    self.note_rx(dst, port, pkt0.frame_len());
                    batch.push((t0, pkt0));
                    while let Some(&(t_next, _)) = burst.members().first() {
                        if t_next > lim {
                            break;
                        }
                        if let Some((th, kh)) = self.queue.peek() {
                            if (th, kh) < (t_next, burst.first_key()) {
                                break;
                            }
                        }
                        let (t, pkt) = burst.pop_front().expect("checked above");
                        self.now = t;
                        self.events_dispatched += 1;
                        consumed += 1;
                        self.note_rx(dst, port, pkt.frame_len());
                        batch.push((t, pkt));
                    }
                    if !burst.is_empty() {
                        self.requeue_burst(dst, port, burst);
                    }
                }
                EventKind::TxDone {
                    src,
                    port,
                    frame_len,
                } => self.note_tx_done(src, port, frame_len),
                EventKind::Timer { .. } => unreachable!("filtered above"),
            }
        }
    }

    /// Pop the next event if it fires at or before `limit`.
    pub(crate) fn pop_event_until(&mut self, limit: SimTime) -> Option<(SimTime, EventKind)> {
        let (time, _seq, kind) = self.queue.pop_at_or_before(limit)?;
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.events_dispatched += 1;
        Some((time, kind))
    }

    pub(crate) fn advance_now(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use crate::engine::SimBuilder;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// What the kernel told a `Probe` per send: (predicted start,
    /// result, now, queued bytes after).
    type ProbeLog = Rc<RefCell<Vec<(SimTime, TxResult, SimTime, usize)>>>;

    /// Transmits on command and records what the kernel told it.
    struct Probe {
        plan: Vec<(SimTime, usize)>, // (when, frame_len)
        results: ProbeLog,
    }
    impl Component for Probe {
        fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
            for (i, (t, _)) in self.plan.iter().enumerate() {
                k.schedule_timer_at(me, *t, i as u64);
            }
        }
        fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
        fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
            let (_, len) = self.plan[tag as usize];
            let predicted = k.next_tx_start(me, 0);
            let r = k.transmit(me, 0, Packet::zeroed(len));
            let queued = k.tx_queue_bytes(me, 0);
            self.results
                .borrow_mut()
                .push((predicted, r, k.now(), queued));
        }
    }

    struct Sink;
    impl Component for Sink {
        fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
    }

    fn run(plan: Vec<(SimTime, usize)>) -> Vec<(SimTime, TxResult, SimTime, usize)> {
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        let p = b.add_component(
            "probe",
            Box::new(Probe {
                plan,
                results: results.clone(),
            }),
            1,
        );
        let s = b.add_component("sink", Box::new(Sink), 1);
        b.connect(p, 0, s, 0, crate::link::LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_ms(10));
        let out = results.borrow().clone();
        out
    }

    #[test]
    fn next_tx_start_predicts_transmit_exactly() {
        // Two immediate sends: the second starts when the first's wire
        // slot ends.
        let r = run(vec![
            (SimTime::ZERO, 64),
            (SimTime::ZERO, 64),
            (SimTime::from_us(100), 1518),
        ]);
        for (predicted, result, _, _) in &r {
            let TxResult::Transmitted { tx_start, .. } = result else {
                panic!("expected transmit");
            };
            assert_eq!(predicted, tx_start);
        }
        let TxResult::Transmitted { tx_start, .. } = r[1].1 else {
            panic!()
        };
        assert_eq!(tx_start.as_ps(), 67_200, "second frame waits one slot");
    }

    #[test]
    fn queued_bytes_rise_then_drain() {
        let r = run(vec![(SimTime::ZERO, 64), (SimTime::ZERO, 64)]);
        // Right after the second transmit both frames are still in the
        // MAC (first is mid-serialisation at t=0).
        assert_eq!(r[1].3, 128);
        // And after the run everything drained — verified via a fresh
        // sim since we can't peek here; covered by the fact that both
        // frames were delivered (counter test below).
    }

    #[test]
    fn counters_and_queue_drain() {
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        let p = b.add_component(
            "probe",
            Box::new(Probe {
                plan: vec![(SimTime::ZERO, 64), (SimTime::ZERO, 1518)],
                results: results.clone(),
            }),
            1,
        );
        let s = b.add_component("sink", Box::new(Sink), 1);
        b.connect(p, 0, s, 0, crate::link::LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_ms(1));
        let k = sim.kernel();
        let probe_id = ComponentId(0);
        let sink_id = ComponentId(1);
        assert_eq!(k.counters(probe_id, 0).tx_frames, 2);
        assert_eq!(k.counters(probe_id, 0).tx_bytes, 64 + 1518);
        assert_eq!(k.counters(sink_id, 0).rx_frames, 2);
        assert_eq!(k.tx_queue_bytes(probe_id, 0), 0, "MAC drained");
    }

    /// Sends one batch of `n` frames at t=0 via `transmit_batch`.
    struct BatchProbe {
        n: u64,
        tx_starts: Rc<RefCell<Vec<SimTime>>>,
        result: Rc<RefCell<Option<BatchTx>>>,
    }
    impl Component for BatchProbe {
        fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
            k.schedule_timer_at(me, SimTime::ZERO, 0);
        }
        fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
        fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, _tag: u64) {
            let mut starts = Vec::new();
            let template = Packet::zeroed(64);
            let (n, mut sent) = (self.n, 0u64);
            let mut frames = |_tx_start: SimTime| {
                (sent < n).then(|| {
                    sent += 1;
                    template.clone()
                })
            };
            let r = k.transmit_batch(me, 0, &mut frames, Some(&mut starts));
            *self.tx_starts.borrow_mut() = starts;
            *self.result.borrow_mut() = Some(r);
        }
    }

    #[test]
    fn transmit_batch_matches_per_frame_wire_timing() {
        // Per-frame reference: three back-to-back 64B transmits.
        let per_frame = run(vec![
            (SimTime::ZERO, 64),
            (SimTime::ZERO, 64),
            (SimTime::ZERO, 64),
        ]);
        let reference: Vec<SimTime> = per_frame
            .iter()
            .map(|(_, r, _, _)| match r {
                TxResult::Transmitted { tx_start, .. } => *tx_start,
                other => panic!("expected transmit, got {other:?}"),
            })
            .collect();

        let tx_starts = Rc::new(RefCell::new(Vec::new()));
        let result = Rc::new(RefCell::new(None));
        let mut b = SimBuilder::new();
        let p = b.add_component(
            "batch",
            Box::new(BatchProbe {
                n: 3,
                tx_starts: tx_starts.clone(),
                result: result.clone(),
            }),
            1,
        );
        let s = b.add_component("sink", Box::new(Sink), 1);
        b.connect(p, 0, s, 0, crate::link::LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_ms(1));

        assert_eq!(*tx_starts.borrow(), reference, "same wire slots");
        let r = result.borrow().expect("batch ran");
        assert_eq!(r.accepted, 3);
        assert_eq!(r.accepted_bytes, 3 * 64);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.first_tx_start, Some(SimTime::ZERO));
        assert_eq!(r.last_tx_start, reference.last().copied());
        let k = sim.kernel();
        assert_eq!(k.counters(p, 0).tx_frames, 3);
        assert_eq!(k.counters(s, 0).rx_frames, 3);
        assert_eq!(k.tx_queue_bytes(p, 0), 0, "coalesced TxDone drained MAC");
    }

    #[test]
    fn transmit_batch_respects_buffer_cap() {
        let tx_starts = Rc::new(RefCell::new(Vec::new()));
        let result = Rc::new(RefCell::new(None));
        let mut b = SimBuilder::new();
        let p = b.add_component(
            "batch",
            Box::new(BatchProbe {
                n: 5,
                tx_starts: tx_starts.clone(),
                result: result.clone(),
            }),
            1,
        );
        let s = b.add_component("sink", Box::new(Sink), 1);
        b.connect(p, 0, s, 0, crate::link::LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.kernel_mut().set_tx_buffer(p, 0, Some(128)); // two 64B frames
        sim.run_until(SimTime::from_ms(1));
        let r = result.borrow().expect("batch ran");
        assert_eq!(r.accepted, 2);
        assert_eq!(r.dropped, 3);
        assert_eq!(sim.kernel().counters(p, 0).tx_drops, 3);
        assert_eq!(sim.kernel().counters(s, 0).rx_frames, 2);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut b = SimBuilder::new();
        let a = b.add_component("a", Box::new(Sink), 1);
        let c = b.add_component("c", Box::new(Sink), 1);
        let d = b.add_component("d", Box::new(Sink), 1);
        b.connect(a, 0, c, 0, crate::link::LinkSpec::ten_gig());
        b.connect(a, 0, d, 0, crate::link::LinkSpec::ten_gig());
    }

    #[test]
    #[should_panic(expected = "has no port")]
    fn bad_port_panics() {
        let mut b = SimBuilder::new();
        let a = b.add_component("a", Box::new(Sink), 1);
        let c = b.add_component("c", Box::new(Sink), 1);
        b.connect(a, 5, c, 0, crate::link::LinkSpec::ten_gig());
    }
}
