//! Per-port counters, in the style of MAC statistics registers, plus
//! the sharded executive's per-shard window/ring accounting.

/// Frame/byte/drop counters for one simplex direction of a port.
///
/// Byte counts use the conventional frame length (including FCS), the
/// quantity a switch's SNMP `ifInOctets`/`ifOutOctets` would report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Frames accepted for transmission (queued into the MAC).
    pub tx_frames: u64,
    /// Bytes accepted for transmission.
    pub tx_bytes: u64,
    /// Frames dropped on transmit because the output buffer was full.
    pub tx_drops: u64,
    /// Frames fully received.
    pub rx_frames: u64,
    /// Bytes fully received.
    pub rx_bytes: u64,
}

impl PortCounters {
    /// Sum of two snapshots (useful to aggregate ports).
    pub fn merged(self, other: PortCounters) -> PortCounters {
        PortCounters {
            tx_frames: self.tx_frames + other.tx_frames,
            tx_bytes: self.tx_bytes + other.tx_bytes,
            tx_drops: self.tx_drops + other.tx_drops,
            rx_frames: self.rx_frames + other.rx_frames,
            rx_bytes: self.rx_bytes + other.rx_bytes,
        }
    }
}

/// Deterministic counters for one shard of a [`crate::ShardedSim`] run.
///
/// Every field is a pure function of the topology, the traffic and the
/// window policy — **not** of the host's core count or scheduling — so
/// two runs of the same simulation produce identical `ShardStats`, and
/// benches can gate on them without flakiness. Window rounds are
/// lockstep across workers, which yields the executive's ledger
/// invariants (checked by the chaos auditor):
///
/// * `windows_executed + windows_skipped` is identical on every shard
///   of a run (each round, each worker either dispatches its slice of
///   the window or skips an empty one — never neither);
/// * summed over all shards, ring `pushes == ring_drains + spills`
///   once the run has quiesced (rings are empty between runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Window rounds in which this shard dispatched at least one event.
    pub windows_executed: u64,
    /// Window rounds this shard sat out (no local event inside its
    /// window bound).
    pub windows_skipped: u64,
    /// Barrier crossings performed by this shard's worker (two per
    /// round, plus the final round's pair).
    pub barrier_waits: u64,
    /// Entries this shard pushed into its outbound cross-shard rings
    /// (ring slots and spill overflow both count).
    pub ring_pushes: u64,
    /// Entries this shard drained out of inbound ring slots (spill
    /// deliveries excluded — see [`crate::sync::RingCounters`]).
    pub ring_drains: u64,
    /// Outbound pushes that overflowed a full ring into its spill
    /// vector.
    pub spill_events: u64,
}

impl ShardStats {
    /// Total window rounds this shard's worker participated in.
    pub fn rounds(&self) -> u64 {
        self.windows_executed + self.windows_skipped
    }

    /// Sum of two snapshots (useful to aggregate shards).
    pub fn merged(self, other: ShardStats) -> ShardStats {
        ShardStats {
            windows_executed: self.windows_executed + other.windows_executed,
            windows_skipped: self.windows_skipped + other.windows_skipped,
            barrier_waits: self.barrier_waits + other.barrier_waits,
            ring_pushes: self.ring_pushes + other.ring_pushes,
            ring_drains: self.ring_drains + other.ring_drains,
            spill_events: self.spill_events + other.spill_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_stats_merge_and_rounds() {
        let a = ShardStats {
            windows_executed: 3,
            windows_skipped: 2,
            barrier_waits: 12,
            ring_pushes: 7,
            ring_drains: 6,
            spill_events: 1,
        };
        let b = ShardStats {
            windows_executed: 1,
            windows_skipped: 4,
            ..ShardStats::default()
        };
        assert_eq!(a.rounds(), 5);
        let m = a.merged(b);
        assert_eq!(m.windows_executed, 4);
        assert_eq!(m.windows_skipped, 6);
        assert_eq!(m.rounds(), 10);
        assert_eq!(m.ring_pushes, 7);
    }

    #[test]
    fn merge_sums_fields() {
        let a = PortCounters {
            tx_frames: 1,
            tx_bytes: 64,
            tx_drops: 2,
            rx_frames: 3,
            rx_bytes: 192,
        };
        let b = PortCounters {
            tx_frames: 10,
            tx_bytes: 640,
            tx_drops: 0,
            rx_frames: 30,
            rx_bytes: 1920,
        };
        let m = a.merged(b);
        assert_eq!(m.tx_frames, 11);
        assert_eq!(m.tx_bytes, 704);
        assert_eq!(m.tx_drops, 2);
        assert_eq!(m.rx_frames, 33);
        assert_eq!(m.rx_bytes, 2112);
    }
}
