//! Per-port counters, in the style of MAC statistics registers.

/// Frame/byte/drop counters for one simplex direction of a port.
///
/// Byte counts use the conventional frame length (including FCS), the
/// quantity a switch's SNMP `ifInOctets`/`ifOutOctets` would report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Frames accepted for transmission (queued into the MAC).
    pub tx_frames: u64,
    /// Bytes accepted for transmission.
    pub tx_bytes: u64,
    /// Frames dropped on transmit because the output buffer was full.
    pub tx_drops: u64,
    /// Frames fully received.
    pub rx_frames: u64,
    /// Bytes fully received.
    pub rx_bytes: u64,
}

impl PortCounters {
    /// Sum of two snapshots (useful to aggregate ports).
    pub fn merged(self, other: PortCounters) -> PortCounters {
        PortCounters {
            tx_frames: self.tx_frames + other.tx_frames,
            tx_bytes: self.tx_bytes + other.tx_bytes,
            tx_drops: self.tx_drops + other.tx_drops,
            rx_frames: self.rx_frames + other.rx_frames,
            rx_bytes: self.rx_bytes + other.rx_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let a = PortCounters {
            tx_frames: 1,
            tx_bytes: 64,
            tx_drops: 2,
            rx_frames: 3,
            rx_bytes: 192,
        };
        let b = PortCounters {
            tx_frames: 10,
            tx_bytes: 640,
            tx_drops: 0,
            rx_frames: 30,
            rx_bytes: 1920,
        };
        let m = a.merged(b);
        assert_eq!(m.tx_frames, 11);
        assert_eq!(m.tx_bytes, 704);
        assert_eq!(m.tx_drops, 2);
        assert_eq!(m.rx_frames, 33);
        assert_eq!(m.rx_bytes, 2112);
    }
}
