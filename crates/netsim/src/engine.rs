//! Simulation assembly and the run loop.

use crate::component::{Component, ComponentId};
use crate::event::EventKind;
use crate::kernel::Kernel;
use crate::link::LinkSpec;
use crate::shard::{ShardPlan, ShardedSim};
use crate::trace::Tracer;
use osnt_time::{SimDuration, SimTime};

/// Declarative construction of a simulation: add components, wire ports,
/// register tracers, then [`SimBuilder::build`].
pub struct SimBuilder {
    kernel: Kernel,
    components: Vec<Option<Box<dyn Component>>>,
    names: Vec<String>,
}

impl SimBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        SimBuilder {
            kernel: Kernel::new(),
            components: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Add a component with `n_ports` full-duplex ports; returns its id.
    pub fn add_component(
        &mut self,
        name: &str,
        component: Box<dyn Component>,
        n_ports: usize,
    ) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.kernel.add_component_ports(n_ports);
        self.components.push(Some(component));
        self.names.push(name.to_string());
        id
    }

    /// Wire `a`'s port `pa` to `b`'s port `pb` with a symmetric
    /// full-duplex link (the same spec in each simplex direction).
    pub fn connect(
        &mut self,
        a: ComponentId,
        pa: usize,
        b: ComponentId,
        pb: usize,
        spec: LinkSpec,
    ) {
        self.connect_asym(a, pa, b, pb, spec, spec);
    }

    /// Wire `a`'s port `pa` to `b`'s port `pb` with an asymmetric
    /// full-duplex link: `spec_ab` governs the `a → b` direction,
    /// `spec_ba` the `b → a` direction (e.g. a 10G downstream / 1G
    /// upstream pair, or unequal cable runs).
    pub fn connect_asym(
        &mut self,
        a: ComponentId,
        pa: usize,
        b: ComponentId,
        pb: usize,
        spec_ab: LinkSpec,
        spec_ba: LinkSpec,
    ) {
        self.kernel.connect_simplex(a, pa, b, pb, spec_ab);
        self.kernel.connect_simplex(b, pb, a, pa, spec_ba);
    }

    /// Number of components added so far (shard plans need the count).
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Register a trace observer.
    pub fn add_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.kernel.add_tracer(tracer);
    }

    /// Finish construction.
    pub fn build(self) -> Sim {
        Sim {
            kernel: self.kernel,
            components: self.components,
            names: self.names,
            started: false,
        }
    }

    /// Finish construction as a [`ShardedSim`] running the component
    /// graph across `plan.n_shards()` worker threads.
    ///
    /// Requirements the plan author must uphold:
    ///
    /// * every link crossing a shard boundary has **nonzero
    ///   propagation delay** (it becomes the lookahead window;
    ///   violated → panic here),
    /// * components that share non-`Send` state (an `Rc<RefCell<..>>`
    ///   clock, a shared result log) are assigned to the **same
    ///   shard** — the wiring is visible to this builder, Rust-level
    ///   sharing is not, so this is a contract, not a check,
    /// * no kernel [`Tracer`]s are registered (panics here; per-port
    ///   traces belong in components, which shard cleanly).
    ///
    /// For any plan the run is byte-identical to [`SimBuilder::build`]
    /// plus [`Sim::run_until`]: same event order, counters, and
    /// component state. See `crate::shard` for the determinism
    /// argument.
    pub fn build_sharded(self, plan: ShardPlan) -> ShardedSim {
        ShardedSim::build(self.kernel, self.components, self.names, plan)
    }

    /// [`SimBuilder::build_sharded`] with an automatic plan: wire-
    /// connected component groups stay together and are packed onto at
    /// most `n_shards` shards, largest group first. Topologies whose
    /// graph is one connected component collapse to a single shard —
    /// use an explicit [`ShardPlan`] to cut through links instead.
    pub fn build_auto_sharded(self, n_shards: usize) -> ShardedSim {
        let edges: Vec<_> = self
            .kernel
            .wire_endpoints()
            .map(|(a, b, _)| (a, b))
            .collect();
        let plan = ShardPlan::auto(self.components.len(), n_shards, &edges);
        self.build_sharded(plan)
    }
}

/// Arrival coalescing (and burst delivery) silently falls back to
/// per-frame dispatch while kernel tracers are installed — correct, but
/// easy to mistake for a performance regression. Say so once per
/// process instead of never.
fn warn_coalescing_disabled_once(name: &str) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "osnt-netsim: note: kernel tracers are installed, so batch-capable \
             components (first: {name:?}) receive frames one at a time instead of \
             coalesced batches. This preserves trace interleaving but costs \
             throughput; detach tracers for performance runs."
        );
    }
}

/// The shared dispatch loop: pop and run every event at or before
/// `limit`. Used verbatim by the single-threaded [`Sim`] and by each
/// shard worker — one code path, one semantics.
///
/// When a [`osnt_time::ProgressProbe`] is attached the loop publishes
/// its simulated-time high-water mark after every event and honours the
/// probe's cooperative abort flag: a raised flag stops dispatch at the
/// next event boundary (mid-window for shard workers), which is what
/// lets a watchdog unwedge a livelocked simulation — events that never
/// advance virtual time still pass through this check.
pub(crate) fn dispatch_events(
    kernel: &mut Kernel,
    components: &mut [Option<Box<dyn Component>>],
    limit: SimTime,
) -> u64 {
    // Heartbeat amortization: publishing through the shared probe costs
    // two lock-prefixed RMWs, which at multi-Mpps dispatch rates is a
    // measurable tax (the e11 bench gates it). Beating every 64th event
    // keeps the watchdog's wall-clock resolution microscopic while
    // making the common-case event free of shared-cacheline traffic.
    const HEARTBEAT_EVERY: u64 = 64;
    let mut dispatched = 0;
    let mut since_beat = 0;
    let mut last_ps = 0;
    while let Some((time, kind)) = kernel.pop_event_until(limit) {
        dispatched += 1;
        if let Some(probe) = kernel.progress.as_ref() {
            since_beat += 1;
            last_ps = time.as_ps();
            if since_beat >= HEARTBEAT_EVERY {
                probe.advance_time(last_ps);
                probe.tick_by(since_beat);
                since_beat = 0;
                if probe.abort_requested() {
                    break;
                }
            }
        }
        match kind {
            EventKind::Deliver { dst, port, packet } => {
                kernel.note_rx(dst, port, packet.frame_len());
                let mut c = components[dst.index()]
                    .take()
                    .unwrap_or_else(|| panic!("re-entrant dispatch to {}", dst.index()));
                // Burst delivery: when the receiver opts in, drain the
                // run of back-to-back arrivals to the same port in one
                // handler call. Every coalesced event is popped at its
                // exact total-order position (see
                // `Kernel::coalesce_arrivals`), so event order, counters
                // and `events_dispatched` are identical to the scalar
                // path — only the handler granularity changes. Gated off
                // under kernel tracers purely to keep trace interleaving
                // questions out of scope; per-port traces live in
                // components, which see the same frames either way.
                if c.wants_packet_batches_on(port) && kernel.tracers.is_empty() {
                    // Components that schedule from their handler bound
                    // the window (`Component::batch_window`) so nothing
                    // they arm can land before batch-end `now`.
                    let lim = match c.batch_window() {
                        Some(w) => limit.min(time + w),
                        None => limit,
                    };
                    let mut batch = std::mem::take(&mut kernel.batch_buf);
                    batch.clear();
                    batch.push((time, packet));
                    let coalesced = kernel.coalesce_arrivals(dst, port, lim, &mut batch);
                    dispatched += coalesced;
                    if kernel.progress.is_some() {
                        since_beat += coalesced;
                        last_ps = kernel.now().as_ps();
                    }
                    c.on_packet_batch(kernel, dst, port, &mut batch);
                    batch.clear();
                    kernel.batch_buf = batch;
                } else {
                    if c.wants_packet_batches_on(port) {
                        warn_coalescing_disabled_once(c.name());
                    }
                    c.on_packet(kernel, dst, port, packet);
                }
                components[dst.index()] = Some(c);
            }
            EventKind::DeliverBurst {
                dst,
                port,
                mut burst,
            } => {
                // Bursts are only created when no kernel tracers are
                // installed (both transmit_batch and transmit_burst fall
                // back to per-frame Deliver events under tracers), so the
                // tracer gates of the scalar branch don't reappear here.
                let mut c = components[dst.index()]
                    .take()
                    .unwrap_or_else(|| panic!("re-entrant dispatch to {}", dst.index()));
                if c.wants_bursts() {
                    // Members past the window limit re-enter the queue
                    // under their own keys; the rest go to the handler
                    // whole. `now` stays at member 0's arrival for the
                    // duration of the call (see `Component::wants_bursts`
                    // for the timing contract).
                    if let Some(tail) = burst.split_after(limit) {
                        kernel.requeue_burst(dst, port, Box::new(tail));
                    }
                    let extra = burst.len() as u64 - 1;
                    for i in 0..burst.len() {
                        let frame_len = burst.members()[i].1.frame_len();
                        kernel.note_rx(dst, port, frame_len);
                    }
                    kernel.events_dispatched += extra;
                    dispatched += extra;
                    if kernel.progress.is_some() {
                        since_beat += extra;
                        last_ps = kernel.now().as_ps();
                    }
                    c.on_burst(kernel, dst, port, *burst);
                } else if c.wants_packet_batches_on(port) {
                    // Batch sinks: member 0 seeds the arrival batch and
                    // the tail re-enters the queue, where
                    // `coalesce_arrivals` consumes it member-at-a-time in
                    // exact total order (its DeliverBurst arm) along with
                    // any interleaved TxDones.
                    let lim = match c.batch_window() {
                        Some(w) => limit.min(time + w),
                        None => limit,
                    };
                    let mut batch = std::mem::take(&mut kernel.batch_buf);
                    batch.clear();
                    let (t0, pkt0) = burst.pop_front().expect("bursts are non-empty");
                    kernel.note_rx(dst, port, pkt0.frame_len());
                    batch.push((t0, pkt0));
                    if !burst.is_empty() {
                        kernel.requeue_burst(dst, port, burst);
                    }
                    let coalesced = kernel.coalesce_arrivals(dst, port, lim, &mut batch);
                    dispatched += coalesced;
                    if kernel.progress.is_some() {
                        since_beat += coalesced;
                        last_ps = kernel.now().as_ps();
                    }
                    c.on_packet_batch(kernel, dst, port, &mut batch);
                    batch.clear();
                    kernel.batch_buf = batch;
                } else {
                    // Exact scalar replay: each member dispatches at its
                    // own `(time, key)` slot, yielding to the queue head
                    // (a timer the handler just armed, a TxDone, a
                    // competing delivery) whenever that would
                    // scalar-dispatch first. Byte-identical total order.
                    let (_t0, pkt0) = burst.pop_front().expect("bursts are non-empty");
                    kernel.note_rx(dst, port, pkt0.frame_len());
                    c.on_packet(kernel, dst, port, pkt0);
                    while let Some(&(t_next, _)) = burst.members().first() {
                        if t_next > limit {
                            break;
                        }
                        if let Some((th, kh)) = kernel.queue.peek() {
                            if (th, kh) < (t_next, burst.first_key()) {
                                break;
                            }
                        }
                        let (t, pkt) = burst.pop_front().expect("checked above");
                        kernel.now = t;
                        kernel.events_dispatched += 1;
                        dispatched += 1;
                        if kernel.progress.is_some() {
                            since_beat += 1;
                            last_ps = t.as_ps();
                        }
                        kernel.note_rx(dst, port, pkt.frame_len());
                        c.on_packet(kernel, dst, port, pkt);
                    }
                    if !burst.is_empty() {
                        kernel.requeue_burst(dst, port, burst);
                    }
                }
                components[dst.index()] = Some(c);
            }
            EventKind::TxDone {
                src,
                port,
                frame_len,
            } => {
                kernel.note_tx_done(src, port, frame_len);
            }
            EventKind::Timer { target, tag } => {
                let mut c = components[target.index()]
                    .take()
                    .unwrap_or_else(|| panic!("re-entrant dispatch to {}", target.index()));
                c.on_timer(kernel, target, tag);
                components[target.index()] = Some(c);
            }
        }
    }
    // Flush the residual beat so `last_progress` in abort reports (and
    // any final watchdog observation) reflects the true high-water mark.
    if let Some(probe) = kernel.progress.as_ref() {
        if since_beat > 0 {
            probe.advance_time(last_ps);
            probe.tick_by(since_beat);
        }
    }
    dispatched
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder::new()
    }
}

/// A runnable simulation.
pub struct Sim {
    kernel: Kernel,
    components: Vec<Option<Box<dyn Component>>>,
    names: Vec<String>,
    started: bool,
}

impl Sim {
    /// The kernel (time, counters, manual scheduling from harness code).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access for harness code between runs.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// A component's registered name.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.names[id.index()]
    }

    /// Attach a supervision probe: the dispatch loop publishes its
    /// simulated-time high-water mark into it and stops early (without
    /// advancing the clock) once the probe's abort flag is raised.
    pub fn attach_progress(&mut self, probe: std::sync::Arc<osnt_time::ProgressProbe>) {
        self.kernel.progress = Some(probe);
    }

    fn abort_requested(&self) -> bool {
        self.kernel
            .progress
            .as_ref()
            .is_some_and(|p| p.abort_requested())
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.components.len() {
            let id = ComponentId(i);
            let mut c = self.components[i].take().expect("component in place");
            c.on_start(&mut self.kernel, id);
            self.components[i] = Some(c);
        }
    }

    /// Run every event scheduled at or before `limit`, then advance the
    /// clock to `limit`. Returns the number of events dispatched. An
    /// abort requested through the attached progress probe stops the
    /// run early, leaving the clock at the last dispatched event.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        self.start_if_needed();
        let dispatched = dispatch_events(&mut self.kernel, &mut self.components, limit);
        if !self.abort_requested() {
            self.kernel.advance_now(limit);
        }
        dispatched
    }

    /// Run for `d` beyond the current time.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let limit = self.kernel.now() + d;
        self.run_until(limit)
    }

    /// Drain every pending event (the simulation must quiesce — a
    /// periodic timer would run forever, so a safety cap of `max_events`
    /// aborts with a panic if exceeded).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.start_if_needed();
        let mut dispatched = 0;
        while self.kernel.pending_events() > 0 && !self.abort_requested() {
            dispatched += self.run_until(SimTime::MAX);
            assert!(
                dispatched <= max_events,
                "simulation did not quiesce within {max_events} events"
            );
        }
        dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TxResult;
    use crate::trace::{CountingTracer, TraceEvent, Tracer};
    use osnt_packet::Packet;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared-handle tracer so tests can observe after the run.
    struct SharedTracer(Rc<RefCell<CountingTracer>>);
    impl Tracer for SharedTracer {
        fn trace(&mut self, t: SimTime, ev: &TraceEvent) {
            self.0.borrow_mut().trace(t, ev);
        }
    }

    /// Sends `n` back-to-back frames of `frame_len` at start.
    struct Blaster {
        n: usize,
        frame_len: usize,
        results: Rc<RefCell<Vec<TxResult>>>,
    }
    impl Component for Blaster {
        fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
            for _ in 0..self.n {
                let r = k.transmit(me, 0, Packet::zeroed(self.frame_len));
                self.results.borrow_mut().push(r);
            }
        }
        fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
    }

    /// Records arrival times.
    struct Sink {
        arrivals: Rc<RefCell<Vec<SimTime>>>,
    }
    impl Component for Sink {
        fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, _: Packet) {
            self.arrivals.borrow_mut().push(k.now());
        }
    }

    type Shared<T> = Rc<RefCell<Vec<T>>>;

    fn two_node_sim(n: usize, frame_len: usize) -> (Sim, Shared<TxResult>, Shared<SimTime>) {
        let results = Rc::new(RefCell::new(Vec::new()));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        let tx = b.add_component(
            "blaster",
            Box::new(Blaster {
                n,
                frame_len,
                results: results.clone(),
            }),
            1,
        );
        let rx = b.add_component(
            "sink",
            Box::new(Sink {
                arrivals: arrivals.clone(),
            }),
            1,
        );
        b.connect(tx, 0, rx, 0, LinkSpec::ten_gig());
        (b.build(), results, arrivals)
    }

    #[test]
    fn single_frame_timing_is_exact() {
        let (mut sim, results, arrivals) = two_node_sim(1, 64);
        sim.run_until(SimTime::from_us(10));
        let res = results.borrow();
        let TxResult::Transmitted { tx_start, delivery } = res[0] else {
            panic!("not transmitted");
        };
        assert_eq!(tx_start, SimTime::ZERO);
        // Visible wire time: (84 - 12) bytes × 800 ps = 57.6 ns, plus
        // 10 ns propagation = 67.6 ns.
        assert_eq!(delivery.as_ps(), 57_600 + 10_000);
        assert_eq!(arrivals.borrow()[0], delivery);
    }

    #[test]
    fn back_to_back_frames_are_spaced_at_line_rate() {
        let (mut sim, _results, arrivals) = two_node_sim(100, 64);
        sim.run_until(SimTime::from_ms(1));
        let a = arrivals.borrow();
        assert_eq!(a.len(), 100);
        // Spacing between consecutive 64B frames at 10G is exactly
        // 84 B × 800 ps = 67.2 ns.
        for w in a.windows(2) {
            assert_eq!((w[1] - w[0]).as_ps(), 67_200);
        }
    }

    #[test]
    fn mixed_sizes_preserve_fifo_and_spacing() {
        // 64B then 1518B then 64B: second frame arrives after the first
        // plus its own serialisation.
        let results = Rc::new(RefCell::new(Vec::new()));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        struct Mixed {
            results: Rc<RefCell<Vec<TxResult>>>,
        }
        impl Component for Mixed {
            fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
                for len in [64usize, 1518, 64] {
                    let r = k.transmit(me, 0, Packet::zeroed(len));
                    self.results.borrow_mut().push(r);
                }
            }
            fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
        }
        let mut b = SimBuilder::new();
        let tx = b.add_component(
            "mixed",
            Box::new(Mixed {
                results: results.clone(),
            }),
            1,
        );
        let rx = b.add_component(
            "sink",
            Box::new(Sink {
                arrivals: arrivals.clone(),
            }),
            1,
        );
        b.connect(tx, 0, rx, 0, LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_us(100));
        let a = arrivals.borrow();
        assert_eq!(a.len(), 3);
        // Frame 2 starts at 67.2 ns (after frame 1 incl. IFG), takes
        // (1538-12)*800 ps visible, arrives +10 ns propagation.
        assert_eq!(a[1].as_ps(), 67_200 + 1_526 * 800 + 10_000);
        // Frame 3 starts after frame 2's full wire time.
        assert_eq!(a[2].as_ps(), 67_200 + 1_538 * 800 + 72 * 800 + 10_000);
    }

    #[test]
    fn unconnected_port_reports_not_connected() {
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        b.add_component(
            "lonely",
            Box::new(Blaster {
                n: 1,
                frame_len: 64,
                results: results.clone(),
            }),
            1,
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_us(1));
        assert_eq!(results.borrow()[0], TxResult::NotConnected);
    }

    #[test]
    fn buffer_limit_drops_excess_frames() {
        let (mut sim, results, arrivals) = {
            let results = Rc::new(RefCell::new(Vec::new()));
            let arrivals = Rc::new(RefCell::new(Vec::new()));
            let mut b = SimBuilder::new();
            let tx = b.add_component(
                "blaster",
                Box::new(Blaster {
                    n: 10,
                    frame_len: 64,
                    results: results.clone(),
                }),
                1,
            );
            let rx = b.add_component(
                "sink",
                Box::new(Sink {
                    arrivals: arrivals.clone(),
                }),
                1,
            );
            b.connect(tx, 0, rx, 0, LinkSpec::ten_gig());
            let mut sim = b.build();
            // Room for 3 × 64B frames only.
            sim.kernel_mut().set_tx_buffer(tx, 0, Some(200));
            (sim, results, arrivals)
        };
        sim.run_until(SimTime::from_ms(1));
        let sent = results
            .borrow()
            .iter()
            .filter(|r| r.is_transmitted())
            .count();
        assert_eq!(sent, 3);
        assert_eq!(arrivals.borrow().len(), 3);
        let drops = results
            .borrow()
            .iter()
            .filter(|r| matches!(r, TxResult::Dropped))
            .count();
        assert_eq!(drops, 7);
    }

    #[test]
    fn counters_track_tx_rx() {
        let (mut sim, _r, _a) = two_node_sim(5, 128);
        sim.run_until(SimTime::from_ms(1));
        let tx = sim.kernel().counters(ComponentId(0), 0);
        let rx = sim.kernel().counters(ComponentId(1), 0);
        assert_eq!(tx.tx_frames, 5);
        assert_eq!(tx.tx_bytes, 5 * 128);
        assert_eq!(rx.rx_frames, 5);
        assert_eq!(rx.rx_bytes, 5 * 128);
        assert_eq!(tx.tx_drops, 0);
    }

    #[test]
    fn tracer_sees_all_events() {
        let counter = Rc::new(RefCell::new(CountingTracer::default()));
        let (mut sim, _r, _a) = {
            let results = Rc::new(RefCell::new(Vec::new()));
            let arrivals = Rc::new(RefCell::new(Vec::new()));
            let mut b = SimBuilder::new();
            let tx = b.add_component(
                "blaster",
                Box::new(Blaster {
                    n: 7,
                    frame_len: 64,
                    results: results.clone(),
                }),
                1,
            );
            let rx = b.add_component(
                "sink",
                Box::new(Sink {
                    arrivals: arrivals.clone(),
                }),
                1,
            );
            b.connect(tx, 0, rx, 0, LinkSpec::ten_gig());
            b.add_tracer(Box::new(SharedTracer(counter.clone())));
            (b.build(), results, arrivals)
        };
        sim.run_until(SimTime::from_ms(1));
        let c = counter.borrow();
        assert_eq!(c.tx_accepted, 7);
        assert_eq!(c.delivered, 7);
        assert_eq!(c.tx_dropped, 0);
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let (mut sim, _r, _a) = two_node_sim(0, 64);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.kernel().now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_to_quiescence_drains_everything() {
        let (mut sim, _r, arrivals) = two_node_sim(50, 64);
        let n = sim.run_to_quiescence(10_000);
        assert!(n >= 100); // 50 delivers + 50 txdones
        assert_eq!(arrivals.borrow().len(), 50);
        assert_eq!(sim.kernel().pending_events(), 0);
    }

    #[test]
    fn timers_fire_in_order_with_tags() {
        struct TimerBox {
            log: Rc<RefCell<Vec<(u64, SimTime)>>>,
        }
        impl Component for TimerBox {
            fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
                k.schedule_timer(me, SimDuration::from_ns(30), 3);
                k.schedule_timer(me, SimDuration::from_ns(10), 1);
                k.schedule_timer(me, SimDuration::from_ns(20), 2);
            }
            fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
            fn on_timer(&mut self, k: &mut Kernel, _: ComponentId, tag: u64) {
                self.log.borrow_mut().push((tag, k.now()));
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        b.add_component("timers", Box::new(TimerBox { log: log.clone() }), 0);
        let mut sim = b.build();
        sim.run_until(SimTime::from_us(1));
        let l = log.borrow();
        assert_eq!(
            *l,
            vec![
                (1, SimTime::from_ns(10)),
                (2, SimTime::from_ns(20)),
                (3, SimTime::from_ns(30)),
            ]
        );
    }

    #[test]
    fn determinism_same_build_same_trace() {
        let run = || {
            let (mut sim, _r, arrivals) = two_node_sim(25, 512);
            sim.run_until(SimTime::from_ms(1));
            let result = arrivals.borrow().clone();
            result
        };
        assert_eq!(run(), run());
    }
}
