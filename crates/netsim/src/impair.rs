//! Link impairment: a pass-through component that drops, delays and
//! jitters frames.
//!
//! Inserted between two devices, [`Impairment`] turns a clean simulated
//! cable into a lossy, jittery path — the fault-injection facility every
//! network-testing example needs (and the thing a network *tester* like
//! OSNT exists to measure). All randomness is seeded.

use crate::burst::PacketBurst;
use crate::component::{Component, ComponentId};
use crate::kernel::Kernel;
use osnt_packet::Packet;
use osnt_time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Impairment parameters.
#[derive(Debug, Clone)]
pub struct ImpairConfig {
    /// Probability of dropping each frame.
    pub drop_probability: f64,
    /// Fixed extra one-way delay.
    pub extra_delay: SimDuration,
    /// Uniform random jitter added on top of `extra_delay`
    /// (0..jitter).
    pub jitter: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImpairConfig {
    fn default() -> Self {
        ImpairConfig {
            drop_probability: 0.0,
            extra_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            seed: 1,
        }
    }
}

impl ImpairConfig {
    /// Pure random loss.
    pub fn loss(probability: f64, seed: u64) -> Self {
        ImpairConfig {
            drop_probability: probability,
            seed,
            ..ImpairConfig::default()
        }
    }
}

/// A two-port pass-through impairment. Frames entering port 0 leave
/// port 1 and vice versa, subject to drop/delay/jitter.
///
/// Note: delayed frames are released in per-direction FIFO order even
/// when jitter would reorder them — like a queue with a variable service
/// time, not a reordering network.
pub struct Impairment {
    config: ImpairConfig,
    rng: SmallRng,
    pending: [VecDeque<Packet>; 2],
    /// Frames dropped so far.
    pub dropped: u64,
    /// Frames passed so far.
    pub passed: u64,
}

const TAG_RELEASE_BASE: u64 = 0x1111_0000;

impl Impairment {
    /// Build from a config.
    pub fn new(config: ImpairConfig) -> Self {
        let seed = config.seed;
        Impairment {
            config,
            rng: SmallRng::seed_from_u64(seed),
            pending: [VecDeque::new(), VecDeque::new()],
            dropped: 0,
            passed: 0,
        }
    }
}

impl Component for Impairment {
    fn on_packet(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, packet: Packet) {
        debug_assert!(port < 2, "impairment is a 2-port device");
        if self.config.drop_probability > 0.0
            && self
                .rng
                .gen_bool(self.config.drop_probability.clamp(0.0, 1.0))
        {
            self.dropped += 1;
            return;
        }
        let out = 1 - port;
        let mut delay = self.config.extra_delay;
        if self.config.jitter.as_ps() > 0 {
            delay += SimDuration::from_ps(self.rng.gen_range(0..self.config.jitter.as_ps()));
        }
        if delay.as_ps() == 0 {
            let _ = kernel.transmit(me, out, packet);
            self.passed += 1;
        } else {
            self.pending[out].push_back(packet);
            kernel.schedule_timer(me, delay, TAG_RELEASE_BASE + out as u64);
        }
    }

    fn wants_bursts(&self) -> bool {
        // With jitter, which members get delayed (and by how much) is
        // data-dependent, and the scalar path resolves the resulting
        // immediate-vs-timer transmit interleaving through the event
        // queue; keep exact scalar dispatch for those configs.
        self.config.jitter.as_ps() == 0
    }

    fn on_burst(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, burst: PacketBurst) {
        debug_assert!(port < 2, "impairment is a 2-port device");
        let out = 1 - port;
        let delay = self.config.extra_delay; // jitter == 0 per wants_bursts
        if delay.as_ps() == 0 {
            // Pure pass-through (with optional drops): the survivors
            // leave as one burst, offered at their own arrival instants.
            let mut members: Vec<(SimTime, Packet)> = Vec::with_capacity(burst.len());
            for (at, packet) in burst {
                if self.config.drop_probability > 0.0
                    && self
                        .rng
                        .gen_bool(self.config.drop_probability.clamp(0.0, 1.0))
                {
                    self.dropped += 1;
                    continue;
                }
                members.push((at, packet));
            }
            if !members.is_empty() {
                self.passed += members.len() as u64;
                let _ = kernel.transmit_burst(me, out, members);
            }
        } else {
            // Fixed delay: every member goes through the release queue
            // at its own arrival + delay — exactly the scalar schedule
            // (the scalar path always schedules when delay > 0).
            for (at, packet) in burst {
                if self.config.drop_probability > 0.0
                    && self
                        .rng
                        .gen_bool(self.config.drop_probability.clamp(0.0, 1.0))
                {
                    self.dropped += 1;
                    continue;
                }
                self.pending[out].push_back(packet);
                kernel.schedule_timer_at(me, at + delay, TAG_RELEASE_BASE + out as u64);
            }
        }
    }

    fn on_timer(&mut self, kernel: &mut Kernel, me: ComponentId, tag: u64) {
        let out = (tag - TAG_RELEASE_BASE) as usize;
        let packet = self.pending[out]
            .pop_front()
            .expect("release timer without pending frame");
        let _ = kernel.transmit(me, out, packet);
        self.passed += 1;
    }

    fn name(&self) -> &str {
        "impairment"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::link::LinkSpec;
    use osnt_time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Blaster {
        n: usize,
    }
    impl Component for Blaster {
        fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
            for i in 0..self.n {
                k.schedule_timer(me, SimDuration::from_us(i as u64), 7);
            }
        }
        fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
        fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, _: u64) {
            let _ = k.transmit(me, 0, Packet::zeroed(64));
        }
    }

    struct Sink {
        got: Rc<RefCell<Vec<SimTime>>>,
    }
    impl Component for Sink {
        fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, _: Packet) {
            self.got.borrow_mut().push(k.now());
        }
    }

    fn run(config: ImpairConfig, n: usize) -> Vec<SimTime> {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        let tx = b.add_component("tx", Box::new(Blaster { n }), 1);
        let imp = b.add_component("imp", Box::new(Impairment::new(config)), 2);
        let rx = b.add_component("rx", Box::new(Sink { got: got.clone() }), 1);
        b.connect(tx, 0, imp, 0, LinkSpec::ten_gig());
        b.connect(imp, 1, rx, 0, LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_ms(10));
        let times = got.borrow().clone();
        times
    }

    #[test]
    fn clean_config_passes_everything() {
        let t = run(ImpairConfig::default(), 100);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn loss_probability_is_respected() {
        let t = run(ImpairConfig::loss(0.3, 42), 2000);
        let frac = t.len() as f64 / 2000.0;
        assert!((frac - 0.7).abs() < 0.05, "pass fraction {frac}");
    }

    #[test]
    fn extra_delay_shifts_arrivals() {
        let clean = run(ImpairConfig::default(), 10);
        let delayed = run(
            ImpairConfig {
                extra_delay: SimDuration::from_us(50),
                ..ImpairConfig::default()
            },
            10,
        );
        for (c, d) in clean.iter().zip(&delayed) {
            assert_eq!((*d - *c).as_ps(), 50_000_000);
        }
    }

    #[test]
    fn jitter_varies_arrivals_but_keeps_order() {
        let t = run(
            ImpairConfig {
                jitter: SimDuration::from_us(100),
                seed: 9,
                ..ImpairConfig::default()
            },
            100,
        );
        assert_eq!(t.len(), 100);
        for w in t.windows(2) {
            assert!(w[1] >= w[0], "FIFO order preserved");
        }
        // Gaps vary (jitter was applied).
        let gaps: std::collections::HashSet<u64> =
            t.windows(2).map(|w| (w[1] - w[0]).as_ps()).collect();
        assert!(gaps.len() > 10, "jitter should vary the gaps");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(ImpairConfig::loss(0.5, 7), 500);
        let b = run(ImpairConfig::loss(0.5, 7), 500);
        assert_eq!(a, b);
    }

    /// An endpoint that sources sequence-numbered frames and records
    /// the sequence numbers it receives.
    struct EndPoint {
        n: u64,
        got: Rc<RefCell<Vec<u64>>>,
    }
    impl Component for EndPoint {
        fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
            for i in 0..self.n {
                k.schedule_timer(me, SimDuration::from_us(i), i);
            }
        }
        fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, p: Packet) {
            let mut seq = [0u8; 8];
            seq.copy_from_slice(&p.data()[0..8]);
            self.got.borrow_mut().push(u64::from_be_bytes(seq));
        }
        fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
            let mut p = Packet::zeroed(64);
            p.data_mut()[0..8].copy_from_slice(&tag.to_be_bytes());
            let _ = k.transmit(me, 0, p);
        }
    }

    /// Regression pin for the documented contract: jitter never reorders
    /// frames *within a direction*, even when both directions are active
    /// and their release timers interleave in the event queue. The
    /// per-direction FIFO (`pending[out]` + per-port timer tags) is what
    /// guarantees this; a shared queue or a shared tag would fail here.
    #[test]
    fn bidirectional_jitter_keeps_per_direction_fifo() {
        let n = 400u64;
        let got_a = Rc::new(RefCell::new(Vec::new()));
        let got_b = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        let end_a = b.add_component(
            "end-a",
            Box::new(EndPoint {
                n,
                got: got_a.clone(),
            }),
            1,
        );
        let end_b = b.add_component(
            "end-b",
            Box::new(EndPoint {
                n,
                got: got_b.clone(),
            }),
            1,
        );
        let imp = b.add_component(
            "imp",
            Box::new(Impairment::new(ImpairConfig {
                jitter: SimDuration::from_us(40),
                extra_delay: SimDuration::from_us(5),
                seed: 13,
                ..ImpairConfig::default()
            })),
            2,
        );
        b.connect(end_a, 0, imp, 0, LinkSpec::ten_gig());
        b.connect(imp, 1, end_b, 0, LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_ms(50));

        // Both directions complete and each stays strictly in order.
        for (dir, got) in [("a→b", got_b.borrow()), ("b→a", got_a.borrow())] {
            assert_eq!(got.len() as u64, n, "direction {dir} lost frames");
            for (i, w) in got.windows(2).enumerate() {
                assert!(
                    w[1] > w[0],
                    "direction {dir} reordered at index {i}: {} after {}",
                    w[1],
                    w[0]
                );
            }
        }
    }
}
