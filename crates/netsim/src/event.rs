//! The event queue's payload types. Ordering lives in [`crate::wheel`]:
//! events dispatch in ascending `(time, seq)` — simultaneous events fire
//! in the order they were scheduled, a total, deterministic order.

use crate::component::ComponentId;
use osnt_packet::Packet;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A frame finishes arriving at `dst`'s input `port`.
    Deliver {
        dst: ComponentId,
        port: usize,
        packet: Packet,
    },
    /// A frame finishes leaving `src`'s output `port` (internal: releases
    /// queued-byte accounting).
    TxDone {
        src: ComponentId,
        port: usize,
        frame_len: usize,
    },
    /// A component timer fires.
    Timer { target: ComponentId, tag: u64 },
}
