//! The event queue's payload types. Ordering lives in [`crate::wheel`]:
//! events dispatch in ascending `(time, key)` where the key encodes
//! `(source component, per-source sequence)` — see
//! [`crate::kernel::event_key`]. Simultaneous events fire in source
//! component id order, then in the order the source scheduled them: a
//! total order computable from the event alone, identical whether the
//! simulation runs on one thread or across shards.

use crate::burst::PacketBurst;
use crate::component::ComponentId;
use osnt_packet::Packet;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A frame finishes arriving at `dst`'s input `port`.
    Deliver {
        dst: ComponentId,
        port: usize,
        packet: Packet,
    },
    /// A back-to-back run of frames arrives at `dst`'s input `port` as
    /// one queue entry. Scheduled at the first member's arrival instant
    /// under the first member's event key; member `i` owns key
    /// `first_key + i`, so splitting the burst at any point restores
    /// the exact scalar total order. Boxed to keep the common event
    /// variants small (wheel entries move by value).
    DeliverBurst {
        dst: ComponentId,
        port: usize,
        burst: Box<PacketBurst>,
    },
    /// A frame finishes leaving `src`'s output `port` (internal: releases
    /// queued-byte accounting).
    TxDone {
        src: ComponentId,
        port: usize,
        frame_len: usize,
    },
    /// A component timer fires.
    Timer { target: ComponentId, tag: u64 },
}

impl EventKind {
    /// The component whose shard must execute this event.
    pub(crate) fn target(&self) -> ComponentId {
        match self {
            EventKind::Deliver { dst, .. } => *dst,
            EventKind::DeliverBurst { dst, .. } => *dst,
            EventKind::TxDone { src, .. } => *src,
            EventKind::Timer { target, .. } => *target,
        }
    }
}
