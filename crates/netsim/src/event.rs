//! The event queue's payload types. Ordering lives in [`crate::wheel`]:
//! events dispatch in ascending `(time, key)` where the key encodes
//! `(source component, per-source sequence)` — see
//! [`crate::kernel::event_key`]. Simultaneous events fire in source
//! component id order, then in the order the source scheduled them: a
//! total order computable from the event alone, identical whether the
//! simulation runs on one thread or across shards.

use crate::component::ComponentId;
use osnt_packet::Packet;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A frame finishes arriving at `dst`'s input `port`.
    Deliver {
        dst: ComponentId,
        port: usize,
        packet: Packet,
    },
    /// A frame finishes leaving `src`'s output `port` (internal: releases
    /// queued-byte accounting).
    TxDone {
        src: ComponentId,
        port: usize,
        frame_len: usize,
    },
    /// A component timer fires.
    Timer { target: ComponentId, tag: u64 },
}

impl EventKind {
    /// The component whose shard must execute this event.
    pub(crate) fn target(&self) -> ComponentId {
        match self {
            EventKind::Deliver { dst, .. } => *dst,
            EventKind::TxDone { src, .. } => *src,
            EventKind::Timer { target, .. } => *target,
        }
    }
}
