//! The event queue's entry types and ordering.

use crate::component::ComponentId;
use osnt_packet::Packet;
use osnt_time::SimTime;
use std::cmp::Ordering;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A frame finishes arriving at `dst`'s input `port`.
    Deliver {
        dst: ComponentId,
        port: usize,
        packet: Packet,
    },
    /// A frame finishes leaving `src`'s output `port` (internal: releases
    /// queued-byte accounting).
    TxDone {
        src: ComponentId,
        port: usize,
        frame_len: usize,
    },
    /// A component timer fires.
    Timer { target: ComponentId, tag: u64 },
}

/// A scheduled event. Ordered by time, then by insertion sequence so that
/// simultaneous events fire in the order they were scheduled — total,
/// deterministic order.
#[derive(Debug)]
pub(crate) struct EventEntry {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for EventEntry {}

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // event on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn entry(t: u64, seq: u64) -> EventEntry {
        EventEntry {
            time: SimTime::from_ps(t),
            seq,
            kind: EventKind::Timer {
                target: ComponentId(0),
                tag: 0,
            },
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut h = BinaryHeap::new();
        h.push(entry(30, 0));
        h.push(entry(10, 1));
        h.push(entry(20, 2));
        assert_eq!(h.pop().unwrap().time.as_ps(), 10);
        assert_eq!(h.pop().unwrap().time.as_ps(), 20);
        assert_eq!(h.pop().unwrap().time.as_ps(), 30);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut h = BinaryHeap::new();
        h.push(entry(10, 5));
        h.push(entry(10, 2));
        h.push(entry(10, 9));
        assert_eq!(h.pop().unwrap().seq, 2);
        assert_eq!(h.pop().unwrap().seq, 5);
        assert_eq!(h.pop().unwrap().seq, 9);
    }
}
