//! Composable link fault models: bursty loss, reordering, duplication
//! and bit corruption.
//!
//! [`crate::Impairment`] models a *well-behaved* bad link — uniform
//! loss, fixed delay, FIFO jitter. Real networks misbehave in richer
//! ways, and a network tester exists precisely to measure devices under
//! those conditions. [`FaultyLink`] is the composable generalisation:
//!
//! * **Gilbert–Elliott bursty loss** — a two-state Markov channel
//!   (good/burst) whose loss probability depends on the state, so drops
//!   cluster the way interference and queue overflow actually cluster;
//! * **bounded reordering** — selected frames are held back by a fixed
//!   extra interval and released out of FIFO order, displacing them by a
//!   bounded number of positions;
//! * **duplication** — a frame is delivered twice (switch flooding
//!   glitches, retransmit races);
//! * **bit corruption** — seeded bit flips that invalidate the frame's
//!   FCS, so receivers count CRC errors instead of silently consuming
//!   mangled bytes (see [`osnt_packet::Packet::fcs_ok`]).
//!
//! Every decision draws from one seeded PRNG, so a faulty run is exactly
//! reproducible; all outcomes are tallied in a shared [`FaultStats`] so
//! experiments can report *partial results with explicit fault
//! accounting* instead of dying.

use crate::burst::PacketBurst;
use crate::component::{Component, ComponentId};
use crate::kernel::Kernel;
use osnt_error::OsntError;
use osnt_packet::Packet;
use osnt_time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Frame-loss process of a [`FaultyLink`].
#[derive(Debug, Clone, Default)]
pub enum LossModel {
    /// No loss.
    #[default]
    None,
    /// Independent per-frame loss (what [`crate::Impairment`] does).
    Uniform {
        /// Per-frame drop probability.
        probability: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) bursty loss.
    GilbertElliott(GilbertElliott),
}

/// Parameters of the Gilbert–Elliott channel.
///
/// The channel sits in the *good* or the *burst* state; on every frame
/// it first makes a state transition, then drops the frame with the
/// state's loss probability. Mean burst length is `1 / p_exit_burst`
/// frames; stationary time in the burst state is
/// `p_enter_burst / (p_enter_burst + p_exit_burst)`.
#[derive(Debug, Clone, Copy)]
pub struct GilbertElliott {
    /// Probability of moving good → burst at a frame.
    pub p_enter_burst: f64,
    /// Probability of moving burst → good at a frame.
    pub p_exit_burst: f64,
    /// Loss probability while in the good state (usually 0).
    pub loss_good: f64,
    /// Loss probability while in the burst state (usually near 1).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A classic bursty profile: bursts start with probability
    /// `p_enter_burst` and run `mean_burst_frames` on average, dropping
    /// everything inside a burst and nothing outside.
    pub fn bursty(p_enter_burst: f64, mean_burst_frames: f64) -> Self {
        GilbertElliott {
            p_enter_burst,
            p_exit_burst: 1.0 / mean_burst_frames.max(1.0),
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Long-run fraction of frames lost.
    pub fn stationary_loss(&self) -> f64 {
        let denom = self.p_enter_burst + self.p_exit_burst;
        if denom == 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_enter_burst / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// Full fault-injection configuration of a [`FaultyLink`]. Everything
/// defaults to *off*; compose the faults an experiment needs.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The loss process.
    pub loss: LossModel,
    /// Probability a frame is selected for reordering.
    pub reorder_probability: f64,
    /// Extra hold applied to reordered frames (bounds the displacement:
    /// a held frame is overtaken by at most `hold / frame_gap` frames).
    pub reorder_hold: SimDuration,
    /// Probability a frame is delivered twice.
    pub duplicate_probability: f64,
    /// Probability a frame is corrupted in flight.
    pub corrupt_probability: f64,
    /// Bits flipped per corrupted frame (≥ 1).
    pub corrupt_bits: u32,
    /// Fixed extra one-way delay.
    pub extra_delay: SimDuration,
    /// Uniform random jitter on top of `extra_delay` (0..jitter); does
    /// not reorder (FIFO per direction, like [`crate::Impairment`]).
    pub jitter: SimDuration,
    /// RNG seed for every stochastic decision above.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            loss: LossModel::None,
            reorder_probability: 0.0,
            reorder_hold: SimDuration::from_us(100),
            duplicate_probability: 0.0,
            corrupt_probability: 0.0,
            corrupt_bits: 1,
            extra_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            seed: 1,
        }
    }
}

impl From<crate::impair::ImpairConfig> for FaultConfig {
    /// An [`crate::ImpairConfig`] is the uniform special case of the
    /// fault family.
    fn from(c: crate::impair::ImpairConfig) -> Self {
        FaultConfig {
            loss: if c.drop_probability > 0.0 {
                LossModel::Uniform {
                    probability: c.drop_probability,
                }
            } else {
                LossModel::None
            },
            extra_delay: c.extra_delay,
            jitter: c.jitter,
            seed: c.seed,
            ..FaultConfig::default()
        }
    }
}

impl FaultConfig {
    /// Validate the configuration (probabilities in `[0, 1]`, burst
    /// parameters sane). Construction goes through this, so a bad config
    /// is a typed error at build time, not a panic mid-run.
    pub fn validate(&self) -> Result<(), OsntError> {
        let check_p = |name: &str, p: f64| {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                Err(OsntError::config(
                    "fault model",
                    format!("{name} probability {p} outside [0, 1]"),
                ))
            } else {
                Ok(())
            }
        };
        match &self.loss {
            LossModel::None => {}
            LossModel::Uniform { probability } => check_p("loss", *probability)?,
            LossModel::GilbertElliott(ge) => {
                check_p("burst-entry", ge.p_enter_burst)?;
                check_p("burst-exit", ge.p_exit_burst)?;
                check_p("good-state loss", ge.loss_good)?;
                check_p("burst-state loss", ge.loss_bad)?;
            }
        }
        check_p("reorder", self.reorder_probability)?;
        check_p("duplicate", self.duplicate_probability)?;
        check_p("corrupt", self.corrupt_probability)?;
        if self.corrupt_probability > 0.0 && self.corrupt_bits == 0 {
            return Err(OsntError::config(
                "fault model",
                "corrupt_probability > 0 requires corrupt_bits >= 1",
            ));
        }
        Ok(())
    }
}

/// Outcome tallies of a [`FaultyLink`], shared with the harness. One
/// counter per fault class, so an experiment can report exactly what was
/// injected alongside its (partial) measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered to the link (both directions).
    pub offered: u64,
    /// Frames dropped by the loss model.
    pub dropped: u64,
    /// Frames dropped while the Gilbert–Elliott channel was in the
    /// burst state (subset of `dropped`).
    pub dropped_in_burst: u64,
    /// Number of good → burst transitions taken.
    pub bursts: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames corrupted (FCS invalidated).
    pub corrupted: u64,
    /// Frames released out of FIFO order.
    pub reordered: u64,
    /// Frames delivered (duplicates counted twice).
    pub delivered: u64,
}

impl FaultStats {
    /// Fold another tally into this one (mirrors `MonStats::accumulate`).
    /// Campaign reports aggregate per-link counters across links, seeds
    /// and shards; every field is a sum, so accumulation is associative
    /// and order-independent.
    pub fn accumulate(&mut self, other: &FaultStats) {
        self.offered += other.offered;
        self.dropped += other.dropped;
        self.dropped_in_burst += other.dropped_in_burst;
        self.bursts += other.bursts;
        self.duplicated += other.duplicated;
        self.corrupted += other.corrupted;
        self.reordered += other.reordered;
        self.delivered += other.delivered;
    }
}

const TAG_FAULT_BASE: u64 = 0xFA17_0000_0000;

/// Per-direction Gilbert–Elliott channel state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GeState {
    Good,
    Burst,
}

/// A two-port fault-injecting link element. Frames entering port 0 leave
/// port 1 and vice versa, subject to the configured fault family.
/// Non-reordered frames keep per-direction FIFO order even under jitter;
/// only frames the reorder fault selects may overtake.
pub struct FaultyLink {
    config: FaultConfig,
    rng: SmallRng,
    ge_state: [GeState; 2],
    /// In-flight frames keyed by release tag.
    pending: HashMap<u64, (usize, Packet)>,
    next_id: u64,
    /// Latest scheduled release per output port (FIFO clamp).
    last_release: [SimTime; 2],
    stats: Rc<RefCell<FaultStats>>,
}

impl FaultyLink {
    /// Build from a config. Returns the component and the shared fault
    /// tally. Fails (typed, not panicking) on an invalid config.
    pub fn new(config: FaultConfig) -> Result<(Self, Rc<RefCell<FaultStats>>), OsntError> {
        config.validate()?;
        let stats = Rc::new(RefCell::new(FaultStats::default()));
        let seed = config.seed;
        Ok((
            FaultyLink {
                config,
                rng: SmallRng::seed_from_u64(seed ^ 0xFA01_7CAB),
                ge_state: [GeState::Good, GeState::Good],
                pending: HashMap::new(),
                next_id: 0,
                last_release: [SimTime::ZERO, SimTime::ZERO],
                stats: stats.clone(),
            },
            stats,
        ))
    }

    /// Shared handle to the fault tally.
    pub fn stats(&self) -> Rc<RefCell<FaultStats>> {
        self.stats.clone()
    }

    /// Run the loss process for one frame in direction `dir`. Returns
    /// true when the frame is lost.
    fn loss_decision(&mut self, dir: usize) -> bool {
        match &self.config.loss {
            LossModel::None => false,
            LossModel::Uniform { probability } => {
                *probability > 0.0 && self.rng.gen_bool(probability.clamp(0.0, 1.0))
            }
            LossModel::GilbertElliott(ge) => {
                let ge = *ge;
                // Transition first, then sample the state's loss.
                let state = &mut self.ge_state[dir];
                match *state {
                    GeState::Good => {
                        if ge.p_enter_burst > 0.0 && self.rng.gen_bool(ge.p_enter_burst) {
                            *state = GeState::Burst;
                            self.stats.borrow_mut().bursts += 1;
                        }
                    }
                    GeState::Burst => {
                        if ge.p_exit_burst > 0.0 && self.rng.gen_bool(ge.p_exit_burst) {
                            *state = GeState::Good;
                        }
                    }
                }
                let (p, in_burst) = match self.ge_state[dir] {
                    GeState::Good => (ge.loss_good, false),
                    GeState::Burst => (ge.loss_bad, true),
                };
                let lost = p > 0.0 && self.rng.gen_bool(p.clamp(0.0, 1.0));
                if lost && in_burst {
                    self.stats.borrow_mut().dropped_in_burst += 1;
                }
                lost
            }
        }
    }

    /// Schedule one delivery of `packet` out of `out` at `release`,
    /// through the pending map so per-frame timers can interleave.
    fn schedule_release(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        out: usize,
        release: SimTime,
        packet: Packet,
    ) {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(id, (out, packet));
        kernel.schedule_timer_at(me, release, TAG_FAULT_BASE + id);
    }

    /// The full per-frame fault pipeline at an explicit arrival instant
    /// `at` (`kernel.now()` on the scalar path; the member's own arrival
    /// on the burst fallback path — see
    /// [`crate::Component::wants_bursts`]).
    fn process_frame(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        port: usize,
        at: SimTime,
        mut packet: Packet,
    ) {
        debug_assert!(port < 2, "faulty link is a 2-port device");
        let out = 1 - port;
        self.stats.borrow_mut().offered += 1;

        // 1. Loss.
        if self.loss_decision(port) {
            self.stats.borrow_mut().dropped += 1;
            return;
        }
        // 2. Corruption (before duplication: both copies of a corrupted
        // frame arrive bad, like a corruptor upstream of the fan-out).
        if self.config.corrupt_probability > 0.0
            && self
                .rng
                .gen_bool(self.config.corrupt_probability.clamp(0.0, 1.0))
        {
            for _ in 0..self.config.corrupt_bits {
                let bit = self.rng.gen_range(0..packet.len().max(1) * 8);
                packet.flip_bit(bit);
            }
            self.stats.borrow_mut().corrupted += 1;
        }
        // 3. Base delay + jitter.
        let mut release = at + self.config.extra_delay;
        if self.config.jitter.as_ps() > 0 {
            release += SimDuration::from_ps(self.rng.gen_range(0..self.config.jitter.as_ps()));
        }
        // 4. Duplication: a second copy right behind the first.
        let duplicate = self.config.duplicate_probability > 0.0
            && self
                .rng
                .gen_bool(self.config.duplicate_probability.clamp(0.0, 1.0));
        // 5. Reordering: held frames skip the FIFO clamp and release
        // late, letting frames behind them overtake (bounded by the
        // hold interval).
        let reorder = self.config.reorder_probability > 0.0
            && self
                .rng
                .gen_bool(self.config.reorder_probability.clamp(0.0, 1.0));
        if reorder {
            release += self.config.reorder_hold;
            self.stats.borrow_mut().reordered += 1;
        } else {
            // FIFO clamp: never release before an earlier frame of the
            // same direction (jitter must not reorder).
            release = release.max(self.last_release[out]);
            self.last_release[out] = release;
        }
        if duplicate {
            self.stats.borrow_mut().duplicated += 1;
            self.schedule_release(kernel, me, out, release, packet.clone());
        }
        self.schedule_release(kernel, me, out, release, packet);
    }
}

impl Component for FaultyLink {
    fn on_packet(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, packet: Packet) {
        let now = kernel.now();
        self.process_frame(kernel, me, port, now, packet);
    }

    fn wants_bursts(&self) -> bool {
        true
    }

    fn on_burst(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, burst: PacketBurst) {
        debug_assert!(port < 2, "faulty link is a 2-port device");
        // Reordering — or frames already in flight whose release timers
        // could interleave with this burst — needs the timer-based
        // release machinery: replay the scalar pipeline per member at
        // its own arrival instant (same RNG draws, same release times,
        // same stats; only event keys differ, which no handler
        // observes).
        if self.config.reorder_probability > 0.0 || !self.pending.is_empty() {
            for (at, packet) in burst {
                self.process_frame(kernel, me, port, at, packet);
            }
            return;
        }
        // Vector fast path: without reordering and with nothing in
        // flight, releases are FIFO-clamped monotone, so the whole
        // burst leaves as one [`Kernel::transmit_burst`] whose
        // per-member earliest-start offers are exactly the scalar
        // release instants.
        let out = 1 - port;
        let mut members: Vec<(SimTime, Packet)> = Vec::with_capacity(burst.len());
        for (at, mut packet) in burst {
            self.stats.borrow_mut().offered += 1;
            if self.loss_decision(port) {
                self.stats.borrow_mut().dropped += 1;
                continue;
            }
            if self.config.corrupt_probability > 0.0
                && self
                    .rng
                    .gen_bool(self.config.corrupt_probability.clamp(0.0, 1.0))
            {
                for _ in 0..self.config.corrupt_bits {
                    let bit = self.rng.gen_range(0..packet.len().max(1) * 8);
                    packet.flip_bit(bit);
                }
                self.stats.borrow_mut().corrupted += 1;
            }
            let mut release = at + self.config.extra_delay;
            if self.config.jitter.as_ps() > 0 {
                release += SimDuration::from_ps(self.rng.gen_range(0..self.config.jitter.as_ps()));
            }
            let duplicate = self.config.duplicate_probability > 0.0
                && self
                    .rng
                    .gen_bool(self.config.duplicate_probability.clamp(0.0, 1.0));
            // (No reorder draw: probability is 0, so the scalar path
            // would not have drawn either.)
            release = release.max(self.last_release[out]);
            self.last_release[out] = release;
            if duplicate {
                self.stats.borrow_mut().duplicated += 1;
                members.push((release, packet.clone()));
            }
            members.push((release, packet));
        }
        if !members.is_empty() {
            let delivered = members.len() as u64;
            let _ = kernel.transmit_burst(me, out, members);
            self.stats.borrow_mut().delivered += delivered;
        }
    }

    fn on_timer(&mut self, kernel: &mut Kernel, me: ComponentId, tag: u64) {
        let id = tag - TAG_FAULT_BASE;
        let (out, packet) = self
            .pending
            .remove(&id)
            .expect("fault release timer without pending frame");
        let _ = kernel.transmit(me, out, packet);
        self.stats.borrow_mut().delivered += 1;
    }

    fn name(&self) -> &str {
        "faulty-link"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::link::LinkSpec;

    /// Seed mixed from the `OSNT_FAULT_SEED` environment variable so CI
    /// can re-run the statistical assertions under a second RNG seed set
    /// (seed-dependent fault-model bugs don't hide behind one lucky
    /// constant). Determinism tests use fixed literals instead.
    fn env_seed(base: u64) -> u64 {
        let extra = std::env::var("OSNT_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        base ^ extra.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Emits `n` frames with a sequence number in the payload.
    struct SeqBlaster {
        n: u64,
        gap: SimDuration,
    }
    impl Component for SeqBlaster {
        fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
            for i in 0..self.n {
                k.schedule_timer_at(me, SimTime::ZERO + self.gap.saturating_mul(i), i);
            }
        }
        fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
        fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
            let mut p = Packet::zeroed(64);
            p.data_mut()[0..8].copy_from_slice(&tag.to_be_bytes());
            let _ = k.transmit(me, 0, p);
        }
    }

    /// Records (arrival time, sequence, fcs_ok).
    #[derive(Default)]
    struct SeqSink {
        got: Rc<RefCell<Vec<(SimTime, u64, bool)>>>,
    }
    impl Component for SeqSink {
        fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, p: Packet) {
            let mut seq = [0u8; 8];
            seq.copy_from_slice(&p.data()[0..8]);
            self.got
                .borrow_mut()
                .push((k.now(), u64::from_be_bytes(seq), p.fcs_ok()));
        }
    }

    fn run_faulty(
        config: FaultConfig,
        n: u64,
        gap: SimDuration,
    ) -> (Vec<(SimTime, u64, bool)>, FaultStats) {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        let tx = b.add_component("tx", Box::new(SeqBlaster { n, gap }), 1);
        let (link, stats) = FaultyLink::new(config).expect("valid config");
        let f = b.add_component("fault", Box::new(link), 2);
        let rx = b.add_component("rx", Box::new(SeqSink { got: got.clone() }), 1);
        b.connect(tx, 0, f, 0, LinkSpec::ten_gig());
        b.connect(f, 1, rx, 0, LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_ms(200));
        let v = got.borrow().clone();
        let s = *stats.borrow();
        (v, s)
    }

    #[test]
    fn clean_config_is_transparent() {
        let (got, s) = run_faulty(FaultConfig::default(), 200, SimDuration::from_us(1));
        assert_eq!(got.len(), 200);
        assert_eq!(s.delivered, 200);
        assert_eq!(s.dropped + s.corrupted + s.duplicated + s.reordered, 0);
        // FIFO + all clean.
        for (i, w) in got.windows(2).enumerate() {
            assert!(w[1].1 > w[0].1, "order broken at {i}");
        }
        assert!(got.iter().all(|g| g.2));
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        let ge = GilbertElliott::bursty(0.02, 8.0);
        let config = FaultConfig {
            loss: LossModel::GilbertElliott(ge),
            seed: env_seed(11),
            ..FaultConfig::default()
        };
        let n = 20_000;
        let (got, s) = run_faulty(config, n, SimDuration::from_ns(500));
        let loss = s.dropped as f64 / n as f64;
        let expect = ge.stationary_loss();
        assert!(
            (loss - expect).abs() < 0.05,
            "loss {loss} vs stationary {expect}"
        );
        assert!(s.bursts > 10, "bursts {}", s.bursts);
        assert_eq!(s.dropped_in_burst, s.dropped, "all loss inside bursts");
        // Burstiness: the arrived-sequence gaps must contain runs of
        // consecutive losses far longer than uniform loss at the same
        // rate would produce.
        let mut longest_run = 0u64;
        for w in got.windows(2) {
            longest_run = longest_run.max(w[1].1 - w[0].1 - 1);
        }
        assert!(
            longest_run >= 5,
            "longest drop burst {longest_run} too short for mean-8 bursts"
        );
        // Mean drop-run length ≈ mean burst length (within a factor).
        let runs = s.bursts.max(1);
        let mean_run = s.dropped as f64 / runs as f64;
        assert!(mean_run > 3.0, "mean run {mean_run} not bursty");
    }

    #[test]
    fn corruption_invalidates_fcs_downstream() {
        let config = FaultConfig {
            corrupt_probability: 0.3,
            corrupt_bits: 3,
            seed: env_seed(5),
            ..FaultConfig::default()
        };
        let (got, s) = run_faulty(config, 2000, SimDuration::from_us(1));
        assert_eq!(got.len(), 2000, "corruption never loses frames");
        let bad = got.iter().filter(|g| !g.2).count() as u64;
        assert_eq!(bad, s.corrupted);
        let frac = bad as f64 / 2000.0;
        assert!((frac - 0.3).abs() < 0.06, "corrupt fraction {frac}");
    }

    #[test]
    fn duplication_delivers_twice() {
        let config = FaultConfig {
            duplicate_probability: 0.25,
            seed: env_seed(7),
            ..FaultConfig::default()
        };
        let (got, s) = run_faulty(config, 2000, SimDuration::from_us(1));
        assert_eq!(got.len() as u64, 2000 + s.duplicated);
        assert!(s.duplicated > 300, "duplicated {}", s.duplicated);
        // Duplicates are adjacent (same release instant, FIFO order).
        let dup_pairs = got.windows(2).filter(|w| w[0].1 == w[1].1).count() as u64;
        assert_eq!(dup_pairs, s.duplicated);
    }

    #[test]
    fn reordering_is_bounded_by_the_hold() {
        let gap = SimDuration::from_us(10);
        let hold = SimDuration::from_us(35); // displaces by at most 4 positions
        let config = FaultConfig {
            reorder_probability: 0.1,
            reorder_hold: hold,
            seed: env_seed(3),
            ..FaultConfig::default()
        };
        let (got, s) = run_faulty(config, 2000, gap);
        assert_eq!(got.len(), 2000, "reordering never loses frames");
        assert!(s.reordered > 100, "reordered {}", s.reordered);
        // Some frames must have been overtaken…
        let inversions = got.windows(2).filter(|w| w[1].1 < w[0].1).count();
        assert!(inversions > 0, "no reordering observed");
        // …but displacement is bounded: a frame can be overtaken by at
        // most ceil(hold/gap) successors.
        let bound = (hold.as_ps() / gap.as_ps() + 1) as i64;
        for (pos, (_, seq, _)) in got.iter().enumerate() {
            let displacement = pos as i64 - *seq as i64;
            assert!(
                displacement.abs() <= bound,
                "frame {seq} displaced by {displacement} > bound {bound}"
            );
        }
    }

    #[test]
    fn composed_faults_account_exactly() {
        let config = FaultConfig {
            loss: LossModel::Uniform { probability: 0.1 },
            duplicate_probability: 0.05,
            corrupt_probability: 0.05,
            jitter: SimDuration::from_us(3),
            seed: env_seed(42),
            ..FaultConfig::default()
        };
        let (got, s) = run_faulty(config, 5000, SimDuration::from_us(1));
        assert_eq!(s.offered, 5000);
        assert_eq!(got.len() as u64, s.delivered);
        assert_eq!(s.delivered, s.offered - s.dropped + s.duplicated);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let config = FaultConfig {
                loss: LossModel::GilbertElliott(GilbertElliott::bursty(0.01, 5.0)),
                reorder_probability: 0.05,
                duplicate_probability: 0.05,
                corrupt_probability: 0.05,
                jitter: SimDuration::from_us(2),
                seed: 99,
                ..FaultConfig::default()
            };
            run_faulty(config, 3000, SimDuration::from_us(1))
        };
        let (a, sa) = mk();
        let (b, sb) = mk();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn impair_config_upgrades_losslessly() {
        let imp = crate::impair::ImpairConfig::loss(0.25, 7);
        let fc: FaultConfig = imp.into();
        assert!(matches!(
            fc.loss,
            LossModel::Uniform { probability } if (probability - 0.25).abs() < 1e-12
        ));
        assert_eq!(fc.seed, 7);
        fc.validate().unwrap();
    }

    #[test]
    fn accumulate_sums_every_counter() {
        let a = FaultStats {
            offered: 10,
            dropped: 1,
            dropped_in_burst: 1,
            bursts: 2,
            duplicated: 3,
            corrupted: 4,
            reordered: 5,
            delivered: 12,
        };
        let b = FaultStats {
            offered: 100,
            dropped: 20,
            dropped_in_burst: 8,
            bursts: 1,
            duplicated: 0,
            corrupted: 7,
            reordered: 2,
            delivered: 80,
        };
        let mut acc = a;
        acc.accumulate(&b);
        assert_eq!(
            acc,
            FaultStats {
                offered: 110,
                dropped: 21,
                dropped_in_burst: 9,
                bursts: 3,
                duplicated: 3,
                corrupted: 11,
                reordered: 7,
                delivered: 92,
            }
        );
        // Order independence: (a + b) == (b + a).
        let mut rev = b;
        rev.accumulate(&a);
        assert_eq!(acc, rev);
        // Identity: accumulating the default changes nothing.
        let before = acc;
        acc.accumulate(&FaultStats::default());
        assert_eq!(acc, before);
    }

    #[test]
    fn invalid_configs_are_typed_errors_not_panics() {
        let bad = FaultConfig {
            corrupt_probability: 1.5,
            ..FaultConfig::default()
        };
        assert!(matches!(
            FaultyLink::new(bad),
            Err(OsntError::Config { .. })
        ));
        let bad = FaultConfig {
            corrupt_probability: 0.5,
            corrupt_bits: 0,
            ..FaultConfig::default()
        };
        assert!(FaultyLink::new(bad).is_err());
        let bad = FaultConfig {
            loss: LossModel::GilbertElliott(GilbertElliott {
                p_enter_burst: f64::NAN,
                p_exit_burst: 0.5,
                loss_good: 0.0,
                loss_bad: 1.0,
            }),
            ..FaultConfig::default()
        };
        assert!(FaultyLink::new(bad).is_err());
    }
}
