//! A byte- and frame-bounded FIFO, the building block of switch output
//! queues and host DMA buffers.

use std::collections::VecDeque;

/// Result of offering an item to a bounded FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// The item was accepted.
    Enqueued,
    /// The item was tail-dropped (queue full).
    Dropped,
}

/// A FIFO of `T` with optional limits on total bytes and item count.
/// Tail-drop on overflow, like a simple hardware queue.
#[derive(Debug, Clone)]
pub struct ByteFifo<T> {
    items: VecDeque<(T, usize)>,
    bytes: usize,
    /// Maximum total bytes held (`None` = unbounded).
    pub max_bytes: Option<usize>,
    /// Maximum number of items held (`None` = unbounded).
    pub max_items: Option<usize>,
    /// Lifetime count of accepted items.
    pub enqueued: u64,
    /// Lifetime count of tail-dropped items.
    pub dropped: u64,
}

impl<T> ByteFifo<T> {
    /// An unbounded FIFO.
    pub fn unbounded() -> Self {
        ByteFifo {
            items: VecDeque::new(),
            bytes: 0,
            max_bytes: None,
            max_items: None,
            enqueued: 0,
            dropped: 0,
        }
    }

    /// A FIFO bounded by total bytes.
    pub fn with_byte_limit(max_bytes: usize) -> Self {
        let mut q = Self::unbounded();
        q.max_bytes = Some(max_bytes);
        q
    }

    /// A FIFO bounded by item count.
    pub fn with_item_limit(max_items: usize) -> Self {
        let mut q = Self::unbounded();
        q.max_items = Some(max_items);
        q
    }

    /// Offer an item accounting for `bytes`; tail-drops if a limit would
    /// be exceeded.
    pub fn push(&mut self, item: T, bytes: usize) -> EnqueueResult {
        if let Some(maxb) = self.max_bytes {
            if self.bytes + bytes > maxb {
                self.dropped += 1;
                return EnqueueResult::Dropped;
            }
        }
        if let Some(maxi) = self.max_items {
            if self.items.len() >= maxi {
                self.dropped += 1;
                return EnqueueResult::Dropped;
            }
        }
        self.bytes += bytes;
        self.items.push_back((item, bytes));
        self.enqueued += 1;
        EnqueueResult::Enqueued
    }

    /// Remove the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let (item, bytes) = self.items.pop_front()?;
        self.bytes -= bytes;
        Some(item)
    }

    /// Peek at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front().map(|(i, _)| i)
    }

    /// Bytes currently queued.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = ByteFifo::unbounded();
        q.push("a", 1);
        q.push("b", 2);
        q.push("c", 3);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn byte_limit_tail_drops() {
        let mut q = ByteFifo::with_byte_limit(100);
        assert_eq!(q.push(1, 60), EnqueueResult::Enqueued);
        assert_eq!(q.push(2, 60), EnqueueResult::Dropped);
        assert_eq!(q.push(3, 40), EnqueueResult::Enqueued);
        assert_eq!(q.bytes(), 100);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.enqueued, 2);
        // Draining frees capacity again.
        q.pop();
        assert_eq!(q.push(4, 60), EnqueueResult::Enqueued);
    }

    #[test]
    fn item_limit_tail_drops() {
        let mut q = ByteFifo::with_item_limit(2);
        q.push('x', 0);
        q.push('y', 0);
        assert_eq!(q.push('z', 0), EnqueueResult::Dropped);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn byte_accounting_tracks_pops() {
        let mut q = ByteFifo::unbounded();
        q.push(1, 64);
        q.push(2, 1518);
        assert_eq!(q.bytes(), 1582);
        q.pop();
        assert_eq!(q.bytes(), 1518);
        q.pop();
        assert_eq!(q.bytes(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn front_does_not_consume() {
        let mut q = ByteFifo::unbounded();
        q.push(7, 1);
        assert_eq!(q.front(), Some(&7));
        assert_eq!(q.len(), 1);
    }
}
