//! Lock-light primitives for the sharded kernel: a bounded SPSC ring
//! with a mutex spill for overflow, and a sense-reversing spin barrier.
//!
//! Both are tailored to the shard executive's *barrier-phased* access
//! pattern (see `shard.rs`): within a time window exactly one producer
//! thread pushes into a ring, and the consumer thread drains it only
//! after the next barrier — so the ring is never contended in the
//! mutual-exclusion sense, only in the memory-ordering sense. The
//! Acquire/Release pairs below are what carry a pushed entry's payload
//! across that boundary (the barrier's own synchronisation would too,
//! but the ring does not rely on it: it is a correct SPSC queue even
//! under fully concurrent push/drain).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A bounded single-producer single-consumer ring. `push` never blocks
/// and never loses an entry: when the ring is full the entry overflows
/// into a mutex-protected spill vector (slow path, but the window
/// barrier guarantees it is uncontended in practice — the consumer only
/// takes the spill lock while the producer is parked at a barrier).
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer reads. Monotonic; slot = head % cap.
    head: AtomicUsize,
    /// Next slot the producer writes. Monotonic; slot = tail % cap.
    tail: AtomicUsize,
    spill: Mutex<Vec<T>>,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly
// one other, with a Release store on `tail` (push) happens-before the
// Acquire load of `tail` (drain) that licenses reading the slot — the
// standard SPSC argument. `T: Send` is required because ownership
// crosses threads.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring with `capacity` lock-free slots (overflow spills to the
    /// mutex-protected vector). Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        SpscRing {
            buf: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            spill: Mutex::new(Vec::new()),
        }
    }

    /// Producer side. Never blocks on the consumer; overflows to the
    /// spill vector when the ring is full.
    pub fn push(&self, value: T) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.buf.len() {
            self.spill.lock().expect("spill lock poisoned").push(value);
            return;
        }
        let slot = tail % self.buf.len();
        // SAFETY: `head <= tail - cap` was just excluded, so the
        // consumer has already drained this slot (or never filled it);
        // only this producer writes slots at `tail`.
        unsafe { (*self.buf[slot].get()).write(value) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: move every available entry into `out`. Entries
    /// pushed concurrently with the drain may or may not be included —
    /// the shard executive only drains at a barrier, where the producer
    /// is quiescent, so in practice this empties the channel.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        let tail = self.tail.load(Ordering::Acquire);
        let mut head = self.head.load(Ordering::Relaxed);
        while head != tail {
            let slot = head % self.buf.len();
            // SAFETY: `head < tail` means the producer's Release store
            // made this slot's write visible; only this consumer reads
            // slots at `head`.
            out.push(unsafe { (*self.buf[slot].get()).assume_init_read() });
            head = head.wrapping_add(1);
        }
        self.head.store(head, Ordering::Release);
        let mut spill = self.spill.lock().expect("spill lock poisoned");
        out.append(&mut spill);
    }

    /// True when no entry is buffered (ring or spill). Only meaningful
    /// while the producer is quiescent.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
            && self.spill.lock().expect("spill lock poisoned").is_empty()
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drop any undrained entries (e.g. a run that panicked).
        let tail = *self.tail.get_mut();
        let mut head = *self.head.get_mut();
        while head != tail {
            let slot = head % self.buf.len();
            unsafe { (*self.buf[slot].get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// The barrier reported poisoned: some other worker panicked mid-window
/// and will never arrive. Callers unwind (panic) rather than deadlock.
#[derive(Debug, Clone, Copy)]
pub struct BarrierPoisoned;

/// A sense-reversing spin barrier for the shard workers.
///
/// Spins briefly then yields — the simulation must stay correct (if
/// slow) on a single-core host, where pure spinning would burn the
/// whole scheduling quantum of the one runnable worker. A worker that
/// panics poisons the barrier from its drop guard so its peers return
/// [`BarrierPoisoned`] instead of waiting forever.
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    /// Flipped by the last arriver of each generation.
    sense: AtomicBool,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    /// A barrier for `n` workers. Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Block until all `n` workers arrive. `local_sense` is per-worker
    /// state: initialise to `false` and pass the same variable to every
    /// wait on this barrier.
    pub fn wait(&self, local_sense: &mut bool) -> Result<(), BarrierPoisoned> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(BarrierPoisoned);
        }
        let my_sense = !*local_sense;
        *local_sense = my_sense;
        if self.arrived.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            // Last arriver: reset and release the generation.
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            return Ok(());
        }
        let mut spins = 0u32;
        while self.sense.load(Ordering::Acquire) != my_sense {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(BarrierPoisoned);
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // On an oversubscribed (or single-core) host the peer
                // we're waiting on needs our timeslice.
                std::thread::yield_now();
            }
        }
        Ok(())
    }

    /// Mark the barrier dead: every current and future `wait` returns
    /// [`BarrierPoisoned`]. Called from a panicking worker's drop guard.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_roundtrips_in_order() {
        let r = SpscRing::new(4);
        for i in 0..3 {
            r.push(i);
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out, vec![0, 1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn ring_overflow_spills_without_loss() {
        let r = SpscRing::new(2);
        for i in 0..10 {
            r.push(i);
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ring_reuses_slots_across_drains() {
        let r = SpscRing::new(2);
        for round in 0..5 {
            r.push(round * 2);
            r.push(round * 2 + 1);
            let mut out = Vec::new();
            r.drain_into(&mut out);
            assert_eq!(out, vec![round * 2, round * 2 + 1]);
        }
    }

    #[test]
    fn ring_cross_thread_delivery() {
        let r = Arc::new(SpscRing::new(8));
        let p = r.clone();
        let t = std::thread::spawn(move || {
            for i in 0..1000u64 {
                p.push(i);
            }
        });
        let mut got = Vec::new();
        while got.len() < 1000 {
            r.drain_into(&mut got);
            std::thread::yield_now();
        }
        t.join().unwrap();
        // SPSC preserves push order (spill entries excepted — none here
        // if drains keep up, but sort to stay robust).
        got.sort_unstable();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn barrier_synchronizes_counter() {
        use std::sync::atomic::AtomicU64;
        let n = 4;
        let barrier = Arc::new(SpinBarrier::new(n));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = barrier.clone();
                let c = counter.clone();
                std::thread::spawn(move || {
                    let mut sense = false;
                    for round in 1..=10u64 {
                        c.fetch_add(1, Ordering::SeqCst);
                        b.wait(&mut sense).unwrap();
                        // Between barriers every worker observes the
                        // full round's increments.
                        assert_eq!(c.load(Ordering::SeqCst), round * n as u64);
                        b.wait(&mut sense).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poisoned_barrier_releases_waiters() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let b = barrier.clone();
        let t = std::thread::spawn(move || {
            let mut sense = false;
            b.wait(&mut sense)
        });
        // The peer never arrives; poison instead.
        barrier.poison();
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn poison_releases_every_parked_waiter_and_future_arrivals() {
        // Three of four workers park; the fourth poisons instead of
        // arriving. Every parked waiter must unblock with an error, and
        // the barrier must stay dead for later arrivals — the shard
        // executive relies on both to turn one panicking worker into a
        // clean all-stop instead of a deadlock.
        let barrier = Arc::new(SpinBarrier::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let b = barrier.clone();
                std::thread::spawn(move || {
                    let mut sense = false;
                    b.wait(&mut sense)
                })
            })
            .collect();
        barrier.poison();
        for w in waiters {
            assert!(w.join().unwrap().is_err(), "parked waiter not released");
        }
        let mut sense = false;
        assert!(
            barrier.wait(&mut sense).is_err(),
            "poison must be permanent for future waits"
        );
    }

    #[test]
    fn poison_from_unwinding_worker_releases_peer() {
        // The executive's PoisonGuard pattern: a worker that unwinds
        // poisons from its drop guard. The peer parked at the barrier
        // must observe the poison, not spin forever.
        struct Guard(Arc<SpinBarrier>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.poison();
            }
        }
        let barrier = Arc::new(SpinBarrier::new(2));
        let b = barrier.clone();
        let peer = std::thread::spawn(move || {
            let mut sense = false;
            b.wait(&mut sense)
        });
        let b = barrier.clone();
        let dead = std::thread::spawn(move || {
            let _guard = Guard(b);
            panic!("worker died mid-window");
        });
        assert!(dead.join().is_err(), "worker must have panicked");
        assert!(peer.join().unwrap().is_err(), "peer not released");
    }

    #[test]
    fn spill_keeps_fill_order_within_a_cycle() {
        // Capacity 2: entries 0,1 land in the ring, 2..5 in the spill.
        // One drain must yield all of them, oldest first — the ring
        // part precedes the spill part and each part is FIFO.
        let r = SpscRing::new(2);
        for i in 0..5 {
            r.push(i);
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn repeated_overflow_cycles_lose_nothing() {
        // Overflow into the spill, drain, overflow again: slot reuse
        // after a spill must not drop or duplicate entries.
        let r = SpscRing::new(3);
        let mut next = 0u64;
        for _ in 0..50 {
            for _ in 0..8 {
                r.push(next);
                next += 1;
            }
            let mut out = Vec::new();
            r.drain_into(&mut out);
            assert_eq!(out, ((next - 8)..next).collect::<Vec<_>>());
            assert!(r.is_empty());
        }
    }

    #[test]
    fn concurrent_producer_overflow_delivers_complete_set() {
        // A tiny ring with a fast producer forces the spill path while
        // the consumer drains concurrently (no barrier between them —
        // harsher than the executive's phased pattern). Every pushed
        // entry must arrive exactly once.
        let r = Arc::new(SpscRing::new(4));
        let p = r.clone();
        let t = std::thread::spawn(move || {
            for i in 0..20_000u64 {
                p.push(i);
            }
        });
        let mut got = Vec::new();
        while got.len() < 20_000 {
            r.drain_into(&mut got);
            std::thread::yield_now();
        }
        t.join().unwrap();
        assert!(r.is_empty());
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, (0..20_000).collect::<Vec<_>>());
    }
}
