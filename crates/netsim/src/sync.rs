//! Lock-light primitives for the sharded kernel: a bounded SPSC ring
//! with a mutex spill for overflow, and a sense-reversing spin barrier
//! with a spin → yield → park backoff.
//!
//! Both are tailored to the shard executive's *barrier-phased* access
//! pattern (see `shard.rs`): within a time window exactly one producer
//! thread pushes into a ring, and the consumer thread drains it only
//! after the next barrier — so the ring is never contended in the
//! mutual-exclusion sense, only in the memory-ordering sense. The
//! Acquire/Release pairs below are what carry a pushed entry's payload
//! across that boundary (the barrier's own synchronisation would too,
//! but the ring does not rely on it: it is a correct SPSC queue even
//! under fully concurrent push/drain).
//!
//! # Memory layout
//!
//! The ring's producer-side and consumer-side indices live on separate
//! 64-byte cache lines ([`CachePadded`]). With `head` and `tail` as
//! adjacent `AtomicUsize`s (the naive layout) every `push` invalidates
//! the consumer's line and every drain invalidates the producer's —
//! pure false sharing, since neither side ever needs the other's index
//! on its fast path. The producer additionally keeps a *cached* copy
//! of the consumer's `head`: as long as `tail - cached_head` leaves
//! room, a push touches only producer-local state and skips the
//! Acquire load of `head` entirely. The cache is refreshed (one
//! Acquire load) only when the ring *looks* full, i.e. at most once
//! per `capacity` pushes in steady state.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Pads and aligns its contents to a 64-byte cache line so two
/// instances never share one (the `crossbeam::CachePadded` idea,
/// without the dependency). 64 bytes covers x86-64 and mainstream
/// aarch64; on 128-byte-line parts the cost is a missed optimisation,
/// not a correctness issue.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Cumulative traffic counters of one [`SpscRing`], for the executive's
/// window-accounting ledger. All three are monotonic over the ring's
/// lifetime; once the ring is empty, `pushes == ring_drains + spills`
/// (every entry either travelled through a ring slot and was drained,
/// or overflowed into the spill vector).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCounters {
    /// Entries offered to the ring (fast path + spill overflow).
    pub pushes: u64,
    /// Entries drained out of ring slots (spill deliveries excluded).
    pub ring_drains: u64,
    /// Entries that overflowed into the spill vector.
    pub spills: u64,
}

/// Producer-owned hot state: everything a fast-path `push` touches.
struct ProducerSide {
    /// Next slot the producer writes. Monotonic; slot = tail % cap.
    tail: AtomicUsize,
    /// Producer's last observed value of the consumer's `head`. Always
    /// a *lower bound* on the true head (the consumer only moves it
    /// forward), so acting on a stale value is conservative: the ring
    /// can only look fuller than it is, never emptier.
    cached_head: Cell<usize>,
    pushes: AtomicU64,
    spills: AtomicU64,
}

/// Consumer-owned hot state.
struct ConsumerSide {
    /// Next slot the consumer reads. Monotonic; slot = head % cap.
    head: AtomicUsize,
    drained: AtomicU64,
}

/// A bounded single-producer single-consumer ring. `push` never blocks
/// and never loses an entry: when the ring is full the entry overflows
/// into a mutex-protected spill vector (slow path, but the window
/// barrier guarantees it is uncontended in practice — the consumer only
/// takes the spill lock while the producer is parked at a barrier).
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    prod: CachePadded<ProducerSide>,
    cons: CachePadded<ConsumerSide>,
    spill: Mutex<Vec<T>>,
    /// Entries currently in the spill vector, maintained under the
    /// spill lock. Lets `drain_into` and `is_empty` skip the mutex in
    /// the (overwhelmingly common) no-overflow case.
    spill_len: AtomicUsize,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly
// one other, with a Release store on `tail` (push) happens-before the
// Acquire load of `tail` (drain) that licenses reading the slot — the
// standard SPSC argument. `T: Send` is required because ownership
// crosses threads. `cached_head` is a `Cell` inside a `Sync` type;
// that is sound because it is part of the *producer's* state and the
// SPSC contract (exactly one pushing thread at a time, successive
// producers ordered by external synchronisation — here the window
// barrier or thread join) means it is never accessed concurrently.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring with `capacity` lock-free slots (overflow spills to the
    /// mutex-protected vector). Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        SpscRing {
            buf: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            prod: CachePadded(ProducerSide {
                tail: AtomicUsize::new(0),
                cached_head: Cell::new(0),
                pushes: AtomicU64::new(0),
                spills: AtomicU64::new(0),
            }),
            cons: CachePadded(ConsumerSide {
                head: AtomicUsize::new(0),
                drained: AtomicU64::new(0),
            }),
            spill: Mutex::new(Vec::new()),
            spill_len: AtomicUsize::new(0),
        }
    }

    /// Producer side. Never blocks on the consumer; overflows to the
    /// spill vector when the ring is full. Fast path: no shared-line
    /// load at all while the cached head shows room.
    pub fn push(&self, value: T) {
        let p = &self.prod.0;
        p.pushes.fetch_add(1, Ordering::Relaxed);
        let tail = p.tail.load(Ordering::Relaxed);
        let cap = self.buf.len();
        let mut head = p.cached_head.get();
        if tail.wrapping_sub(head) >= cap {
            // Looks full through the cache: refresh from the consumer
            // (the one Acquire the fast path avoids) and re-check.
            head = self.cons.0.head.load(Ordering::Acquire);
            p.cached_head.set(head);
            if tail.wrapping_sub(head) >= cap {
                p.spills.fetch_add(1, Ordering::Relaxed);
                let mut spill = self.spill.lock().expect("spill lock poisoned");
                spill.push(value);
                self.spill_len.store(spill.len(), Ordering::Release);
                return;
            }
        }
        let slot = tail % cap;
        // SAFETY: `head <= tail - cap` was just excluded against a
        // lower bound on the true head, so the consumer has already
        // drained this slot (or never filled it); only this producer
        // writes slots at `tail`.
        unsafe { (*self.buf[slot].get()).write(value) };
        p.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: move every available entry into `out`, batched
    /// under a **single** Acquire load of `tail` (one synchronising
    /// access per drain, however many entries transfer). Entries pushed
    /// concurrently with the drain may or may not be included — the
    /// shard executive only drains at a barrier, where the producer is
    /// quiescent, so in practice this empties the channel.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        let tail = self.prod.0.tail.load(Ordering::Acquire);
        let mut head = self.cons.0.head.load(Ordering::Relaxed);
        let n = tail.wrapping_sub(head);
        if n > 0 {
            out.reserve(n);
            for _ in 0..n {
                let slot = head % self.buf.len();
                // SAFETY: `head < tail` means the producer's Release
                // store made this slot's write visible; only this
                // consumer reads slots at `head`.
                out.push(unsafe { (*self.buf[slot].get()).assume_init_read() });
                head = head.wrapping_add(1);
            }
            self.cons.0.head.store(head, Ordering::Release);
            self.cons.0.drained.fetch_add(n as u64, Ordering::Relaxed);
        }
        // Spill path: only touch the mutex when something overflowed.
        if self.spill_len.load(Ordering::Acquire) > 0 {
            let mut spill = self.spill.lock().expect("spill lock poisoned");
            out.append(&mut spill);
            self.spill_len.store(0, Ordering::Release);
        }
    }

    /// True when no entry is buffered (ring or spill). Only meaningful
    /// while the producer is quiescent.
    pub fn is_empty(&self) -> bool {
        self.cons.0.head.load(Ordering::Acquire) == self.prod.0.tail.load(Ordering::Acquire)
            && self.spill_len.load(Ordering::Acquire) == 0
    }

    /// Lifetime counter snapshot. Deterministic for a deterministic
    /// push/drain schedule (the executive's is — window boundaries are
    /// functions of simulated time only), so these feed both
    /// [`crate::ShardStats`] and the chaos window-accounting ledger.
    pub fn counters(&self) -> RingCounters {
        RingCounters {
            pushes: self.prod.0.pushes.load(Ordering::Relaxed),
            ring_drains: self.cons.0.drained.load(Ordering::Relaxed),
            spills: self.prod.0.spills.load(Ordering::Relaxed),
        }
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drop any undrained entries (e.g. a run that panicked).
        let tail = *self.prod.0.tail.get_mut();
        let mut head = *self.cons.0.head.get_mut();
        while head != tail {
            let slot = head % self.buf.len();
            unsafe { (*self.buf[slot].get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// The barrier reported poisoned: some other worker panicked mid-window
/// and will never arrive. Callers unwind (panic) rather than deadlock.
#[derive(Debug, Clone, Copy)]
pub struct BarrierPoisoned;

/// Spin iterations before the first `yield_now` (cheap, keeps latency
/// minimal when all workers are genuinely running in parallel).
const SPIN_LIMIT: u32 = 64;
/// Yield iterations before escalating to parking. On an oversubscribed
/// host a few yields hand the timeslice to the straggler; only a
/// genuinely long wait (a peer descheduled for a full quantum, or a
/// much larger window on another shard) reaches the park path.
const YIELD_LIMIT: u32 = 256;
/// Park timeout: a pure backstop against any lost-wakeup window — a
/// parked waiter re-checks the sense at least this often even if no
/// unpark ever reaches it.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// A sense-reversing barrier for the shard workers with a three-stage
/// backoff: bounded spin, bounded `yield_now`, then `park_timeout`.
///
/// The simulation must stay correct *and cheap* on a single-core host,
/// where pure spinning burns the whole scheduling quantum of the one
/// runnable worker and even yield-looping keeps N-1 threads runnable
/// at all times. Parked waiters are registered in a wake list; the
/// last arriver (and [`SpinBarrier::poison`]) unparks them. A worker
/// that panics poisons the barrier from its drop guard so its peers
/// return [`BarrierPoisoned`] instead of waiting forever.
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    /// Flipped by the last arriver of each generation.
    sense: AtomicBool,
    poisoned: AtomicBool,
    /// Threads currently parked (or about to park) on this barrier.
    /// Entries may be stale across generations — an unpark token on a
    /// running thread only costs one spurious wake — but never missing:
    /// waiters register *before* their pre-park sense re-check.
    parked: Mutex<Vec<std::thread::Thread>>,
}

impl SpinBarrier {
    /// A barrier for `n` workers. Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            parked: Mutex::new(Vec::new()),
        }
    }

    fn wake_all(&self) {
        for t in self.parked.lock().expect("parked lock poisoned").drain(..) {
            t.unpark();
        }
    }

    /// Block until all `n` workers arrive. `local_sense` is per-worker
    /// state: initialise to `false` and pass the same variable to every
    /// wait on this barrier.
    pub fn wait(&self, local_sense: &mut bool) -> Result<(), BarrierPoisoned> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(BarrierPoisoned);
        }
        let my_sense = !*local_sense;
        *local_sense = my_sense;
        if self.arrived.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            // Last arriver: reset, release the generation, wake anyone
            // who escalated to parking. The wake list is drained under
            // the same lock waiters register under, so a waiter either
            // registered in time (and is unparked here) or registers
            // after this drain — in which case its pre-park re-check,
            // ordered after this store by that same lock, sees the
            // flipped sense and never parks unwoken.
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            self.wake_all();
            return Ok(());
        }
        let mut spins = 0u32;
        let mut registered = false;
        loop {
            if self.sense.load(Ordering::Acquire) == my_sense {
                return Ok(());
            }
            if self.poisoned.load(Ordering::Acquire) {
                return Err(BarrierPoisoned);
            }
            spins = spins.saturating_add(1);
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else if spins < SPIN_LIMIT + YIELD_LIMIT {
                // On an oversubscribed (or single-core) host the peer
                // we're waiting on needs our timeslice.
                std::thread::yield_now();
            } else if !registered {
                self.parked
                    .lock()
                    .expect("parked lock poisoned")
                    .push(std::thread::current());
                registered = true;
                // Loop back for one more sense/poison check before the
                // first park — closes the register-vs-release race.
            } else {
                std::thread::park_timeout(PARK_TIMEOUT);
            }
        }
    }

    /// Mark the barrier dead: every current and future `wait` returns
    /// [`BarrierPoisoned`]. Called from a panicking worker's drop
    /// guard. Unparks every registered waiter so the poison is
    /// observed promptly, not after a park timeout.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_roundtrips_in_order() {
        let r = SpscRing::new(4);
        for i in 0..3 {
            r.push(i);
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out, vec![0, 1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn ring_overflow_spills_without_loss() {
        let r = SpscRing::new(2);
        for i in 0..10 {
            r.push(i);
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ring_reuses_slots_across_drains() {
        let r = SpscRing::new(2);
        for round in 0..5 {
            r.push(round * 2);
            r.push(round * 2 + 1);
            let mut out = Vec::new();
            r.drain_into(&mut out);
            assert_eq!(out, vec![round * 2, round * 2 + 1]);
        }
    }

    #[test]
    fn ring_cross_thread_delivery() {
        let r = Arc::new(SpscRing::new(8));
        let p = r.clone();
        let t = std::thread::spawn(move || {
            for i in 0..1000u64 {
                p.push(i);
            }
        });
        let mut got = Vec::new();
        while got.len() < 1000 {
            r.drain_into(&mut got);
            std::thread::yield_now();
        }
        t.join().unwrap();
        // SPSC preserves push order (spill entries excepted — none here
        // if drains keep up, but sort to stay robust).
        got.sort_unstable();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn counters_balance_once_drained() {
        // The window-accounting ledger's ring identity: after a full
        // drain, pushes == ring_drains + spills, spills counted exactly.
        let r = SpscRing::new(4);
        for i in 0..11 {
            r.push(i); // 4 into slots, 7 spilled
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        r.push(99);
        r.drain_into(&mut out);
        assert!(r.is_empty());
        let c = r.counters();
        assert_eq!(c.pushes, 12);
        assert_eq!(c.spills, 7);
        assert_eq!(c.ring_drains, 5);
        assert_eq!(c.pushes, c.ring_drains + c.spills);
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn cached_head_refreshes_after_consumer_progress() {
        // Fill to capacity (cached head goes stale), drain, then push
        // again: the producer must refresh its cache and reuse slots
        // instead of spilling.
        let r = SpscRing::new(3);
        for i in 0..3 {
            r.push(i);
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        for i in 3..6 {
            r.push(i);
        }
        r.drain_into(&mut out);
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        assert_eq!(r.counters().spills, 0, "room existed; nothing may spill");
    }

    #[test]
    fn barrier_synchronizes_counter() {
        use std::sync::atomic::AtomicU64;
        let n = 4;
        let barrier = Arc::new(SpinBarrier::new(n));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = barrier.clone();
                let c = counter.clone();
                std::thread::spawn(move || {
                    let mut sense = false;
                    for round in 1..=10u64 {
                        c.fetch_add(1, Ordering::SeqCst);
                        b.wait(&mut sense).unwrap();
                        // Between barriers every worker observes the
                        // full round's increments.
                        assert_eq!(c.load(Ordering::SeqCst), round * n as u64);
                        b.wait(&mut sense).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn barrier_completes_under_single_core_style_contention() {
        // The `taskset -c 0` regression shape: more workers than any CI
        // host has cores, one deliberate straggler per round that
        // sleeps past the spin *and* yield budgets, so every other
        // worker must reach the park path — and still be woken. A
        // deadlock here hangs the test (caught by the harness timeout);
        // completion is the assertion.
        let n = 4;
        let rounds = 50u64;
        let barrier = Arc::new(SpinBarrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|w| {
                let b = barrier.clone();
                std::thread::spawn(move || {
                    let mut sense = false;
                    for round in 0..rounds {
                        if w as u64 == round % n as u64 {
                            // Straggler: guarantee peers exhaust their
                            // spin/yield budgets and park.
                            std::thread::sleep(Duration::from_micros(300));
                        }
                        b.wait(&mut sense).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poisoned_barrier_releases_waiters() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let b = barrier.clone();
        let t = std::thread::spawn(move || {
            let mut sense = false;
            b.wait(&mut sense)
        });
        // The peer never arrives; poison instead.
        barrier.poison();
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn poison_releases_every_parked_waiter_and_future_arrivals() {
        // Three of four workers park; the fourth poisons instead of
        // arriving. Every parked waiter must unblock with an error, and
        // the barrier must stay dead for later arrivals — the shard
        // executive relies on both to turn one panicking worker into a
        // clean all-stop instead of a deadlock.
        let barrier = Arc::new(SpinBarrier::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let b = barrier.clone();
                std::thread::spawn(move || {
                    let mut sense = false;
                    b.wait(&mut sense)
                })
            })
            .collect();
        // Give the waiters time to escalate into the parked state, so
        // the poison's unpark path (not just the flag) is exercised.
        std::thread::sleep(Duration::from_millis(5));
        barrier.poison();
        for w in waiters {
            assert!(w.join().unwrap().is_err(), "parked waiter not released");
        }
        let mut sense = false;
        assert!(
            barrier.wait(&mut sense).is_err(),
            "poison must be permanent for future waits"
        );
    }

    #[test]
    fn poison_from_unwinding_worker_releases_peer() {
        // The executive's PoisonGuard pattern: a worker that unwinds
        // poisons from its drop guard. The peer parked at the barrier
        // must observe the poison, not spin forever.
        struct Guard(Arc<SpinBarrier>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.poison();
            }
        }
        let barrier = Arc::new(SpinBarrier::new(2));
        let b = barrier.clone();
        let peer = std::thread::spawn(move || {
            let mut sense = false;
            b.wait(&mut sense)
        });
        let b = barrier.clone();
        let dead = std::thread::spawn(move || {
            let _guard = Guard(b);
            panic!("worker died mid-window");
        });
        assert!(dead.join().is_err(), "worker must have panicked");
        assert!(peer.join().unwrap().is_err(), "peer not released");
    }

    #[test]
    fn spill_keeps_fill_order_within_a_cycle() {
        // Capacity 2: entries 0,1 land in the ring, 2..5 in the spill.
        // One drain must yield all of them, oldest first — the ring
        // part precedes the spill part and each part is FIFO.
        let r = SpscRing::new(2);
        for i in 0..5 {
            r.push(i);
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn repeated_overflow_cycles_lose_nothing() {
        // Overflow into the spill, drain, overflow again: slot reuse
        // after a spill must not drop or duplicate entries.
        let r = SpscRing::new(3);
        let mut next = 0u64;
        for _ in 0..50 {
            for _ in 0..8 {
                r.push(next);
                next += 1;
            }
            let mut out = Vec::new();
            r.drain_into(&mut out);
            assert_eq!(out, ((next - 8)..next).collect::<Vec<_>>());
            assert!(r.is_empty());
        }
        let c = r.counters();
        assert_eq!(c.pushes, 400);
        assert_eq!(c.pushes, c.ring_drains + c.spills);
    }

    #[test]
    fn concurrent_producer_overflow_delivers_complete_set() {
        // A tiny ring with a fast producer forces the spill path while
        // the consumer drains concurrently (no barrier between them —
        // harsher than the executive's phased pattern). Every pushed
        // entry must arrive exactly once.
        let r = Arc::new(SpscRing::new(4));
        let p = r.clone();
        let t = std::thread::spawn(move || {
            for i in 0..20_000u64 {
                p.push(i);
            }
        });
        let mut got = Vec::new();
        while got.len() < 20_000 {
            r.drain_into(&mut got);
            std::thread::yield_now();
        }
        t.join().unwrap();
        assert!(r.is_empty());
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, (0..20_000).collect::<Vec<_>>());
        let c = r.counters();
        assert_eq!(c.pushes, 20_000);
        assert_eq!(c.pushes, c.ring_drains + c.spills);
    }
}
