//! Hierarchical timer wheel: the event queue of the simulation kernel.
//!
//! A line-rate DES run is brutally event-dense: a 10 Gb/s port emits a
//! 64-byte frame every 67.2 ns, and every frame costs a timer, a TxDone
//! and a Deliver event. A `BinaryHeap` pays `O(log n)` compares *and*
//! sift traffic per operation; worse, near-term events (the common case
//! — everything schedules within a few microseconds of `now`) share the
//! heap with far-future ones. A hierarchical timer wheel exploits the
//! DES access pattern — time only moves forward, and almost all events
//! land near the cursor — to make push and pop amortised `O(1)`.
//!
//! # Shape
//!
//! Four levels of 256 slots each over pico-second event times, with the
//! finest slot covering `2^13` ps = 8.192 ns (of the order of one
//! minimum-frame wire slot at 10 Gb/s):
//!
//! | level | slot width | level span |
//! |-------|------------|------------|
//! | 0     | 8.192 ns   | ~2.1 µs    |
//! | 1     | ~2.1 µs    | ~537 µs    |
//! | 2     | ~537 µs    | ~137 ms    |
//! | 3     | ~137 ms    | ~35 s      |
//!
//! Events beyond the top level's horizon go to a small overflow
//! min-heap and migrate onto the wheel when the horizon advances —
//! so arbitrarily far-future timers still work, they just pay the heap
//! price their rarity deserves.
//!
//! Slots are tracked by *absolute* slot number (`time >> shift(level)`),
//! with per-level occupancy bitmaps so finding the next busy slot scans
//! words, not slots. The slot at the cursor is drained into a sorted
//! *batch* and consumed back-to-front; same-slot pushes during dispatch
//! (zero-delay timers, intra-slot chains) are insertion-sorted into the
//! batch.
//!
//! # Determinism
//!
//! [`TimerWheel`] dispatches in exactly ascending `(time, seq)` order —
//! byte-for-byte the order the previous `BinaryHeap<EventEntry>` kernel
//! produced, including same-instant ties (callers supply a unique,
//! monotonically increasing `seq` per push). `tests/wheel_order.rs`
//! holds a property test pinning the equivalence against a reference
//! heap under randomized interleaved push/pop schedules.
//!
//! Callers must never push an event earlier than the last popped one
//! (the kernel's "no scheduling in the past" invariant); the wheel
//! debug-asserts this.

use osnt_time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the finest slot width in picoseconds (8.192 ns).
const BASE_SHIFT: u32 = 13;
/// log2 of slots per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Wheel levels; beyond level `LEVELS-1` events overflow to a heap.
const LEVELS: usize = 4;
/// Bitmap words per level (256 slots / 64 bits).
const BM_WORDS: usize = SLOTS / 64;

/// Absolute-slot shift for `level`.
#[inline]
const fn shift(level: usize) -> u32 {
    BASE_SHIFT + SLOT_BITS * level as u32
}

struct Entry<T> {
    ps: u64,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.ps, self.seq)
    }
}

/// Overflow-heap entry: min-heap via reversed `Ord` on `(ps, seq)`.
struct Overflow<T>(Entry<T>);

impl<T> PartialEq for Overflow<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for Overflow<T> {}
impl<T> PartialOrd for Overflow<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Overflow<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

struct Level<T> {
    slots: Vec<Vec<Entry<T>>>,
    /// One bit per slot: set iff the slot vec is non-empty.
    bitmap: [u64; BM_WORDS],
    /// Entries resident in this level (lets the refill walk skip empty
    /// levels without touching their bitmaps).
    count: usize,
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            bitmap: [0; BM_WORDS],
            count: 0,
        }
    }

    #[inline]
    fn put(&mut self, abs_slot: u64, e: Entry<T>) {
        let idx = (abs_slot & SLOT_MASK) as usize;
        self.slots[idx].push(e);
        self.bitmap[idx >> 6] |= 1 << (idx & 63);
        self.count += 1;
    }

    /// Move a slot's contents into `into` (which must be empty) by
    /// swapping the vecs, so allocations circulate between the slots and
    /// the caller's buffer instead of being freed and re-made per slot.
    #[inline]
    fn take_into(&mut self, abs_slot: u64, into: &mut Vec<Entry<T>>) {
        debug_assert!(into.is_empty());
        let idx = (abs_slot & SLOT_MASK) as usize;
        self.bitmap[idx >> 6] &= !(1 << (idx & 63));
        std::mem::swap(into, &mut self.slots[idx]);
        self.count -= into.len();
    }

    /// Next occupied absolute slot in `[from, end)`, scanning the
    /// occupancy bitmap a word at a time. The window is clamped to one
    /// revolution — a wider window would alias ring slots anyway, and
    /// stale (over-wide) windows only occur while the level is empty.
    fn find_occupied(&self, from: u64, end: u64) -> Option<u64> {
        let end = end.min(from + SLOTS as u64);
        let mut a = from;
        while a < end {
            let idx = (a & SLOT_MASK) as usize;
            let word = self.bitmap[idx >> 6] >> (idx & 63);
            if word != 0 {
                let cand = a + word.trailing_zeros() as u64;
                return if cand < end { Some(cand) } else { None };
            }
            a += 64 - (idx as u64 & 63);
        }
        None
    }
}

/// A hierarchical timer wheel ordering items by `(time, seq)`.
///
/// Drop-in replacement for a `BinaryHeap` min-ordered on `(time, seq)`:
/// [`TimerWheel::push`] / [`TimerWheel::pop`] / [`TimerWheel::peek`]
/// observe exactly the same total order, with amortised `O(1)` cost for
/// the near-cursor events that dominate a line-rate simulation.
///
/// `seq` values must be unique (the kernel uses a monotone counter);
/// items must not be pushed with a `(time, seq)` key smaller than the
/// last key popped.
pub struct TimerWheel<T> {
    /// Cached minimum: occupied only when its key is ≤ every other
    /// pending key. A push into an empty wheel lands here, so the
    /// pop → dispatch → push ping-pong of a lone periodic timer (and the
    /// head event of shallow queues) bypasses the rings entirely.
    front: Option<Entry<T>>,
    levels: Vec<Level<T>>,
    /// Per-level cursor: absolute slot numbers below this have been
    /// drained (or expanded) out of the level.
    next: [u64; LEVELS],
    /// Exclusive end (absolute top-level slot) of the wheel horizon;
    /// events at or past it live in `overflow`.
    top_end: u64,
    /// The drained cursor slot, sorted descending by `(ps, seq)` so the
    /// minimum pops from the back.
    batch: Vec<Entry<T>>,
    /// Absolute level-0 slot the batch was drained from. Pushes into
    /// this (or an earlier) quantum are insertion-sorted into the batch.
    batch_slot: u64,
    overflow: BinaryHeap<Overflow<T>>,
    /// Reusable buffer for slot expansion (keeps its capacity across
    /// cascades; a drained slot never round-trips the allocator).
    scratch: Vec<Entry<T>>,
    len: usize,
    #[cfg(debug_assertions)]
    last_popped: (u64, u64),
}

impl<T> TimerWheel<T> {
    /// An empty wheel anchored at time zero.
    pub fn new() -> Self {
        TimerWheel {
            front: None,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            next: [0; LEVELS],
            top_end: SLOTS as u64,
            batch: Vec::new(),
            batch_slot: 0,
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            len: 0,
            #[cfg(debug_assertions)]
            last_popped: (0, 0),
        }
    }

    /// Number of pending items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `item` at `time` with tiebreak `seq`.
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        let ps = time.as_ps();
        #[cfg(debug_assertions)]
        debug_assert!(
            (ps, seq) > self.last_popped || self.last_popped == (0, 0),
            "push of ({ps}, {seq}) at or before last pop {:?}",
            self.last_popped
        );
        let mut e = Entry { ps, seq, item };
        self.len += 1;
        if self.len == 1 {
            self.front = Some(e);
            return;
        }
        if let Some(f) = self.front.as_mut() {
            // Keep `front` the global minimum; the displaced entry goes
            // into the wheel body instead.
            if e.key() < f.key() {
                std::mem::swap(f, &mut e);
            }
        }
        // Current (or past) quantum: merge into the sorted batch so the
        // dispatch order stays exact.
        if e.ps >> BASE_SHIFT <= self.batch_slot {
            let pos = self.batch.partition_point(|b| b.key() > e.key());
            self.batch.insert(pos, e);
            return;
        }
        let ps = e.ps;
        for l in 0..LEVELS {
            let a = ps >> shift(l);
            let end = if l == LEVELS - 1 {
                self.top_end
            } else {
                self.next[l + 1] << SLOT_BITS
            };
            if a < end {
                debug_assert!(a >= self.next[l], "slot below cursor at level {l}");
                self.levels[l].put(a, e);
                return;
            }
        }
        self.overflow.push(Overflow(e));
    }

    /// Earliest pending `(time, seq)`, without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        if let Some(f) = &self.front {
            return Some((SimTime::from_ps(f.ps), f.seq));
        }
        self.refill();
        self.batch.last().map(|e| (SimTime::from_ps(e.ps), e.seq))
    }

    /// Like [`TimerWheel::peek`], but also exposes a borrow of the
    /// earliest item so a caller can decide whether to pop it (the
    /// arrival-coalescing loop inspects the event kind without
    /// committing to dispatch).
    pub fn peek_item(&mut self) -> Option<(SimTime, u64, &T)> {
        if self.front.is_none() {
            self.refill();
            return self
                .batch
                .last()
                .map(|e| (SimTime::from_ps(e.ps), e.seq, &e.item));
        }
        let f = self.front.as_ref().expect("checked above");
        Some((SimTime::from_ps(f.ps), f.seq, &f.item))
    }

    /// Remove and return the earliest pending item.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let e = match self.front.take() {
            Some(f) => f,
            None => {
                self.refill();
                self.batch.pop()?
            }
        };
        self.finish_pop(e)
    }

    /// Remove and return the earliest pending item only if it fires at
    /// or before `limit` — one call where the dispatch loop would
    /// otherwise peek then pop.
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, u64, T)> {
        let lim = limit.as_ps();
        if let Some(f) = &self.front {
            if f.ps > lim {
                return None;
            }
            let e = self.front.take().expect("checked");
            return self.finish_pop(e);
        }
        self.refill();
        if self.batch.last()?.ps > lim {
            return None;
        }
        let e = self.batch.pop().expect("checked");
        self.finish_pop(e)
    }

    #[inline]
    fn finish_pop(&mut self, e: Entry<T>) -> Option<(SimTime, u64, T)> {
        self.len -= 1;
        #[cfg(debug_assertions)]
        {
            debug_assert!(e.key() > self.last_popped || self.last_popped == (0, 0));
            self.last_popped = e.key();
        }
        Some((SimTime::from_ps(e.ps), e.seq, e.item))
    }

    /// Ensure the batch holds the earliest pending quantum (no-op when
    /// the batch is non-empty or the wheel is drained). Walks the
    /// levels coarse-to-fine, expanding one parent slot per pass until
    /// a level-0 slot drains into the batch.
    fn refill(&mut self) {
        // `front` (when occupied) is the minimum — peek/pop serve it
        // before ever needing the batch.
        if !self.batch.is_empty() || self.front.is_some() || self.len == 0 {
            return;
        }
        loop {
            // Finest level first: drain the next busy slot to the batch.
            // Empty levels are skipped on their resident count without
            // touching bitmaps.
            if self.levels[0].count > 0 {
                let end0 = self.next[1] << SLOT_BITS;
                if let Some(s) = self.levels[0].find_occupied(self.next[0], end0) {
                    self.levels[0].take_into(s, &mut self.batch);
                    // Sparse streams (one event per slot — e.g. per-frame
                    // Deliver chains) skip the sort call entirely.
                    if self.batch.len() > 1 {
                        self.batch
                            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    }
                    self.batch_slot = s;
                    self.next[0] = s + 1;
                    return;
                }
            }
            // Expand the next busy slot of the shallowest non-empty
            // coarser level down one level.
            let mut cascaded = false;
            for l in 1..LEVELS {
                if self.levels[l].count == 0 {
                    continue;
                }
                let end = if l == LEVELS - 1 {
                    self.top_end
                } else {
                    self.next[l + 1] << SLOT_BITS
                };
                if let Some(s) = self.levels[l].find_occupied(self.next[l], end) {
                    self.next[l] = s + 1;
                    self.next[l - 1] = s << SLOT_BITS;
                    let (children, parents) = self.levels.split_at_mut(l);
                    parents[0].take_into(s, &mut self.scratch);
                    let sh = shift(l - 1);
                    for e in self.scratch.drain(..) {
                        children[l - 1].put(e.ps >> sh, e);
                    }
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Wheel empty, overflow isn't: re-anchor the horizon at the
            // earliest overflow event and migrate what now fits.
            let min_top = {
                let m = self.overflow.peek().expect("len > 0 with empty wheel");
                m.0.ps >> shift(LEVELS - 1)
            };
            self.next[LEVELS - 1] = min_top;
            self.top_end = min_top + SLOTS as u64;
            while let Some(m) = self.overflow.peek() {
                if m.0.ps >> shift(LEVELS - 1) >= self.top_end {
                    break;
                }
                let e = self.overflow.pop().expect("peeked").0;
                self.levels[LEVELS - 1].put(e.ps >> shift(LEVELS - 1), e);
            }
        }
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("len", &self.len)
            .field("batch", &self.batch.len())
            .field("overflow", &self.overflow.len())
            .field("next", &self.next)
            .field("top_end", &self.top_end)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = w.pop() {
            out.push((t.as_ps(), s, v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_ps(30), 0, 0);
        w.push(SimTime::from_ps(10), 1, 1);
        w.push(SimTime::from_ps(10), 2, 2);
        w.push(SimTime::from_ps(20), 3, 3);
        let order: Vec<u64> = drain(&mut w).iter().map(|e| e.1).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
        assert!(w.is_empty());
    }

    #[test]
    fn spans_every_level_and_overflow() {
        // One event per decade of time: exercises L0..L3 and overflow.
        let times: Vec<u64> = (0..18).map(|i| 10u64.pow(i)).collect();
        let mut w = TimerWheel::new();
        for (i, &t) in times.iter().enumerate().rev() {
            w.push(SimTime::from_ps(t), i as u64, i as u32);
        }
        let popped: Vec<u64> = drain(&mut w).iter().map(|e| e.0).collect();
        assert_eq!(popped, times);
    }

    #[test]
    fn same_quantum_push_during_dispatch_stays_ordered() {
        let mut w = TimerWheel::new();
        // Two events in one 8.192ns quantum.
        w.push(SimTime::from_ps(1000), 0, 0);
        w.push(SimTime::from_ps(3000), 1, 1);
        let (t, _, v) = w.pop().unwrap();
        assert_eq!((t.as_ps(), v), (1000, 0));
        // Dispatch handler schedules a zero-delay event between the two.
        w.push(SimTime::from_ps(2000), 2, 2);
        assert_eq!(w.pop().unwrap().2, 2);
        assert_eq!(w.pop().unwrap().2, 1);
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        // Deterministic LCG-driven schedule; the proptest version lives
        // in tests/wheel_order.rs, this is the cheap smoke variant.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut w = TimerWheel::new();
        let mut reference = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..10_000 {
            if rng() % 3 != 0 || w.is_empty() {
                // Mix of near, far, tie-on-now offsets.
                let off = match rng() % 4 {
                    0 => rng() % 100,
                    1 => rng() % 100_000,
                    2 => rng() % 10_000_000_000,
                    _ => 0,
                };
                let t = now + off;
                w.push(SimTime::from_ps(t), seq, seq as u32);
                reference.push(std::cmp::Reverse((t, seq)));
                seq += 1;
            } else {
                let (t, s, _) = w.pop().unwrap();
                let std::cmp::Reverse((rt, rs)) = reference.pop().unwrap();
                assert_eq!((t.as_ps(), s), (rt, rs));
                now = t.as_ps();
            }
        }
        while let Some((t, s, _)) = w.pop() {
            let std::cmp::Reverse((rt, rs)) = reference.pop().unwrap();
            assert_eq!((t.as_ps(), s), (rt, rs));
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut w = TimerWheel::new();
        assert!(w.is_empty());
        for i in 0..100 {
            w.push(SimTime::from_ps(i * 1_000_000), i, ());
        }
        assert_eq!(w.len(), 100);
        for _ in 0..40 {
            w.pop();
        }
        assert_eq!(w.len(), 60);
        assert_eq!(w.peek().map(|(t, _)| t.as_ps()), Some(40_000_000));
        assert_eq!(w.len(), 60, "peek must not consume");
    }
}
