//! Point-to-point link models.

use osnt_time::SimDuration;

/// A unidirectional link's physical parameters. [`crate::SimBuilder::connect`]
/// installs one in each direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay (cable + PHY).
    pub propagation: SimDuration,
}

impl LinkSpec {
    /// A 10GBASE-R link with a 2 m direct-attach cable (~10 ns of
    /// propagation: 5 ns/m in copper plus PHY latency).
    pub fn ten_gig() -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000_000,
            propagation: SimDuration::from_ns(10),
        }
    }

    /// A 1GbE link (for control-plane channels).
    pub fn one_gig() -> Self {
        LinkSpec {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::from_ns(50),
        }
    }

    /// Override the propagation delay.
    pub fn with_propagation(mut self, d: SimDuration) -> Self {
        self.propagation = d;
        self
    }

    /// Time to clock `bytes` onto the wire at this line rate. Exact
    /// integer arithmetic (10 Gb/s → 800 ps per byte).
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        let bits = bytes as u64 * 8;
        // u64 arithmetic covers every realistic frame (overflow needs
        // > ~280 MB of payload); the u128 fallback keeps the result
        // exact beyond that.
        match bits.checked_mul(1_000_000_000_000) {
            Some(fs) => SimDuration::from_ps(fs / self.bandwidth_bps),
            None => {
                let ps = bits as u128 * 1_000_000_000_000u128 / self.bandwidth_bps as u128;
                SimDuration::from_ps(ps as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gig_byte_is_800_ps() {
        let l = LinkSpec::ten_gig();
        assert_eq!(l.serialization(1).as_ps(), 800);
        // The canonical 64B frame incl. overheads: 84 bytes = 67.2 ns.
        assert_eq!(l.serialization(84).as_ps(), 67_200);
        // 1538 bytes (1518 + 20) = 1230.4 ns.
        assert_eq!(l.serialization(1538).as_ps(), 1_230_400);
    }

    #[test]
    fn one_gig_is_ten_times_slower() {
        let g1 = LinkSpec::one_gig();
        let g10 = LinkSpec::ten_gig();
        assert_eq!(
            g1.serialization(100).as_ps(),
            10 * g10.serialization(100).as_ps()
        );
    }

    #[test]
    fn zero_bytes_take_zero_time() {
        assert_eq!(LinkSpec::ten_gig().serialization(0), SimDuration::ZERO);
    }
}
