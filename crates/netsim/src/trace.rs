//! Simulation-wide trace hooks (debugging and verification aid).

use crate::component::ComponentId;
use osnt_time::SimTime;

/// An observable kernel event, reported to registered [`Tracer`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame was accepted into an output MAC.
    TxAccepted {
        /// Transmitting component.
        src: ComponentId,
        /// Output port index.
        port: usize,
        /// Conventional frame length (incl. FCS).
        frame_len: usize,
    },
    /// A frame was dropped at an output buffer.
    TxDropped {
        /// Transmitting component.
        src: ComponentId,
        /// Output port index.
        port: usize,
        /// Conventional frame length.
        frame_len: usize,
    },
    /// A frame finished arriving at an input port.
    Delivered {
        /// Receiving component.
        dst: ComponentId,
        /// Input port index.
        port: usize,
        /// Conventional frame length.
        frame_len: usize,
    },
}

/// Observer of kernel events. Register with
/// [`crate::SimBuilder::add_tracer`].
pub trait Tracer {
    /// Called for every kernel event with the current simulated time.
    fn trace(&mut self, time: SimTime, event: &TraceEvent);
}

/// A tracer that records every event (tests, debugging).
#[derive(Debug, Default)]
pub struct VecTracer {
    /// Recorded (time, event) pairs.
    pub events: Vec<(SimTime, TraceEvent)>,
}

impl Tracer for VecTracer {
    fn trace(&mut self, time: SimTime, event: &TraceEvent) {
        self.events.push((time, *event));
    }
}

/// A tracer that only counts events (cheap sanity checking).
#[derive(Debug, Default)]
pub struct CountingTracer {
    /// Frames accepted into MACs.
    pub tx_accepted: u64,
    /// Frames dropped at output buffers.
    pub tx_dropped: u64,
    /// Frames delivered.
    pub delivered: u64,
}

impl Tracer for CountingTracer {
    fn trace(&mut self, _time: SimTime, event: &TraceEvent) {
        match event {
            TraceEvent::TxAccepted { .. } => self.tx_accepted += 1,
            TraceEvent::TxDropped { .. } => self.tx_dropped += 1,
            TraceEvent::Delivered { .. } => self.delivered += 1,
        }
    }
}
