//! The component model: everything attached to the simulated network.

use crate::kernel::Kernel;
use osnt_packet::Packet;
use osnt_time::SimTime;

/// Identifies a component within one simulation. Handed out by
/// [`crate::SimBuilder::add_component`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) usize);

impl ComponentId {
    /// The raw index (stable for the life of the simulation).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A device attached to the simulated network: a tester port pipeline, a
/// switch, a host, a controller.
///
/// Handlers receive `&mut Kernel` for scheduling and transmission and must
/// not block; all waiting is expressed by scheduling timers. The
/// simulation is single-threaded, so handlers run to completion — the
/// cooperative-scheduling discipline of an async reactor, with the event
/// queue as the reactor.
pub trait Component {
    /// Called once when the simulation starts (time zero), before any
    /// other event. Use it to arm initial timers or send first frames.
    fn on_start(&mut self, kernel: &mut Kernel, me: ComponentId) {
        let _ = (kernel, me);
    }

    /// A frame fully arrived on `port` (the instant its last bit was
    /// received — where OSNT hardware takes its RX timestamp).
    fn on_packet(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, packet: Packet);

    /// A timer armed with [`Kernel::schedule_timer`] fired. `tag` is the
    /// caller-chosen discriminator.
    fn on_timer(&mut self, kernel: &mut Kernel, me: ComponentId, tag: u64) {
        let _ = (kernel, me, tag);
    }

    /// Opt into burst delivery: when true, the dispatch loop hands
    /// consecutive same-port arrivals to [`Component::on_packet_batch`]
    /// in one call instead of one [`Component::on_packet`] each.
    ///
    /// Intended for pure *sinks* (the monitor capture path): the kernel
    /// pops the whole run of back-to-back `Deliver` events up front, so
    /// during the batch handler `Kernel::now()` reads the *batch-end*
    /// instant — per-frame arrival instants come with the batch.
    /// Components that transmit or schedule timers from their packet
    /// handler should not opt in (their scheduling would see batch-end
    /// time rather than each frame's arrival time).
    fn wants_packet_batches(&self) -> bool {
        false
    }

    /// A burst of frames arrived on `port`; `batch` holds each frame
    /// with the instant its last bit was received, in arrival order.
    /// Only called when [`Component::wants_packet_batches`] is true.
    /// The default implementation replays the scalar path one frame at
    /// a time, so opting in without overriding this changes nothing.
    fn on_packet_batch(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        port: usize,
        batch: &mut Vec<(SimTime, Packet)>,
    ) {
        for (_, packet) in batch.drain(..) {
            self.on_packet(kernel, me, port, packet);
        }
    }

    /// Human-readable name for traces and panics.
    fn name(&self) -> &str {
        "component"
    }
}
