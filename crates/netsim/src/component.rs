//! The component model: everything attached to the simulated network.

use crate::burst::PacketBurst;
use crate::kernel::Kernel;
use osnt_packet::Packet;
use osnt_time::{SimDuration, SimTime};

/// Identifies a component within one simulation. Handed out by
/// [`crate::SimBuilder::add_component`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) usize);

impl ComponentId {
    /// The raw index (stable for the life of the simulation).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A device attached to the simulated network: a tester port pipeline, a
/// switch, a host, a controller.
///
/// Handlers receive `&mut Kernel` for scheduling and transmission and must
/// not block; all waiting is expressed by scheduling timers. The
/// simulation is single-threaded, so handlers run to completion — the
/// cooperative-scheduling discipline of an async reactor, with the event
/// queue as the reactor.
pub trait Component {
    /// Called once when the simulation starts (time zero), before any
    /// other event. Use it to arm initial timers or send first frames.
    fn on_start(&mut self, kernel: &mut Kernel, me: ComponentId) {
        let _ = (kernel, me);
    }

    /// A frame fully arrived on `port` (the instant its last bit was
    /// received — where OSNT hardware takes its RX timestamp).
    fn on_packet(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, packet: Packet);

    /// A timer armed with [`Kernel::schedule_timer`] fired. `tag` is the
    /// caller-chosen discriminator.
    fn on_timer(&mut self, kernel: &mut Kernel, me: ComponentId, tag: u64) {
        let _ = (kernel, me, tag);
    }

    /// Opt into burst delivery: when true, the dispatch loop hands
    /// consecutive same-port arrivals to [`Component::on_packet_batch`]
    /// in one call instead of one [`Component::on_packet`] each.
    ///
    /// Intended for pure *sinks* (the monitor capture path): the kernel
    /// pops the whole run of back-to-back `Deliver` events up front, so
    /// during the batch handler `Kernel::now()` reads the *batch-end*
    /// instant — per-frame arrival instants come with the batch.
    /// Components that transmit or schedule timers from their packet
    /// handler should not opt in (their scheduling would see batch-end
    /// time rather than each frame's arrival time).
    fn wants_packet_batches(&self) -> bool {
        false
    }

    /// Per-port refinement of [`Component::wants_packet_batches`]:
    /// individual ports can opt out of batching while the rest batch.
    /// A switch uses this to keep its control channel on the exact
    /// scalar path (its handler transmits immediate replies, which need
    /// per-frame `now`) while data ports batch. Defaults to the
    /// component-wide answer.
    fn wants_packet_batches_on(&self, port: usize) -> bool {
        let _ = port;
        self.wants_packet_batches()
    }

    /// Bound how far past a batch's first arrival the dispatch loop may
    /// coalesce, making batching sound for components that *schedule*
    /// from their packet handler.
    ///
    /// A handler processing member `j` (arrival `t_j`) may schedule
    /// events no earlier than `t_j + D`, where `D` is the component's
    /// minimum side-effect delay (e.g. a switch fabric's lookup
    /// latency). If the coalescing window is capped at `t_0 + w` with
    /// `w <= D`, two things follow: every event the batch handler
    /// schedules lands at or after the batch-end `now` (no retroactive
    /// scheduling), and the scalar run would not have fired any of this
    /// handler's own events *inside* the window either — so the batch
    /// contains exactly the deliveries the scalar run would have
    /// processed back-to-back, and total order stays byte-identical.
    ///
    /// Return `Some(w)` with `w` no greater than the component's
    /// minimum side-effect delay. `None` (the default) means unbounded,
    /// which is only sound for components that schedule nothing from
    /// their packet handler (pure sinks like the monitor).
    fn batch_window(&self) -> Option<SimDuration> {
        None
    }

    /// A burst of frames arrived on `port`; `batch` holds each frame
    /// with the instant its last bit was received, in arrival order.
    /// Only called when [`Component::wants_packet_batches`] is true.
    /// The default implementation replays the scalar path one frame at
    /// a time, so opting in without overriding this changes nothing.
    fn on_packet_batch(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        port: usize,
        batch: &mut Vec<(SimTime, Packet)>,
    ) {
        for (_, packet) in batch.drain(..) {
            self.on_packet(kernel, me, port, packet);
        }
    }

    /// Opt into burst *forwarding*: when true, a [`crate::PacketBurst`]
    /// arriving on the wire is handed to [`Component::on_burst`] whole —
    /// one handler call, one queue entry in and (via
    /// [`Kernel::transmit_burst`]) one queue entry out — instead of
    /// being split back into per-member [`Component::on_packet`] calls.
    ///
    /// Intended for stateless-per-frame *forwarders* (impairment stages,
    /// fault models, switch fabrics). The contract differs from the
    /// scalar path in one way: during [`Component::on_burst`],
    /// [`Kernel::now`] reads the **first** member's arrival instant for
    /// the whole call. Handlers must therefore derive timing from each
    /// member's own arrival time — re-transmit with
    /// [`Kernel::transmit_burst`] / [`Kernel::transmit_at`] and schedule
    /// with [`Kernel::schedule_timer_at`] — never from `now()` offsets.
    /// Components whose observable behaviour depends on the *global*
    /// event interleaving between two member arrivals (not just on the
    /// members themselves) must not opt in; the default scalar dispatch
    /// replays exact total order for them.
    fn wants_bursts(&self) -> bool {
        false
    }

    /// A burst of frames arrived on `port` (only called when
    /// [`Component::wants_bursts`] is true). Members carry their exact
    /// per-frame arrival instants in ascending order; `kernel.now()`
    /// stays at the first member's arrival for the whole call (see
    /// [`Component::wants_bursts`]). The default implementation replays
    /// the scalar path one member at a time.
    fn on_burst(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, burst: PacketBurst) {
        for (_, packet) in burst {
            self.on_packet(kernel, me, port, packet);
        }
    }

    /// Human-readable name for traces and panics.
    fn name(&self) -> &str {
        "component"
    }
}
