//! Conservative parallel (sharded) execution of the event kernel.
//!
//! The component graph is partitioned into *shards*; each shard runs
//! the ordinary single-threaded [`Kernel`] + timer-wheel dispatch loop
//! on its own worker thread. Shards synchronise with a conservative
//! time-window barrier in the CMB (Chandy–Misra–Bryant) tradition:
//! each round, every shard publishes the time of its earliest pending
//! event — which is also the earliest instant it could possibly hand
//! a frame to a cross-shard link — and every shard derives its window
//! bound from its **incoming influence channels only**:
//!
//! ```text
//! bound(s) = min over shards p that can influence s of
//!                published_min(p) + D(p→s)
//! ```
//!
//! where `D(p→s)` is the minimum *path* delay from a component on `p`
//! to a component on `s` — the all-pairs shortest path (computed once
//! at build time) over the graph whose edge `p→q` is the minimum
//! propagation delay of the cross-shard links from `p` to `q`. Any
//! event chain that eventually lands on `s` starts at some event
//! currently pending on some shard `p` (at time `≥ published_min(p)`),
//! and every boundary it crosses — including hops through relay shards
//! that are idle *right now* — adds at least that channel's lookahead,
//! so the chain cannot deliver to `s` before `published_min(p) +
//! D(p→s)`. The diagonal `D(s→s)` is the minimum cycle through `s`
//! (a shard's own sends can come back to it), not zero. `s` may
//! therefore dispatch every event strictly below `bound(s)` without
//! ever receiving an event that belongs inside the window it is
//! executing. Because the bound starts from each *peer's next event*
//! rather than the global minimum, windows automatically jump over
//! provably empty regions: an idle peer (published min = ∞, or far in
//! the future) contributes a huge bound, and a shard whose only busy
//! influencers are far away executes thousands of local events in one
//! round instead of marching in global-minimum-lookahead steps. See
//! [`WindowPolicy`] for the legacy scalar-lookahead mode kept as a
//! verification reference, and DESIGN.md §5k for the full safety
//! argument.
//!
//! Cross-shard events travel over bounded SPSC rings and are folded
//! into the destination wheel at the next window boundary. Per-shard
//! [`ShardStats`] counters (windows, barrier waits, ring traffic) are
//! deterministic — functions of the topology and traffic only, never
//! of host scheduling — and feed both the `e17_windows` bench gate and
//! the chaos auditor's window-accounting ledger.
//!
//! # Determinism
//!
//! The kernel's total event order is ascending `(time, event_key)`
//! where the key packs `(source component, per-source sequence)` — see
//! [`crate::kernel::event_key`]. The key is computed from the
//! *source's own* scheduling history only, so a sharded run produces
//! byte-identical keys to the single-threaded run, and each shard's
//! wheel dispatches its local restriction of the same global order.
//! Per-component state (ports, counters, the component itself) is only
//! ever touched by the owning shard, so every handler observes exactly
//! the state it would have observed single-threaded. Channel arrival
//! order is irrelevant: entries are keyed and the wheel re-sorts them.
//! Window *boundaries* affect only how the same totally ordered event
//! sequence is sliced across rounds, never which events run or in what
//! order — which is why both window policies (and any shard count)
//! produce byte-identical results.
//!
//! # Safety model
//!
//! Components are plain `Box<dyn Component>` — deliberately **not**
//! `Send`-bounded, because the single-threaded simulator's idiom is
//! `Rc<RefCell<...>>` result sharing. [`ShardSlot`] asserts `Send`
//! under a confinement contract documented on the type; the practical
//! rules for users are on [`crate::SimBuilder::build_sharded`].

use crate::component::{Component, ComponentId};
use crate::engine::dispatch_events;
use crate::event::EventKind;
use crate::kernel::Kernel;
use crate::stats::{PortCounters, ShardStats};
use crate::sync::{SpinBarrier, SpscRing};
use osnt_error::OsntError;
use osnt_packet::pool::PacketPool;
use osnt_packet::SendPacket;
use osnt_time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Capacity of each cross-shard ring, in events. Overflow spills to a
/// mutex-protected vector (correct, slower) — see [`SpscRing`].
const RING_CAPACITY: usize = 1024;

/// Sentinel for "no pending events" in the published per-shard minima,
/// and for "no channel" in the lookahead matrix.
const IDLE: u64 = u64::MAX;

/// How the executive sizes each shard's conservative window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowPolicy {
    /// Per-incoming-channel lookahead bounds with next-event window
    /// extension (the module-level algorithm). The default.
    #[default]
    Adaptive,
    /// The pre-adaptive reference: every shard bounds every window by
    /// `global_min + L` where `L` is the single minimum lookahead over
    /// *all* cross-shard links. Kept selectable (API or
    /// `OSNT_WINDOW_POLICY=legacy`) because it is the natural
    /// differential-testing oracle for the adaptive policy — both must
    /// produce byte-identical simulation results, differing only in
    /// `ShardStats` — and the baseline the `e17_windows` window-count
    /// gate measures against.
    GlobalLookahead,
}

impl WindowPolicy {
    /// Resolve the startup default: `OSNT_WINDOW_POLICY` when set
    /// (`adaptive`, or `legacy`/`global` for [`GlobalLookahead`]),
    /// adaptive otherwise.
    fn from_env() -> WindowPolicy {
        match std::env::var("OSNT_WINDOW_POLICY").ok().as_deref() {
            None | Some("adaptive") => WindowPolicy::Adaptive,
            Some("legacy") | Some("global") => WindowPolicy::GlobalLookahead,
            Some(other) => panic!(
                "OSNT_WINDOW_POLICY={other:?} is not a window policy \
                 (expected \"adaptive\", \"legacy\" or \"global\")"
            ),
        }
    }
}

/// A thread-portable event: what crosses a shard boundary. `Deliver`
/// flattens its [`osnt_packet::Packet`] into a [`SendPacket`] (stealing
/// the buffer when uniquely owned) because pool-backed packets hold
/// `Rc`s into their shard-local pool.
pub(crate) enum CrossKind {
    Deliver {
        dst: ComponentId,
        port: usize,
        packet: SendPacket,
    },
    /// A whole [`crate::PacketBurst`] crossing in one ring slot: member
    /// arrival times in ps, keys reconstructed as `entry.key + i`.
    DeliverBurst {
        dst: ComponentId,
        port: usize,
        members: Vec<(u64, SendPacket)>,
    },
    TxDone {
        src: ComponentId,
        port: usize,
        frame_len: usize,
    },
    Timer {
        target: ComponentId,
        tag: u64,
    },
}

/// A keyed, timestamped cross-shard event in transit.
pub(crate) struct CrossEntry {
    time_ps: u64,
    key: u64,
    kind: CrossKind,
}

impl CrossEntry {
    fn from_event(time: SimTime, key: u64, kind: EventKind) -> Self {
        let kind = match kind {
            EventKind::Deliver { dst, port, packet } => CrossKind::Deliver {
                dst,
                port,
                packet: packet.into_send(),
            },
            EventKind::DeliverBurst { dst, port, burst } => CrossKind::DeliverBurst {
                dst,
                port,
                members: burst
                    .into_members()
                    .map(|(t, p)| (t.as_ps(), p.into_send()))
                    .collect(),
            },
            EventKind::TxDone {
                src,
                port,
                frame_len,
            } => CrossKind::TxDone {
                src,
                port,
                frame_len,
            },
            EventKind::Timer { target, tag } => CrossKind::Timer { target, tag },
        };
        CrossEntry {
            time_ps: time.as_ps(),
            key,
            kind,
        }
    }

    /// Reconstruct the kernel event on the receiving shard. Packet
    /// buffers are rehomed into `pool` — the receiving shard's local
    /// pool — so the eventual retirement of a frame that crossed a
    /// shard boundary recycles shard-locally instead of handing the
    /// buffer back to whichever core's allocator arena produced it.
    fn into_event(self, pool: &PacketPool) -> (SimTime, u64, EventKind) {
        let kind = match self.kind {
            CrossKind::Deliver { dst, port, packet } => EventKind::Deliver {
                dst,
                port,
                packet: packet.into_packet_pooled(pool),
            },
            CrossKind::DeliverBurst { dst, port, members } => {
                let mut burst = Box::new(crate::burst::PacketBurst::new(self.key));
                for (t, p) in members {
                    burst.push(SimTime::from_ps(t), p.into_packet_pooled(pool));
                }
                EventKind::DeliverBurst { dst, port, burst }
            }
            CrossKind::TxDone {
                src,
                port,
                frame_len,
            } => EventKind::TxDone {
                src,
                port,
                frame_len,
            },
            CrossKind::Timer { target, tag } => EventKind::Timer { target, tag },
        };
        (SimTime::from_ps(self.time_ps), self.key, kind)
    }
}

/// Routes events whose target lives on another shard. Installed into
/// each shard's [`Kernel`]; `None` on single-threaded simulations.
pub(crate) struct ShardRouter {
    shard_of: Arc<Vec<usize>>,
    my_shard: usize,
    /// `outboxes[s]` is this shard's producer end of the ring to shard
    /// `s`; `None` at `s == my_shard`.
    outboxes: Vec<Option<Arc<SpscRing<CrossEntry>>>>,
}

impl ShardRouter {
    #[inline]
    pub(crate) fn is_remote(&self, c: ComponentId) -> bool {
        self.shard_of[c.index()] != self.my_shard
    }

    pub(crate) fn send(&mut self, time: SimTime, key: u64, kind: EventKind) {
        let dst_shard = self.shard_of[kind.target().index()];
        debug_assert_ne!(dst_shard, self.my_shard, "send() called for a local event");
        self.outboxes[dst_shard]
            .as_ref()
            .expect("outbox exists for every remote shard")
            .push(CrossEntry::from_event(time, key, kind));
    }
}

/// Assignment of every component to a shard.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    assign: Vec<usize>,
    n_shards: usize,
}

impl ShardPlan {
    /// A plan over `n_components` components and `n_shards` shards,
    /// with every component initially on shard 0.
    pub fn new(n_components: usize, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        ShardPlan {
            assign: vec![0; n_components],
            n_shards,
        }
    }

    /// Put `c` on `shard`.
    pub fn assign(&mut self, c: ComponentId, shard: usize) {
        assert!(shard < self.n_shards, "shard {shard} out of range");
        self.assign[c.index()] = shard;
    }

    /// The shard `c` is assigned to.
    pub fn shard_of(&self, c: ComponentId) -> usize {
        self.assign[c.index()]
    }

    /// Number of shards (some may end up empty).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Partition `n_components` into at most `n_shards` shards by
    /// wire-connectivity: components joined (transitively) by a link
    /// stay on one shard, and the resulting connected groups are packed
    /// largest-first onto the least-loaded shard. Deterministic for a
    /// given topology. `edges` lists `(a, b)` component pairs that
    /// share a link.
    pub fn auto(
        n_components: usize,
        n_shards: usize,
        edges: &[(ComponentId, ComponentId)],
    ) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        // Union-find over component ids.
        let mut parent: Vec<usize> = (0..n_components).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(a, b) in edges {
            let (ra, rb) = (find(&mut parent, a.index()), find(&mut parent, b.index()));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        // Collect groups keyed by root, ordered by first-member id.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for c in 0..n_components {
            let root = find(&mut parent, c);
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, members)) => members.push(c),
                None => groups.push((root, vec![c])),
            }
        }
        // Largest group first (ties: lowest root id) onto the
        // least-loaded shard (ties: lowest shard id).
        groups.sort_by(|(ra, ma), (rb, mb)| mb.len().cmp(&ma.len()).then(ra.cmp(rb)));
        let mut plan = ShardPlan::new(n_components, n_shards);
        let mut load = vec![0usize; n_shards];
        for (_, members) in groups {
            let shard = (0..n_shards)
                .min_by_key(|&s| (load[s], s))
                .expect(">=1 shard");
            load[shard] += members.len();
            for m in members {
                plan.assign[m] = shard;
            }
        }
        plan
    }
}

/// One shard's worth of simulation state: a full [`Kernel`] replica
/// (only the rows of components this shard owns are ever mutated) plus
/// the owned components, the consumer ends of the inbound rings, a
/// shard-local packet pool and the shard's deterministic counters.
pub(crate) struct ShardSlot {
    pub(crate) kernel: Kernel,
    /// Indexed by global component id; `Some` only for owned ids.
    pub(crate) components: Vec<Option<Box<dyn Component>>>,
    /// `inboxes[p]` is the consumer end of the ring from shard `p`.
    inboxes: Vec<Option<Arc<SpscRing<CrossEntry>>>>,
    /// Drain scratch buffer, reused across windows.
    scratch: Vec<CrossEntry>,
    /// Shard-local recycling pool: every packet buffer that crosses
    /// into this shard is rehomed here, so frame retirement never
    /// touches another core's allocator state.
    pool: PacketPool,
    /// Window/barrier counters (ring counters live on the rings and are
    /// merged in by [`ShardedSim::shard_stats`]).
    stats: ShardStats,
}

// SAFETY: `ShardSlot` contains non-`Send` state (`Box<dyn Component>`
// holding `Rc` handles, pool-backed packets queued in the wheel, the
// shard-local `PacketPool`). It is sound to move a `&mut ShardSlot` to
// a worker thread because the executive enforces *confinement with
// hand-off*:
//
// 1. Each slot is borrowed by exactly one worker per run; workers are
//    scoped threads, so the main thread is blocked until every worker
//    has joined. Spawn and join provide the happens-before edges that
//    make the alternating (main ↔ worker) access sequential.
// 2. No `Rc` graph spans two slots: the partitioning contract (see
//    `SimBuilder::build_sharded`) requires components sharing non-Send
//    state to be co-sharded, cross-shard packets are flattened to
//    owned buffers (`SendPacket`) before entering a ring, and the
//    shard-local pool is created inside the slot and never handed out,
//    so its `Rc`/`Weak` graph (pool ↔ packets homed into it) is
//    confined to this slot by construction.
// 3. Harness-side `Rc` aliases (result vectors etc.) are only touched
//    by the main thread between runs, never during one — the same
//    discipline `thread::scope` users apply to captured `&mut`.
unsafe impl Send for ShardSlot {}

impl ShardSlot {
    /// Fold every event waiting in the inbound rings into the wheel.
    /// Called at a window barrier, when all producers are parked.
    fn drain_inboxes(&mut self) {
        for ring in self.inboxes.iter().flatten() {
            ring.drain_into(&mut self.scratch);
        }
        for entry in self.scratch.drain(..) {
            let (time, key, kind) = entry.into_event(&self.pool);
            self.kernel.inject(time, key, kind);
        }
    }
}

/// State shared by all workers of one run.
struct RunShared {
    barrier: SpinBarrier,
    /// Per-shard earliest pending event time (ps), [`IDLE`] when none.
    /// This doubles as the shard's earliest-possible-cross-shard-send
    /// floor: a shard cannot transmit anything before it dispatches an
    /// event, and it cannot dispatch before its earliest pending event.
    mins: Vec<AtomicU64>,
    /// Cumulative events dispatched across shards this run.
    dispatched: AtomicU64,
    /// Coordinated abort decision. Worker 0 samples the supervision
    /// probe's flag once per window (between barriers, while its peers
    /// are quiescent) and publishes it here, so every worker reads the
    /// *same* decision after the next barrier and the loop stays in
    /// lockstep — workers sampling the probe directly could diverge on
    /// a flag raised mid-read and deadlock the barrier.
    abort: std::sync::atomic::AtomicBool,
}

/// Deterministic xorshift for the yield-stress harness (no external
/// RNG dependency; quality is irrelevant, divergence is the point).
struct YieldStress(u64);

impl YieldStress {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn jitter(&mut self) {
        for _ in 0..(self.next() % 4) {
            std::thread::yield_now();
        }
    }
}

/// Poisons the barrier if the worker unwinds, so peers stop waiting.
struct PoisonGuard<'a> {
    barrier: &'a SpinBarrier,
    armed: bool,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.barrier.poison();
        }
    }
}

/// Window-sizing inputs shared by all workers of a run (read-only).
struct WindowConfig {
    policy: WindowPolicy,
    /// Global minimum cross-shard lookahead (legacy policy), ps.
    global_lookahead_ps: Option<u64>,
    /// `matrix[p * n + s]` = minimum influence-path delay `D(p→s)` in
    /// ps ([`IDLE`] when no path exists); the diagonal holds the
    /// minimum cycle through each shard. See the module docs.
    matrix: Arc<Vec<u64>>,
    n_shards: usize,
}

impl WindowConfig {
    /// This shard's window end (inclusive) for a round with published
    /// minima `mins`, capped at `limit_ps`. `m` is the global minimum.
    ///
    /// Adaptive: `min over incoming channels p→my of mins[p] + L[p][my]`,
    /// exclusive, so subtract one — the module-level bound. A shard
    /// with no incoming channels is never sent anything and may run to
    /// the horizon. Legacy: the historical `[m, m + L)` global window.
    fn window_end(&self, my_shard: usize, mins: &[u64], m: u64, limit_ps: u64) -> u64 {
        match self.policy {
            WindowPolicy::GlobalLookahead => match self.global_lookahead_ps {
                Some(l) => limit_ps.min(m.saturating_add(l).saturating_sub(1)),
                None => limit_ps,
            },
            WindowPolicy::Adaptive => {
                let n = self.n_shards;
                let mut bound = IDLE;
                // All shards, *including* our own: `matrix[my][my]` is
                // the minimum cycle through this shard, bounding how
                // soon our own sends can boomerang back to us.
                for (p, &peer_min) in mins.iter().enumerate() {
                    let d = self.matrix[p * n + my_shard];
                    if d == IDLE {
                        continue;
                    }
                    bound = bound.min(peer_min.saturating_add(d));
                }
                limit_ps.min(bound.saturating_sub(1))
            }
        }
    }
}

/// The per-worker window loop. All workers compute the identical
/// global-minimum decision from the shared minima, so control flow
/// stays in lockstep without a coordinator thread; each worker's
/// *window end* is its own (deterministic) per-channel bound.
fn run_windows(
    slot: &mut ShardSlot,
    my_shard: usize,
    shared: &RunShared,
    windows: &WindowConfig,
    limit_ps: u64,
    max_events: Option<u64>,
    stress_seed: Option<u64>,
) {
    let mut guard = PoisonGuard {
        barrier: &shared.barrier,
        armed: true,
    };
    let mut sense = false;
    let mut stress = stress_seed.map(|s| {
        // Distinct, nonzero stream per shard.
        YieldStress(s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (my_shard as u64 + 1))
    });
    // Reused snapshot of the published minima (read once per round;
    // the adaptive bound needs the individual values, not just the
    // minimum).
    let mut mins = vec![IDLE; windows.n_shards];
    loop {
        // Window boundary A: every worker has finished the previous
        // window, so every ring's producer is quiescent.
        slot.stats.barrier_waits += 1;
        if shared.barrier.wait(&mut sense).is_err() {
            std::panic::panic_any("shard worker aborted: a peer worker panicked");
        }
        if let Some(st) = stress.as_mut() {
            st.jitter();
        }
        slot.drain_inboxes();
        shared.mins[my_shard].store(slot.kernel.peek_next_ps().unwrap_or(IDLE), Ordering::SeqCst);
        if my_shard == 0 {
            let aborted = slot
                .kernel
                .progress
                .as_ref()
                .is_some_and(|p| p.abort_requested());
            shared.abort.store(aborted, Ordering::SeqCst);
        }
        // Window boundary B: every minimum (and the abort decision) is
        // published. Between here and the next boundary A no worker
        // re-publishes, so all read the same values and take the same
        // branch.
        slot.stats.barrier_waits += 1;
        if shared.barrier.wait(&mut sense).is_err() {
            std::panic::panic_any("shard worker aborted: a peer worker panicked");
        }
        if shared.abort.load(Ordering::SeqCst) {
            // Supervised abort: leave the clock where it stopped so the
            // probe's last_progress stays honest.
            guard.armed = false;
            return;
        }
        for (p, v) in mins.iter_mut().enumerate() {
            *v = shared.mins[p].load(Ordering::SeqCst);
        }
        let m = mins.iter().copied().min().expect(">=1 shard");
        if m == IDLE || m > limit_ps {
            break;
        }
        // Dispatch every event in [now, end] — this shard's
        // conservative window. The bound is strictly below every
        // possible cross-shard arrival (see `WindowConfig::window_end`
        // and DESIGN.md §5k), so nothing that lands later belongs
        // inside it. Progress is guaranteed: the shard owning the
        // global minimum `m` has `end >= m` (every incoming bound is
        // `>= m + lookahead > m`), so `m` strictly advances each round.
        let end_inclusive = windows.window_end(my_shard, &mins, m, limit_ps);
        if mins[my_shard] <= end_inclusive {
            slot.stats.windows_executed += 1;
            let n = dispatch_events(
                &mut slot.kernel,
                &mut slot.components,
                SimTime::from_ps(end_inclusive),
            );
            let total = shared.dispatched.fetch_add(n, Ordering::SeqCst) + n;
            if let Some(cap) = max_events {
                assert!(
                    total <= cap,
                    "simulation did not quiesce within {cap} events"
                );
            }
        } else {
            // Nothing of ours inside the window: an empty round this
            // shard deterministically sits out (counted — the e17 gate
            // and the chaos ledger both consume these).
            slot.stats.windows_skipped += 1;
        }
        if let Some(st) = stress.as_mut() {
            st.jitter();
        }
    }
    slot.kernel.advance_now(SimTime::from_ps(limit_ps));
    guard.armed = false;
}

/// A simulation partitioned across worker threads. Built with
/// [`crate::SimBuilder::build_sharded`]; produces byte-identical
/// per-component state, counters and event streams to [`crate::Sim`]
/// for any shard plan — and for either [`WindowPolicy`].
pub struct ShardedSim {
    slots: Vec<ShardSlot>,
    shard_of: Arc<Vec<usize>>,
    /// Global minimum cross-shard lookahead, ps (legacy window policy;
    /// also the coarse summary [`ShardedSim::lookahead`] reports).
    lookahead_ps: Option<u64>,
    /// Influence matrix `D`, `matrix[p * n + s]` = minimum path delay
    /// p→s in ps ([`IDLE`] where no influence path exists); diagonal =
    /// minimum cycle. See the module docs.
    lookahead_matrix: Arc<Vec<u64>>,
    /// All rings, `rings[producer][consumer]`, kept for the stats
    /// roll-up (workers hold clones of the `Arc`s).
    rings: Vec<Vec<Option<Arc<SpscRing<CrossEntry>>>>>,
    policy: WindowPolicy,
    names: Vec<String>,
    started: bool,
    stress_seed: Option<u64>,
}

impl ShardedSim {
    pub(crate) fn build(
        kernel: Kernel,
        mut components: Vec<Option<Box<dyn Component>>>,
        names: Vec<String>,
        plan: ShardPlan,
    ) -> ShardedSim {
        assert_eq!(
            plan.assign.len(),
            components.len(),
            "shard plan covers a different component count than the builder"
        );
        assert!(
            kernel.pending_events() == 0,
            "build_sharded before scheduling events"
        );
        let n = plan.n_shards;
        let shard_of = Arc::new(plan.assign);

        // Single-hop lookahead: for every ordered shard pair (p, s),
        // the minimum propagation delay over links from a component on
        // `p` to one on `s`. A zero-delay cross link would make some
        // window empty — reject it at build time. The scalar global
        // minimum (the legacy policy's `L`) is the single-hop minimum.
        let mut matrix = vec![IDLE; n * n];
        let mut lookahead_ps: Option<u64> = None;
        for (src, peer, propagation) in kernel.wire_endpoints() {
            let (sp, dp) = (shard_of[src.index()], shard_of[peer.index()]);
            if sp == dp {
                continue;
            }
            let ps = propagation.as_ps();
            assert!(
                ps > 0,
                "link between component {} (shard {}) and {} (shard {}) has zero \
                 propagation delay: cross-shard links need nonzero delay for lookahead",
                src.index(),
                sp,
                peer.index(),
                dp,
            );
            let cell = &mut matrix[sp * n + dp];
            *cell = (*cell).min(ps);
            lookahead_ps = Some(lookahead_ps.map_or(ps, |l| l.min(ps)));
        }
        // Close it into the influence matrix D (all-pairs shortest
        // path, Floyd–Warshall): an event chain can reach `s` from `p`
        // through relay shards, and the safe bound for that chain is
        // the minimum total delay along *any* path, not the direct
        // hop. The diagonal deliberately starts at IDLE (not zero) so
        // D[s][s] comes out as the minimum cycle through `s` — the
        // earliest a shard's own sends can return to it. Shard counts
        // are tiny (≤ core count), so O(n³) here is noise.
        for via in 0..n {
            for p in 0..n {
                let a = matrix[p * n + via];
                if a == IDLE {
                    continue;
                }
                for s in 0..n {
                    let b = matrix[via * n + s];
                    if b == IDLE {
                        continue;
                    }
                    let through = a.saturating_add(b);
                    let cell = &mut matrix[p * n + s];
                    *cell = (*cell).min(through);
                }
            }
        }

        // One SPSC ring per ordered (producer, consumer) shard pair.
        let rings: Vec<Vec<Option<Arc<SpscRing<CrossEntry>>>>> = (0..n)
            .map(|p| {
                (0..n)
                    .map(|c| (p != c).then(|| Arc::new(SpscRing::new(RING_CAPACITY))))
                    .collect()
            })
            .collect();

        let slots = (0..n)
            .map(|s| {
                let mut k = kernel.replicate_for_shard();
                k.router = Some(ShardRouter {
                    shard_of: shard_of.clone(),
                    my_shard: s,
                    outboxes: rings[s].clone(),
                });
                let comps = components
                    .iter_mut()
                    .enumerate()
                    .map(|(id, c)| if shard_of[id] == s { c.take() } else { None })
                    .collect();
                ShardSlot {
                    kernel: k,
                    components: comps,
                    inboxes: (0..n).map(|p| rings[p][s].clone()).collect(),
                    scratch: Vec::new(),
                    pool: PacketPool::new(),
                    stats: ShardStats::default(),
                }
            })
            .collect();

        let stress_seed = std::env::var("OSNT_SHARD_STRESS")
            .ok()
            .map(|v| v.parse::<u64>().unwrap_or(1).max(1));

        ShardedSim {
            slots,
            shard_of,
            lookahead_ps,
            lookahead_matrix: Arc::new(matrix),
            rings,
            policy: WindowPolicy::from_env(),
            names,
            started: false,
            stress_seed,
        }
    }

    /// Number of shards (worker threads used per run).
    pub fn n_shards(&self) -> usize {
        self.slots.len()
    }

    /// The minimum cross-shard lookahead over the whole topology —
    /// the legacy policy's scalar window length. `None` when no link
    /// crosses a shard boundary (the whole horizon is one window).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead_ps.map(SimDuration::from_ps)
    }

    /// The influence lookahead from shard `from` to shard `to`: the
    /// minimum total propagation delay over any cross-shard path
    /// `from`→…→`to` (with `from == to` the minimum cycle), `None`
    /// when no such path exists — `from` can never influence `to`, so
    /// it never bounds `to`'s window.
    pub fn lookahead_between(&self, from: usize, to: usize) -> Option<SimDuration> {
        let n = self.slots.len();
        assert!(from < n && to < n, "shard index out of range");
        let ps = self.lookahead_matrix[from * n + to];
        (ps != IDLE).then(|| SimDuration::from_ps(ps))
    }

    /// The window policy runs execute under.
    pub fn window_policy(&self) -> WindowPolicy {
        self.policy
    }

    /// Override the window policy (defaults to [`WindowPolicy::Adaptive`]
    /// or the `OSNT_WINDOW_POLICY` environment override). Either policy
    /// yields byte-identical simulation results; they differ only in
    /// how many rounds/windows the executive needs ([`ShardStats`]).
    pub fn set_window_policy(&mut self, policy: WindowPolicy) {
        self.policy = policy;
    }

    /// Current simulated time (all shards agree between runs).
    pub fn now(&self) -> SimTime {
        self.slots[0].kernel.now()
    }

    /// A component's registered name.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.names[id.index()]
    }

    /// Counter snapshot for (`comp`, `port`), read from the owning
    /// shard (the only one that ever updates it).
    pub fn counters(&self, comp: ComponentId, port: usize) -> PortCounters {
        self.slots[self.shard_of[comp.index()]]
            .kernel
            .counters(comp, port)
    }

    /// Set (or clear) a port's output-buffer capacity — see
    /// [`Kernel::set_tx_buffer`]. Routed to the owning shard.
    pub fn set_tx_buffer(&mut self, comp: ComponentId, port: usize, bytes: Option<usize>) {
        self.slots[self.shard_of[comp.index()]]
            .kernel
            .set_tx_buffer(comp, port, bytes);
    }

    /// Total events dispatched across all shards.
    pub fn events_dispatched(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.kernel.events_dispatched())
            .sum()
    }

    /// Per-shard executive counters, cumulative over every run so far
    /// (window/barrier counts from the worker loops, ring traffic from
    /// the rings). Deterministic — see [`ShardStats`] — and therefore
    /// **not** part of any experiment report that is byte-compared
    /// across shard counts: a 4-shard ledger legitimately differs from
    /// a 1-shard one. Read it between runs (never mid-run).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let n = self.slots.len();
        (0..n)
            .map(|s| {
                let mut st = self.slots[s].stats;
                for ring in self.rings[s].iter().flatten() {
                    // Outbound: this shard is the producer.
                    let c = ring.counters();
                    st.ring_pushes += c.pushes;
                    st.spill_events += c.spills;
                }
                for p in 0..n {
                    if let Some(ring) = &self.rings[p][s] {
                        // Inbound: this shard is the consumer.
                        st.ring_drains += ring.counters().ring_drains;
                    }
                }
                st
            })
            .collect()
    }

    /// Events pending across all shards (rings are empty between runs).
    pub fn pending_events(&self) -> usize {
        debug_assert!(
            self.slots
                .iter()
                .all(|s| s.inboxes.iter().flatten().all(|r| r.is_empty())),
            "cross-shard rings must be drained between runs"
        );
        self.slots.iter().map(|s| s.kernel.pending_events()).sum()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Run `on_start` in global component-id order, each on its
        // owning shard's kernel, on this thread (workers not yet
        // spawned). Cross-shard sends from on_start land in rings and
        // are folded in at the first window boundary.
        for id in 0..self.shard_of.len() {
            let slot = &mut self.slots[self.shard_of[id]];
            let cid = ComponentId(id);
            let mut c = slot.components[id].take().expect("component in place");
            c.on_start(&mut slot.kernel, cid);
            slot.components[id] = Some(c);
        }
    }

    /// Attach a supervision probe to every shard's kernel: workers
    /// publish their simulated-time high-water mark into it, and a
    /// raised abort flag stops the run at the next coordinated window
    /// boundary. Attach before the first `run_*` call.
    pub fn attach_progress(&mut self, probe: Arc<osnt_time::ProgressProbe>) {
        for slot in &mut self.slots {
            slot.kernel.progress = Some(probe.clone());
        }
    }

    /// Run every event scheduled at or before `limit` on all shards,
    /// then advance every shard's clock to `limit`. Returns the number
    /// of events dispatched. Byte-identical outcome to
    /// [`crate::Sim::run_until`] on the same topology. Panics if a
    /// worker panicked — use [`ShardedSim::try_run_until`] to contain
    /// worker panics as typed errors instead.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        self.try_run_until(limit).unwrap_or_else(|e| match e {
            OsntError::Panicked { reason, .. } => panic!("{reason}"),
            other => panic!("{other}"),
        })
    }

    /// Drain every pending event; panics if more than `max_events`
    /// dispatch before quiescence — see
    /// [`crate::Sim::run_to_quiescence`].
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.try_run_to_quiescence(max_events)
            .unwrap_or_else(|e| match e {
                OsntError::Panicked { reason, .. } => panic!("{reason}"),
                other => panic!("{other}"),
            })
    }

    /// [`ShardedSim::run_until`] with panic containment: a panicking
    /// shard worker (a component bug, a blown invariant) is caught at
    /// the worker boundary, poisons the window barrier so its peers
    /// stop instead of deadlocking, and surfaces as
    /// [`OsntError::Panicked`] — the supervisor journals it as a
    /// partial report instead of the process dying.
    pub fn try_run_until(&mut self, limit: SimTime) -> Result<u64, OsntError> {
        self.run_internal(limit.as_ps(), None)
    }

    /// [`ShardedSim::run_to_quiescence`] with panic containment — see
    /// [`ShardedSim::try_run_until`]. The `max_events` overrun is also
    /// reported as an [`OsntError::Panicked`] rather than unwinding.
    pub fn try_run_to_quiescence(&mut self, max_events: u64) -> Result<u64, OsntError> {
        self.run_internal(u64::MAX, Some(max_events))
    }

    fn run_internal(&mut self, limit_ps: u64, max_events: Option<u64>) -> Result<u64, OsntError> {
        self.start_if_needed();
        if self.slots.len() == 1 {
            // Single shard: no threads, no barriers — the plain
            // dispatch loop (identical to `Sim::run_until`), with the
            // same containment contract as the threaded path.
            let slot = &mut self.slots[0];
            slot.drain_inboxes(); // no-op; keeps the code path honest
            let mut dispatched = 0;
            loop {
                let n = dispatch_events(
                    &mut slot.kernel,
                    &mut slot.components,
                    SimTime::from_ps(limit_ps),
                );
                if n > 0 {
                    slot.stats.windows_executed += 1;
                }
                dispatched += n;
                if let Some(cap) = max_events {
                    if dispatched > cap {
                        return Err(OsntError::Panicked {
                            context: "shard worker",
                            reason: format!("simulation did not quiesce within {cap} events"),
                        });
                    }
                }
                if slot
                    .kernel
                    .progress
                    .as_ref()
                    .is_some_and(|p| p.abort_requested())
                {
                    return Ok(dispatched);
                }
                if slot.kernel.pending_events() == 0
                    || slot.kernel.peek_next_ps().unwrap_or(IDLE) > limit_ps
                {
                    break;
                }
            }
            slot.kernel.advance_now(SimTime::from_ps(limit_ps));
            return Ok(dispatched);
        }

        let n = self.slots.len();
        let shared = RunShared {
            barrier: SpinBarrier::new(n),
            mins: (0..n).map(|_| AtomicU64::new(IDLE)).collect(),
            dispatched: AtomicU64::new(0),
            abort: std::sync::atomic::AtomicBool::new(false),
        };
        let windows = WindowConfig {
            policy: self.policy,
            global_lookahead_ps: self.lookahead_ps,
            matrix: self.lookahead_matrix.clone(),
            n_shards: n,
        };
        let stress_seed = self.stress_seed;
        let mut failures: Vec<String> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let shared = &shared;
                    let windows = &windows;
                    scope.spawn(move || {
                        // Containment boundary: a panicking worker is
                        // caught here; its `PoisonGuard` has already
                        // poisoned the barrier during the unwind, so
                        // peers return instead of spinning forever.
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_windows(slot, i, shared, windows, limit_ps, max_events, stress_seed)
                        }))
                        .map_err(|p| {
                            match OsntError::from_panic("shard worker", p.as_ref()) {
                                OsntError::Panicked { reason, .. } => reason,
                                _ => unreachable!("from_panic always yields Panicked"),
                            }
                        })
                    })
                })
                .collect();
            for h in handles {
                if let Ok(Err(reason)) = h.join() {
                    failures.push(reason);
                }
            }
        });
        if !failures.is_empty() {
            // Surface the most informative failure: a real panic, not
            // the secondary "peer worker panicked" echoes.
            let idx = failures
                .iter()
                .position(|r| !r.contains("peer worker panicked"))
                .unwrap_or(0);
            return Err(OsntError::Panicked {
                context: "shard worker",
                reason: failures.swap_remove(idx),
            });
        }
        Ok(shared.dispatched.load(Ordering::SeqCst))
    }
}
