//! Conservative parallel (sharded) execution of the event kernel.
//!
//! The component graph is partitioned into *shards*; each shard runs
//! the ordinary single-threaded [`Kernel`] + timer-wheel dispatch loop
//! on its own worker thread. Shards synchronise with a conservative
//! time-window barrier: the window length is the **lookahead** `L`,
//! the minimum propagation delay over every link that crosses a shard
//! boundary. Because a frame transmitted at simulated time `t` cannot
//! arrive at its (cross-shard) peer before `t + L`, every shard may
//! dispatch all events in `[M, M + L)` — where `M` is the global
//! minimum next-event time — without ever receiving an event that
//! belongs inside the window it is executing. Cross-shard events
//! travel over bounded SPSC rings and are folded into the destination
//! wheel at the next window boundary.
//!
//! # Determinism
//!
//! The kernel's total event order is ascending `(time, event_key)`
//! where the key packs `(source component, per-source sequence)` — see
//! [`crate::kernel::event_key`]. The key is computed from the
//! *source's own* scheduling history only, so a sharded run produces
//! byte-identical keys to the single-threaded run, and each shard's
//! wheel dispatches its local restriction of the same global order.
//! Per-component state (ports, counters, the component itself) is only
//! ever touched by the owning shard, so every handler observes exactly
//! the state it would have observed single-threaded. Channel arrival
//! order is irrelevant: entries are keyed and the wheel re-sorts them.
//!
//! # Safety model
//!
//! Components are plain `Box<dyn Component>` — deliberately **not**
//! `Send`-bounded, because the single-threaded simulator's idiom is
//! `Rc<RefCell<...>>` result sharing. [`ShardSlot`] asserts `Send`
//! under a confinement contract documented on the type; the practical
//! rules for users are on [`crate::SimBuilder::build_sharded`].

use crate::component::{Component, ComponentId};
use crate::engine::dispatch_events;
use crate::event::EventKind;
use crate::kernel::Kernel;
use crate::stats::PortCounters;
use crate::sync::{SpinBarrier, SpscRing};
use osnt_error::OsntError;
use osnt_packet::SendPacket;
use osnt_time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Capacity of each cross-shard ring, in events. Overflow spills to a
/// mutex-protected vector (correct, slower) — see [`SpscRing`].
const RING_CAPACITY: usize = 1024;

/// Sentinel for "no pending events" in the published per-shard minima.
const IDLE: u64 = u64::MAX;

/// A thread-portable event: what crosses a shard boundary. `Deliver`
/// flattens its [`osnt_packet::Packet`] into a [`SendPacket`] (stealing
/// the buffer when uniquely owned) because pool-backed packets hold
/// `Rc`s into their shard-local pool.
pub(crate) enum CrossKind {
    Deliver {
        dst: ComponentId,
        port: usize,
        packet: SendPacket,
    },
    /// A whole [`crate::PacketBurst`] crossing in one ring slot: member
    /// arrival times in ps, keys reconstructed as `entry.key + i`.
    DeliverBurst {
        dst: ComponentId,
        port: usize,
        members: Vec<(u64, SendPacket)>,
    },
    TxDone {
        src: ComponentId,
        port: usize,
        frame_len: usize,
    },
    Timer {
        target: ComponentId,
        tag: u64,
    },
}

/// A keyed, timestamped cross-shard event in transit.
pub(crate) struct CrossEntry {
    time_ps: u64,
    key: u64,
    kind: CrossKind,
}

impl CrossEntry {
    fn from_event(time: SimTime, key: u64, kind: EventKind) -> Self {
        let kind = match kind {
            EventKind::Deliver { dst, port, packet } => CrossKind::Deliver {
                dst,
                port,
                packet: packet.into_send(),
            },
            EventKind::DeliverBurst { dst, port, burst } => CrossKind::DeliverBurst {
                dst,
                port,
                members: burst
                    .into_members()
                    .map(|(t, p)| (t.as_ps(), p.into_send()))
                    .collect(),
            },
            EventKind::TxDone {
                src,
                port,
                frame_len,
            } => CrossKind::TxDone {
                src,
                port,
                frame_len,
            },
            EventKind::Timer { target, tag } => CrossKind::Timer { target, tag },
        };
        CrossEntry {
            time_ps: time.as_ps(),
            key,
            kind,
        }
    }

    fn into_event(self) -> (SimTime, u64, EventKind) {
        let kind = match self.kind {
            CrossKind::Deliver { dst, port, packet } => EventKind::Deliver {
                dst,
                port,
                packet: packet.into_packet(),
            },
            CrossKind::DeliverBurst { dst, port, members } => {
                let mut burst = Box::new(crate::burst::PacketBurst::new(self.key));
                for (t, p) in members {
                    burst.push(SimTime::from_ps(t), p.into_packet());
                }
                EventKind::DeliverBurst { dst, port, burst }
            }
            CrossKind::TxDone {
                src,
                port,
                frame_len,
            } => EventKind::TxDone {
                src,
                port,
                frame_len,
            },
            CrossKind::Timer { target, tag } => EventKind::Timer { target, tag },
        };
        (SimTime::from_ps(self.time_ps), self.key, kind)
    }
}

/// Routes events whose target lives on another shard. Installed into
/// each shard's [`Kernel`]; `None` on single-threaded simulations.
pub(crate) struct ShardRouter {
    shard_of: Arc<Vec<usize>>,
    my_shard: usize,
    /// `outboxes[s]` is this shard's producer end of the ring to shard
    /// `s`; `None` at `s == my_shard`.
    outboxes: Vec<Option<Arc<SpscRing<CrossEntry>>>>,
}

impl ShardRouter {
    #[inline]
    pub(crate) fn is_remote(&self, c: ComponentId) -> bool {
        self.shard_of[c.index()] != self.my_shard
    }

    pub(crate) fn send(&mut self, time: SimTime, key: u64, kind: EventKind) {
        let dst_shard = self.shard_of[kind.target().index()];
        debug_assert_ne!(dst_shard, self.my_shard, "send() called for a local event");
        self.outboxes[dst_shard]
            .as_ref()
            .expect("outbox exists for every remote shard")
            .push(CrossEntry::from_event(time, key, kind));
    }
}

/// Assignment of every component to a shard.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    assign: Vec<usize>,
    n_shards: usize,
}

impl ShardPlan {
    /// A plan over `n_components` components and `n_shards` shards,
    /// with every component initially on shard 0.
    pub fn new(n_components: usize, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        ShardPlan {
            assign: vec![0; n_components],
            n_shards,
        }
    }

    /// Put `c` on `shard`.
    pub fn assign(&mut self, c: ComponentId, shard: usize) {
        assert!(shard < self.n_shards, "shard {shard} out of range");
        self.assign[c.index()] = shard;
    }

    /// The shard `c` is assigned to.
    pub fn shard_of(&self, c: ComponentId) -> usize {
        self.assign[c.index()]
    }

    /// Number of shards (some may end up empty).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Partition `n_components` into at most `n_shards` shards by
    /// wire-connectivity: components joined (transitively) by a link
    /// stay on one shard, and the resulting connected groups are packed
    /// largest-first onto the least-loaded shard. Deterministic for a
    /// given topology. `edges` lists `(a, b)` component pairs that
    /// share a link.
    pub fn auto(
        n_components: usize,
        n_shards: usize,
        edges: &[(ComponentId, ComponentId)],
    ) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        // Union-find over component ids.
        let mut parent: Vec<usize> = (0..n_components).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(a, b) in edges {
            let (ra, rb) = (find(&mut parent, a.index()), find(&mut parent, b.index()));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        // Collect groups keyed by root, ordered by first-member id.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for c in 0..n_components {
            let root = find(&mut parent, c);
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, members)) => members.push(c),
                None => groups.push((root, vec![c])),
            }
        }
        // Largest group first (ties: lowest root id) onto the
        // least-loaded shard (ties: lowest shard id).
        groups.sort_by(|(ra, ma), (rb, mb)| mb.len().cmp(&ma.len()).then(ra.cmp(rb)));
        let mut plan = ShardPlan::new(n_components, n_shards);
        let mut load = vec![0usize; n_shards];
        for (_, members) in groups {
            let shard = (0..n_shards)
                .min_by_key(|&s| (load[s], s))
                .expect(">=1 shard");
            load[shard] += members.len();
            for m in members {
                plan.assign[m] = shard;
            }
        }
        plan
    }
}

/// One shard's worth of simulation state: a full [`Kernel`] replica
/// (only the rows of components this shard owns are ever mutated) plus
/// the owned components and the consumer ends of the inbound rings.
pub(crate) struct ShardSlot {
    pub(crate) kernel: Kernel,
    /// Indexed by global component id; `Some` only for owned ids.
    pub(crate) components: Vec<Option<Box<dyn Component>>>,
    /// `inboxes[p]` is the consumer end of the ring from shard `p`.
    inboxes: Vec<Option<Arc<SpscRing<CrossEntry>>>>,
    /// Drain scratch buffer, reused across windows.
    scratch: Vec<CrossEntry>,
}

// SAFETY: `ShardSlot` contains non-`Send` state (`Box<dyn Component>`
// holding `Rc` handles, pool-backed packets queued in the wheel). It
// is sound to move a `&mut ShardSlot` to a worker thread because the
// executive enforces *confinement with hand-off*:
//
// 1. Each slot is borrowed by exactly one worker per run; workers are
//    scoped threads, so the main thread is blocked until every worker
//    has joined. Spawn and join provide the happens-before edges that
//    make the alternating (main ↔ worker) access sequential.
// 2. No `Rc` graph spans two slots: the partitioning contract (see
//    `SimBuilder::build_sharded`) requires components sharing non-Send
//    state to be co-sharded, and cross-shard packets are flattened to
//    owned buffers (`SendPacket`) before entering a ring.
// 3. Harness-side `Rc` aliases (result vectors etc.) are only touched
//    by the main thread between runs, never during one — the same
//    discipline `thread::scope` users apply to captured `&mut`.
unsafe impl Send for ShardSlot {}

impl ShardSlot {
    /// Fold every event waiting in the inbound rings into the wheel.
    /// Called at a window barrier, when all producers are parked.
    fn drain_inboxes(&mut self) {
        for ring in self.inboxes.iter().flatten() {
            ring.drain_into(&mut self.scratch);
        }
        for entry in self.scratch.drain(..) {
            let (time, key, kind) = entry.into_event();
            self.kernel.inject(time, key, kind);
        }
    }
}

/// State shared by all workers of one run.
struct RunShared {
    barrier: SpinBarrier,
    /// Per-shard earliest pending event time (ps), [`IDLE`] when none.
    mins: Vec<AtomicU64>,
    /// Cumulative events dispatched across shards this run.
    dispatched: AtomicU64,
    /// Coordinated abort decision. Worker 0 samples the supervision
    /// probe's flag once per window (between barriers, while its peers
    /// are quiescent) and publishes it here, so every worker reads the
    /// *same* decision after the next barrier and the loop stays in
    /// lockstep — workers sampling the probe directly could diverge on
    /// a flag raised mid-read and deadlock the barrier.
    abort: std::sync::atomic::AtomicBool,
}

/// Deterministic xorshift for the yield-stress harness (no external
/// RNG dependency; quality is irrelevant, divergence is the point).
struct YieldStress(u64);

impl YieldStress {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn jitter(&mut self) {
        for _ in 0..(self.next() % 4) {
            std::thread::yield_now();
        }
    }
}

/// Poisons the barrier if the worker unwinds, so peers stop waiting.
struct PoisonGuard<'a> {
    barrier: &'a SpinBarrier,
    armed: bool,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.barrier.poison();
        }
    }
}

/// The per-worker window loop. All workers compute the identical
/// window decision from the shared minima, so control flow stays in
/// lockstep without a coordinator thread.
fn run_windows(
    slot: &mut ShardSlot,
    my_shard: usize,
    shared: &RunShared,
    limit_ps: u64,
    lookahead_ps: Option<u64>,
    max_events: Option<u64>,
    stress_seed: Option<u64>,
) {
    let mut guard = PoisonGuard {
        barrier: &shared.barrier,
        armed: true,
    };
    let mut sense = false;
    let mut stress = stress_seed.map(|s| {
        // Distinct, nonzero stream per shard.
        YieldStress(s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (my_shard as u64 + 1))
    });
    loop {
        // Window boundary A: every worker has finished the previous
        // window, so every ring's producer is quiescent.
        if shared.barrier.wait(&mut sense).is_err() {
            std::panic::panic_any("shard worker aborted: a peer worker panicked");
        }
        if let Some(st) = stress.as_mut() {
            st.jitter();
        }
        slot.drain_inboxes();
        shared.mins[my_shard].store(slot.kernel.peek_next_ps().unwrap_or(IDLE), Ordering::SeqCst);
        if my_shard == 0 {
            let aborted = slot
                .kernel
                .progress
                .as_ref()
                .is_some_and(|p| p.abort_requested());
            shared.abort.store(aborted, Ordering::SeqCst);
        }
        // Window boundary B: every minimum (and the abort decision) is
        // published. Between here and the next boundary A no worker
        // re-publishes, so all read the same values and take the same
        // branch.
        if shared.barrier.wait(&mut sense).is_err() {
            std::panic::panic_any("shard worker aborted: a peer worker panicked");
        }
        if shared.abort.load(Ordering::SeqCst) {
            // Supervised abort: leave the clock where it stopped so the
            // probe's last_progress stays honest.
            guard.armed = false;
            return;
        }
        let m = shared
            .mins
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .min()
            .expect(">=1 shard");
        if m == IDLE || m > limit_ps {
            break;
        }
        // Dispatch every event in [m, end] — the conservative window.
        // With lookahead L the window is [M, M+L): no cross-shard send
        // from inside it can land inside it. With no cross-shard links
        // (lookahead None) the whole horizon is one window.
        let end_inclusive = match lookahead_ps {
            Some(l) => limit_ps.min(m.saturating_add(l).saturating_sub(1)),
            None => limit_ps,
        };
        let n = dispatch_events(
            &mut slot.kernel,
            &mut slot.components,
            SimTime::from_ps(end_inclusive),
        );
        if let Some(st) = stress.as_mut() {
            st.jitter();
        }
        let total = shared.dispatched.fetch_add(n, Ordering::SeqCst) + n;
        if let Some(cap) = max_events {
            assert!(
                total <= cap,
                "simulation did not quiesce within {cap} events"
            );
        }
    }
    slot.kernel.advance_now(SimTime::from_ps(limit_ps));
    guard.armed = false;
}

/// A simulation partitioned across worker threads. Built with
/// [`crate::SimBuilder::build_sharded`]; produces byte-identical
/// per-component state, counters and event streams to [`crate::Sim`]
/// for any shard plan.
pub struct ShardedSim {
    slots: Vec<ShardSlot>,
    shard_of: Arc<Vec<usize>>,
    lookahead_ps: Option<u64>,
    names: Vec<String>,
    started: bool,
    stress_seed: Option<u64>,
}

impl ShardedSim {
    pub(crate) fn build(
        kernel: Kernel,
        mut components: Vec<Option<Box<dyn Component>>>,
        names: Vec<String>,
        plan: ShardPlan,
    ) -> ShardedSim {
        assert_eq!(
            plan.assign.len(),
            components.len(),
            "shard plan covers a different component count than the builder"
        );
        assert!(
            kernel.pending_events() == 0,
            "build_sharded before scheduling events"
        );
        let n = plan.n_shards;
        let shard_of = Arc::new(plan.assign);

        // Lookahead: the minimum propagation delay over links that
        // cross a shard boundary. A zero-delay cross link would make
        // the window empty — reject it at build time.
        let mut lookahead_ps: Option<u64> = None;
        for (src, peer, propagation) in kernel.wire_endpoints() {
            if shard_of[src.index()] == shard_of[peer.index()] {
                continue;
            }
            let ps = propagation.as_ps();
            assert!(
                ps > 0,
                "link between component {} (shard {}) and {} (shard {}) has zero \
                 propagation delay: cross-shard links need nonzero delay for lookahead",
                src.index(),
                shard_of[src.index()],
                peer.index(),
                shard_of[peer.index()],
            );
            lookahead_ps = Some(lookahead_ps.map_or(ps, |l| l.min(ps)));
        }

        // One SPSC ring per ordered (producer, consumer) shard pair.
        let rings: Vec<Vec<Option<Arc<SpscRing<CrossEntry>>>>> = (0..n)
            .map(|p| {
                (0..n)
                    .map(|c| (p != c).then(|| Arc::new(SpscRing::new(RING_CAPACITY))))
                    .collect()
            })
            .collect();

        let slots = (0..n)
            .map(|s| {
                let mut k = kernel.replicate_for_shard();
                k.router = Some(ShardRouter {
                    shard_of: shard_of.clone(),
                    my_shard: s,
                    outboxes: rings[s].clone(),
                });
                let comps = components
                    .iter_mut()
                    .enumerate()
                    .map(|(id, c)| if shard_of[id] == s { c.take() } else { None })
                    .collect();
                ShardSlot {
                    kernel: k,
                    components: comps,
                    inboxes: (0..n).map(|p| rings[p][s].clone()).collect(),
                    scratch: Vec::new(),
                }
            })
            .collect();

        let stress_seed = std::env::var("OSNT_SHARD_STRESS")
            .ok()
            .map(|v| v.parse::<u64>().unwrap_or(1).max(1));

        ShardedSim {
            slots,
            shard_of,
            lookahead_ps,
            names,
            started: false,
            stress_seed,
        }
    }

    /// Number of shards (worker threads used per run).
    pub fn n_shards(&self) -> usize {
        self.slots.len()
    }

    /// The conservative window length, `None` when no link crosses a
    /// shard boundary (the whole horizon is one window).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead_ps.map(SimDuration::from_ps)
    }

    /// Current simulated time (all shards agree between runs).
    pub fn now(&self) -> SimTime {
        self.slots[0].kernel.now()
    }

    /// A component's registered name.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.names[id.index()]
    }

    /// Counter snapshot for (`comp`, `port`), read from the owning
    /// shard (the only one that ever updates it).
    pub fn counters(&self, comp: ComponentId, port: usize) -> PortCounters {
        self.slots[self.shard_of[comp.index()]]
            .kernel
            .counters(comp, port)
    }

    /// Set (or clear) a port's output-buffer capacity — see
    /// [`Kernel::set_tx_buffer`]. Routed to the owning shard.
    pub fn set_tx_buffer(&mut self, comp: ComponentId, port: usize, bytes: Option<usize>) {
        self.slots[self.shard_of[comp.index()]]
            .kernel
            .set_tx_buffer(comp, port, bytes);
    }

    /// Total events dispatched across all shards.
    pub fn events_dispatched(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.kernel.events_dispatched())
            .sum()
    }

    /// Events pending across all shards (rings are empty between runs).
    pub fn pending_events(&self) -> usize {
        debug_assert!(
            self.slots
                .iter()
                .all(|s| s.inboxes.iter().flatten().all(|r| r.is_empty())),
            "cross-shard rings must be drained between runs"
        );
        self.slots.iter().map(|s| s.kernel.pending_events()).sum()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Run `on_start` in global component-id order, each on its
        // owning shard's kernel, on this thread (workers not yet
        // spawned). Cross-shard sends from on_start land in rings and
        // are folded in at the first window boundary.
        for id in 0..self.shard_of.len() {
            let slot = &mut self.slots[self.shard_of[id]];
            let cid = ComponentId(id);
            let mut c = slot.components[id].take().expect("component in place");
            c.on_start(&mut slot.kernel, cid);
            slot.components[id] = Some(c);
        }
    }

    /// Attach a supervision probe to every shard's kernel: workers
    /// publish their simulated-time high-water mark into it, and a
    /// raised abort flag stops the run at the next coordinated window
    /// boundary. Attach before the first `run_*` call.
    pub fn attach_progress(&mut self, probe: Arc<osnt_time::ProgressProbe>) {
        for slot in &mut self.slots {
            slot.kernel.progress = Some(probe.clone());
        }
    }

    /// Run every event scheduled at or before `limit` on all shards,
    /// then advance every shard's clock to `limit`. Returns the number
    /// of events dispatched. Byte-identical outcome to
    /// [`crate::Sim::run_until`] on the same topology. Panics if a
    /// worker panicked — use [`ShardedSim::try_run_until`] to contain
    /// worker panics as typed errors instead.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        self.try_run_until(limit).unwrap_or_else(|e| match e {
            OsntError::Panicked { reason, .. } => panic!("{reason}"),
            other => panic!("{other}"),
        })
    }

    /// Drain every pending event; panics if more than `max_events`
    /// dispatch before quiescence — see
    /// [`crate::Sim::run_to_quiescence`].
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.try_run_to_quiescence(max_events)
            .unwrap_or_else(|e| match e {
                OsntError::Panicked { reason, .. } => panic!("{reason}"),
                other => panic!("{other}"),
            })
    }

    /// [`ShardedSim::run_until`] with panic containment: a panicking
    /// shard worker (a component bug, a blown invariant) is caught at
    /// the worker boundary, poisons the window barrier so its peers
    /// stop instead of deadlocking, and surfaces as
    /// [`OsntError::Panicked`] — the supervisor journals it as a
    /// partial report instead of the process dying.
    pub fn try_run_until(&mut self, limit: SimTime) -> Result<u64, OsntError> {
        self.run_internal(limit.as_ps(), None)
    }

    /// [`ShardedSim::run_to_quiescence`] with panic containment — see
    /// [`ShardedSim::try_run_until`]. The `max_events` overrun is also
    /// reported as an [`OsntError::Panicked`] rather than unwinding.
    pub fn try_run_to_quiescence(&mut self, max_events: u64) -> Result<u64, OsntError> {
        self.run_internal(u64::MAX, Some(max_events))
    }

    fn run_internal(&mut self, limit_ps: u64, max_events: Option<u64>) -> Result<u64, OsntError> {
        self.start_if_needed();
        if self.slots.len() == 1 {
            // Single shard: no threads, no barriers — the plain
            // dispatch loop (identical to `Sim::run_until`), with the
            // same containment contract as the threaded path.
            let slot = &mut self.slots[0];
            slot.drain_inboxes(); // no-op; keeps the code path honest
            let mut dispatched = 0;
            loop {
                dispatched += dispatch_events(
                    &mut slot.kernel,
                    &mut slot.components,
                    SimTime::from_ps(limit_ps),
                );
                if let Some(cap) = max_events {
                    if dispatched > cap {
                        return Err(OsntError::Panicked {
                            context: "shard worker",
                            reason: format!("simulation did not quiesce within {cap} events"),
                        });
                    }
                }
                if slot
                    .kernel
                    .progress
                    .as_ref()
                    .is_some_and(|p| p.abort_requested())
                {
                    return Ok(dispatched);
                }
                if slot.kernel.pending_events() == 0
                    || slot.kernel.peek_next_ps().unwrap_or(IDLE) > limit_ps
                {
                    break;
                }
            }
            slot.kernel.advance_now(SimTime::from_ps(limit_ps));
            return Ok(dispatched);
        }

        let n = self.slots.len();
        let shared = RunShared {
            barrier: SpinBarrier::new(n),
            mins: (0..n).map(|_| AtomicU64::new(IDLE)).collect(),
            dispatched: AtomicU64::new(0),
            abort: std::sync::atomic::AtomicBool::new(false),
        };
        let lookahead_ps = self.lookahead_ps;
        let stress_seed = self.stress_seed;
        let mut failures: Vec<String> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let shared = &shared;
                    scope.spawn(move || {
                        // Containment boundary: a panicking worker is
                        // caught here; its `PoisonGuard` has already
                        // poisoned the barrier during the unwind, so
                        // peers return instead of spinning forever.
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_windows(
                                slot,
                                i,
                                shared,
                                limit_ps,
                                lookahead_ps,
                                max_events,
                                stress_seed,
                            )
                        }))
                        .map_err(|p| {
                            match OsntError::from_panic("shard worker", p.as_ref()) {
                                OsntError::Panicked { reason, .. } => reason,
                                _ => unreachable!("from_panic always yields Panicked"),
                            }
                        })
                    })
                })
                .collect();
            for h in handles {
                if let Ok(Err(reason)) = h.join() {
                    failures.push(reason);
                }
            }
        });
        if !failures.is_empty() {
            // Surface the most informative failure: a real panic, not
            // the secondary "peer worker panicked" echoes.
            let idx = failures
                .iter()
                .position(|r| !r.contains("peer worker panicked"))
                .unwrap_or(0);
            return Err(OsntError::Panicked {
                context: "shard worker",
                reason: failures.swap_remove(idx),
            });
        }
        Ok(shared.dispatched.load(Ordering::SeqCst))
    }
}
