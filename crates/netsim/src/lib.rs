#![warn(missing_docs)]
//! # osnt-netsim — a picosecond-resolution discrete-event network simulator
//!
//! This crate is the **hardware substitute** of OSNT-rs (see DESIGN.md §2):
//! the NetFPGA-10G board, its 10 GbE MACs, the cables and the devices under
//! test all become components of a deterministic discrete-event simulation.
//!
//! Why a simulator? The paper's claims are *timing* claims — line rate at
//! every packet size, 6.25 ns timestamp resolution, sub-µs latency
//! measurement. A software port pushing real packets through an OS cannot
//! honour any of them; a DES with integer-picosecond virtual time honours
//! all of them *exactly*, because serialisation and queueing delays are
//! computed from the same arithmetic the wire imposes:
//!
//! * one byte at 10 Gb/s = 800 ps,
//! * a frame occupies `(frame + preamble + IFG) × 8` bit times,
//! * a MAC transmits frames strictly back to back, never faster.
//!
//! ## Architecture
//!
//! The design is event-driven in the reactor style: a totally ordered
//! event queue — ascending `(time, source component, per-source
//! sequence)`, fully deterministic and independent of how the run is
//! partitioned — dispatches to [`Component`]s, which react by
//! scheduling timers and transmitting frames through the [`Kernel`].
//! Components are wired port-to-port with [`LinkSpec`]s at build time
//! ([`SimBuilder`]), then the simulation is driven with
//! [`Sim::run_until`] — or partitioned across worker threads with
//! [`SimBuilder::build_sharded`] (see [`shard`]) for byte-identical
//! results at a fraction of the wall clock.
//!
//! ```
//! use osnt_netsim::{Component, Kernel, ComponentId, LinkSpec, SimBuilder};
//! use osnt_packet::Packet;
//! use osnt_time::{SimTime, SimDuration};
//!
//! /// Echoes every received frame back out of the port it arrived on.
//! struct Reflector;
//! impl Component for Reflector {
//!     fn on_packet(&mut self, k: &mut Kernel, me: ComponentId, port: usize, pkt: Packet) {
//!         let _ = k.transmit(me, port, pkt);
//!     }
//! }
//!
//! /// Sends one frame at t=0 and records when the echo returns.
//! struct Probe { rtt: Option<SimDuration> }
//! impl Component for Probe {
//!     fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
//!         let _ = k.transmit(me, 0, Packet::zeroed(64));
//!     }
//!     fn on_packet(&mut self, k: &mut Kernel, _me: ComponentId, _port: usize, _pkt: Packet) {
//!         self.rtt = Some(k.now().duration_since(SimTime::ZERO));
//!     }
//! }
//!
//! let mut b = SimBuilder::new();
//! let probe = b.add_component("probe", Box::new(Probe { rtt: None }), 1);
//! let refl = b.add_component("reflector", Box::new(Reflector), 1);
//! b.connect(probe, 0, refl, 0, LinkSpec::ten_gig());
//! let mut sim = b.build();
//! sim.run_until(SimTime::from_ms(1));
//! ```

pub mod burst;
pub mod component;
pub mod engine;
pub mod event;
pub mod fault;
pub mod impair;
pub mod kernel;
pub mod link;
pub mod queue;
pub mod shard;
pub mod stats;
pub mod sync;
pub mod trace;
pub mod wheel;

pub use burst::{PacketBurst, BURST_INLINE};
pub use component::{Component, ComponentId};
pub use engine::{Sim, SimBuilder};
pub use fault::{FaultConfig, FaultStats, FaultyLink, GilbertElliott, LossModel};
pub use impair::{ImpairConfig, Impairment};
pub use kernel::{BatchTx, Kernel, TxResult};
pub use link::LinkSpec;
pub use queue::ByteFifo;
pub use shard::{ShardPlan, ShardedSim, WindowPolicy};
pub use stats::{PortCounters, ShardStats};
pub use sync::{BarrierPoisoned, RingCounters, SpinBarrier, SpscRing};
pub use trace::{TraceEvent, Tracer};
pub use wheel::TimerWheel;
