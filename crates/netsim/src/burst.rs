//! Burst vectors: the batched unit of work of the fast datapath.
//!
//! [`crate::Kernel::transmit_batch`] and [`crate::Kernel::transmit_burst`]
//! coalesce a back-to-back run of frames into one [`PacketBurst`] that
//! travels the timer wheel (and the cross-shard rings) as a *single*
//! entry, instead of one `Deliver` event per frame. The burst carries
//! each member's exact arrival instant, and the event key of member `i`
//! is `first_key + i` — the same per-source sequence keys the scalar
//! path would have allocated — so the partition-independent total event
//! order is preserved: the dispatch loop splits a burst lazily (re-
//! queuing the un-consumed tail under its own member key) whenever a
//! foreign event, a timer, or the run limit lands between two members.

use osnt_packet::Packet;
use osnt_time::SimTime;
use smallvec::SmallVec;

/// Number of members kept inline (no heap allocation) in a burst.
/// Bursts are boxed inside the event payload, so this trades one
/// allocation against burst-box size; 8 covers the common small-batch
/// configurations.
pub const BURST_INLINE: usize = 8;

/// A vector of frames sharing one wire-timing base: consecutive frames
/// transmitted back-to-back out of one port, each paired with the
/// instant its last bit arrives at the peer. Members are in strictly
/// ascending arrival order, and member `i` owns event key
/// `first_key + i` in the kernel's total order.
#[derive(Debug)]
pub struct PacketBurst {
    /// Event key of `members[0]`.
    first_key: u64,
    members: SmallVec<(SimTime, Packet), BURST_INLINE>,
}

impl PacketBurst {
    /// An empty burst whose first member will carry `first_key`.
    pub(crate) fn new(first_key: u64) -> Self {
        PacketBurst {
            first_key,
            members: SmallVec::new(),
        }
    }

    /// Append a member (arrival instants must be pushed in ascending
    /// order; the kernel's MAC arithmetic guarantees it).
    pub(crate) fn push(&mut self, at: SimTime, packet: Packet) {
        debug_assert!(
            self.members.last().is_none_or(|(t, _)| *t < at),
            "burst members must have strictly ascending arrival times"
        );
        self.members.push((at, packet));
    }

    /// Number of frames in the burst.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the burst holds no frames.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Event key of the first (current) member.
    #[inline]
    pub(crate) fn first_key(&self) -> u64 {
        self.first_key
    }

    /// Arrival instant of the first member. Panics on an empty burst.
    #[inline]
    pub fn first_time(&self) -> SimTime {
        self.members[0].0
    }

    /// Arrival instant of the last member. Panics on an empty burst.
    #[inline]
    pub fn last_time(&self) -> SimTime {
        self.members[self.members.len() - 1].0
    }

    /// The members as a slice of `(arrival instant, frame)` pairs.
    #[inline]
    pub fn members(&self) -> &[(SimTime, Packet)] {
        self.members.as_slice()
    }

    /// Remove and return the first member (advancing `first_key`).
    pub(crate) fn pop_front(&mut self) -> Option<(SimTime, Packet)> {
        if self.members.is_empty() {
            return None;
        }
        self.first_key += 1;
        Some(self.members.remove(0))
    }

    /// Split off the tail starting at member index `at`, leaving
    /// `0..at` in `self`. The returned burst keeps its members' event
    /// keys (`first_key + at` onward). Returns `None` when `at` is past
    /// the end.
    pub(crate) fn split_off(&mut self, at: usize) -> Option<PacketBurst> {
        if at >= self.members.len() {
            return None;
        }
        let tail = self.members.split_off(at);
        Some(PacketBurst {
            first_key: self.first_key + at as u64,
            members: tail,
        })
    }

    /// Split off every member arriving strictly after `limit` (for
    /// dispatch-window boundaries). Returns `None` when all members are
    /// at or before `limit`.
    pub(crate) fn split_after(&mut self, limit: SimTime) -> Option<PacketBurst> {
        let at = self.members.partition_point(|(t, _)| *t <= limit);
        self.split_off(at)
    }

    /// Consume the burst, yielding `(arrival instant, frame)` pairs in
    /// arrival order.
    pub fn into_members(self) -> impl ExactSizeIterator<Item = (SimTime, Packet)> {
        self.members.into_iter()
    }
}

impl IntoIterator for PacketBurst {
    type Item = (SimTime, Packet);
    type IntoIter = smallvec::IntoIter<(SimTime, Packet), BURST_INLINE>;
    fn into_iter(self) -> Self::IntoIter {
        self.members.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(times: &[u64]) -> PacketBurst {
        let mut b = PacketBurst::new(100);
        for &t in times {
            b.push(SimTime::from_ps(t), Packet::zeroed(64));
        }
        b
    }

    #[test]
    fn keys_track_pops_and_splits() {
        let mut b = burst(&[10, 20, 30, 40]);
        assert_eq!(b.first_key(), 100);
        assert_eq!(b.first_time().as_ps(), 10);
        let (t, _) = b.pop_front().unwrap();
        assert_eq!(t.as_ps(), 10);
        assert_eq!(b.first_key(), 101);
        let tail = b.split_off(1).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(tail.first_key(), 102);
        assert_eq!(tail.first_time().as_ps(), 30);
    }

    #[test]
    fn split_after_partitions_on_the_limit() {
        let mut b = burst(&[10, 20, 30]);
        assert!(b.split_after(SimTime::from_ps(30)).is_none());
        let tail = b.split_after(SimTime::from_ps(15)).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.first_key(), 101);
        assert_eq!(tail.first_time().as_ps(), 20);
    }
}
