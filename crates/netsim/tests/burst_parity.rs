//! Burst-vs-scalar parity of the fault-injection link: for every fault
//! configuration and every burst-shaped offered load, a `FaultyLink`
//! processing whole [`osnt_netsim::PacketBurst`]s (its vector fast
//! path, or its internal per-member fallback when reordering or
//! in-flight frames force it) must deliver **exactly** the frames the
//! scalar dispatch path delivers — same arrival instants at the sink,
//! same payload bytes (including corruption flips), same
//! [`FaultStats`] tallies.
//!
//! The scalar reference is obtained with a shim component that owns the
//! very same `FaultyLink` but answers `wants_bursts() == false`: the
//! engine then splits each incoming `DeliverBurst` back into exact
//! per-member scalar `on_packet` calls (the determinism-pinning replay
//! path), so both runs see the *same* wire-level input stream and the
//! only difference is which link code path consumes it. Both faults
//! draw from the same seeded RNG in the same order, so every stochastic
//! decision — loss, Gilbert–Elliott state walks, corruption bit picks,
//! jitter, duplication — must land on the same frames.

use osnt_netsim::{
    Component, ComponentId, FaultConfig, FaultStats, FaultyLink, GilbertElliott, Kernel, LinkSpec,
    LossModel, SimBuilder,
};
use osnt_packet::{hash::crc32, Packet};
use osnt_time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One observed delivery: (arrival ps, frame length, payload digest).
type ArrivalLog = Rc<RefCell<Vec<(u64, usize, u32)>>>;

/// Scripted burst source: emits `bursts` bursts of `burst_len` frames
/// via [`Kernel::transmit_batch`], one burst per `gap`, payloads
/// stamped with (burst, member) so any mis-delivery shows in digests.
struct BurstSource {
    bursts: u32,
    burst_len: u32,
    frame_len: usize,
    gap: SimDuration,
    emitted: u32,
}

impl Component for BurstSource {
    fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
        if self.bursts > 0 {
            k.schedule_timer(me, SimDuration::ZERO, 0);
        }
    }
    fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
    fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, _tag: u64) {
        let burst = self.emitted;
        let mut member = 0u32;
        let n = self.burst_len;
        let len = self.frame_len;
        let _ = k.transmit_batch(
            me,
            0,
            &mut |_| {
                if member == n {
                    return None;
                }
                let mut data = vec![0u8; len - 4];
                data[..4].copy_from_slice(&burst.to_be_bytes());
                data[4..8].copy_from_slice(&member.to_be_bytes());
                member += 1;
                Some(Packet::from_vec(data))
            },
            None,
        );
        self.emitted += 1;
        if self.emitted < self.bursts {
            k.schedule_timer(me, self.gap, 0);
        }
    }
}

/// Sink recording every scalar arrival (it never opts into batches, so
/// both runs log exact per-frame instants).
struct RecSink {
    log: ArrivalLog,
}

impl Component for RecSink {
    fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, pkt: Packet) {
        self.log
            .borrow_mut()
            .push((k.now().as_ps(), pkt.len(), crc32(pkt.data())));
    }
}

/// The scalar reference: owns a real `FaultyLink` and forwards every
/// handler to it, but reports `wants_bursts() == false` so the engine
/// replays arriving bursts one exact scalar `on_packet` at a time.
struct ScalarShim {
    inner: FaultyLink,
}

impl Component for ScalarShim {
    fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
        self.inner.on_start(k, me);
    }
    fn on_packet(&mut self, k: &mut Kernel, me: ComponentId, port: usize, pkt: Packet) {
        self.inner.on_packet(k, me, port, pkt);
    }
    fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
        self.inner.on_timer(k, me, tag);
    }
    fn wants_bursts(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "scalar-shim"
    }
}

/// Generator parameters for one run pair.
#[derive(Debug, Clone)]
struct Case {
    bursts: u32,
    burst_len: u32,
    frame_len: usize,
    gap_ns: u64,
    config: FaultConfig,
}

/// Run one simulation; `scalar` selects the shim (exact replay) or the
/// bare link (burst path). Returns (sink log, final fault stats).
fn run(case: &Case, scalar: bool) -> (Vec<(u64, usize, u32)>, FaultStats) {
    let mut b = SimBuilder::new();
    let src = b.add_component(
        "src",
        Box::new(BurstSource {
            bursts: case.bursts,
            burst_len: case.burst_len,
            frame_len: case.frame_len,
            gap: SimDuration::from_ns(case.gap_ns),
            emitted: 0,
        }),
        1,
    );
    let (link, stats) = FaultyLink::new(case.config.clone()).expect("valid fault config");
    let link_box: Box<dyn Component> = if scalar {
        Box::new(ScalarShim { inner: link })
    } else {
        Box::new(link)
    };
    let fault = b.add_component("fault", link_box, 2);
    let log: ArrivalLog = Rc::new(RefCell::new(Vec::new()));
    let sink = b.add_component("sink", Box::new(RecSink { log: log.clone() }), 1);
    b.connect(src, 0, fault, 0, LinkSpec::ten_gig());
    b.connect(fault, 1, sink, 0, LinkSpec::ten_gig());
    let mut sim = b.build();
    // Far past the last burst plus every extra delay / jitter / reorder
    // hold, so all pending releases drain (`delivered` is counted at
    // release time on the scalar path).
    sim.run_until(SimTime::from_ms(200));
    let log = log.borrow().clone();
    let stats = *stats.borrow();
    (log, stats)
}

fn assert_parity(case: &Case) {
    let (scalar_log, scalar_stats) = run(case, true);
    let (burst_log, burst_stats) = run(case, false);
    assert_eq!(
        burst_log, scalar_log,
        "burst-path deliveries diverged from scalar replay: {case:?}"
    );
    assert_eq!(
        burst_stats, scalar_stats,
        "burst-path fault tallies diverged from scalar replay: {case:?}"
    );
    // Sanity: the offered count is what the source actually emitted.
    assert_eq!(
        scalar_stats.offered,
        u64::from(case.bursts) * u64::from(case.burst_len),
        "harness lost frames before the link: {case:?}"
    );
}

fn loss_strategy() -> impl Strategy<Value = LossModel> {
    (0usize..3, 0usize..3, 0usize..3).prop_map(|(kind, p, m)| match kind {
        0 => LossModel::None,
        1 => LossModel::Uniform {
            probability: [0.05f64, 0.2, 0.5][p],
        },
        _ => LossModel::GilbertElliott(GilbertElliott::bursty(
            [0.02f64, 0.1, 0.25][p],
            [1.0f64, 3.0, 8.0][m],
        )),
    })
}

fn config_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        loss_strategy(),
        // Reorder > 0 forces the link's internal per-member fallback;
        // keep it in the mix so that path is pinned too.
        (0usize..3).prop_map(|i| [0.0f64, 0.1, 0.3][i]),
        (0usize..3).prop_map(|i| [0.0f64, 0.1, 0.4][i]),
        (0usize..3).prop_map(|i| [0.0f64, 0.1, 0.3][i]),
        1u32..4,
        (0usize..3).prop_map(|i| [0u64, 500, 5_000][i]),
        (0usize..3).prop_map(|i| [0u64, 100, 2_000][i]),
        any::<u64>(),
    )
        .prop_map(
            |(loss, reorder, dup, corrupt, bits, delay_ns, jitter_ns, seed)| FaultConfig {
                loss,
                reorder_probability: reorder,
                reorder_hold: SimDuration::from_us(30),
                duplicate_probability: dup,
                corrupt_probability: corrupt,
                corrupt_bits: bits,
                extra_delay: SimDuration::from_ns(delay_ns),
                jitter: SimDuration::from_ns(jitter_ns),
                seed,
            },
        )
}

proptest! {
    #[test]
    fn burst_path_matches_scalar_replay(
        bursts in 1u32..12,
        burst_len in 1u32..24,
        frame_len in (0usize..4).prop_map(|i| [64usize, 128, 600, 1518][i]),
        gap_ns in (0usize..4).prop_map(|i| [200u64, 2_000, 20_000, 150_000][i]),
        config in config_strategy(),
    ) {
        assert_parity(&Case { bursts, burst_len, frame_len, gap_ns, config });
    }
}

/// Deterministic pin of the vector fast path specifically: no reorder,
/// tight back-to-back bursts so releases FIFO-clamp, every other fault
/// family on at once.
#[test]
fn vector_fast_path_with_all_faults_matches_scalar() {
    assert_parity(&Case {
        bursts: 16,
        burst_len: 32,
        frame_len: 64,
        gap_ns: 3_000,
        config: FaultConfig {
            loss: LossModel::Uniform { probability: 0.15 },
            reorder_probability: 0.0,
            reorder_hold: SimDuration::from_us(30),
            duplicate_probability: 0.2,
            corrupt_probability: 0.2,
            corrupt_bits: 3,
            extra_delay: SimDuration::from_ns(800),
            jitter: SimDuration::from_ns(400),
            seed: 0xB0B5,
        },
    });
}

/// Deterministic pin of the Gilbert–Elliott walk across the burst path:
/// the good→burst transition counter and the dropped-in-burst subset
/// must match frame for frame.
#[test]
fn gilbert_elliott_walk_matches_across_paths() {
    assert_parity(&Case {
        bursts: 24,
        burst_len: 16,
        frame_len: 128,
        gap_ns: 10_000,
        config: FaultConfig {
            loss: LossModel::GilbertElliott(GilbertElliott::bursty(0.1, 4.0)),
            seed: 7,
            ..FaultConfig::default()
        },
    });
}
