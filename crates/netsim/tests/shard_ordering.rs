//! Regression: two frames that depart **different shards inside the
//! same lookahead window** and arrive at one component at the **same
//! instant** must be delivered in a deterministic order — ascending
//! timestamp, then ascending source component id (the shard-invariant
//! tiebreak; with one component per source shard this is exactly
//! timestamp-then-shard-id). The failure mode this pins down: a naive
//! parallel kernel delivers same-instant cross-shard arrivals in ring
//! drain order, which depends on thread scheduling.

use osnt_netsim::{Component, ComponentId, Kernel, LinkSpec, ShardPlan, SimBuilder};
use osnt_packet::Packet;
use osnt_time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Fires one frame at a fixed instant.
struct OneShot {
    at: SimTime,
    frame_len: usize,
}

impl Component for OneShot {
    fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
        k.schedule_timer_at(me, self.at, 0);
    }
    fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
    fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, _tag: u64) {
        let _ = k.transmit(me, 0, Packet::zeroed(self.frame_len));
    }
}

/// Records (arrival ps, rx port) in delivery order.
struct OrderSink {
    log: Rc<RefCell<Vec<(u64, usize)>>>,
}

impl Component for OrderSink {
    fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, port: usize, _: Packet) {
        self.log.borrow_mut().push((k.now().as_ps(), port));
    }
}

/// Identical sources A and B on different shards, both wired (same
/// spec, same frame size, same departure instant) to a sink on a third
/// shard: their frames arrive at exactly the same picosecond.
type ArrivalLog = Rc<RefCell<Vec<(u64, usize)>>>;

fn build_tie(n_shards: usize) -> (osnt_netsim::ShardedSim, ArrivalLog) {
    let mut b = SimBuilder::new();
    let at = SimTime::from_ns(500);
    let a = b.add_component("src-a", Box::new(OneShot { at, frame_len: 64 }), 1);
    let c = b.add_component("src-b", Box::new(OneShot { at, frame_len: 64 }), 1);
    let log = Rc::new(RefCell::new(Vec::new()));
    let sink = b.add_component("sink", Box::new(OrderSink { log: log.clone() }), 2);
    // 10 ns propagation on both: lookahead = 10 ns, and both frames
    // depart inside one window (they depart at the same instant).
    b.connect(a, 0, sink, 0, LinkSpec::ten_gig());
    b.connect(c, 0, sink, 1, LinkSpec::ten_gig());
    let mut plan = ShardPlan::new(3, n_shards);
    plan.assign(a, 0);
    plan.assign(c, 1 % n_shards);
    plan.assign(sink, 2 % n_shards);
    (b.build_sharded(plan), log)
}

#[test]
fn same_instant_cross_shard_arrivals_order_by_source_id() {
    // Single-threaded reference.
    let reference = {
        let (mut sim, log) = build_tie(1);
        sim.run_until(SimTime::from_us(10));
        let r = log.borrow().clone();
        r
    };
    assert_eq!(reference.len(), 2);
    assert_eq!(
        reference[0].0, reference[1].0,
        "test premise: both frames arrive at the same instant"
    );
    // Deterministic tiebreak: source A (lower component id / shard 0)
    // delivered to port 0 first, then B to port 1.
    assert_eq!(reference[0].1, 0);
    assert_eq!(reference[1].1, 1);

    // Every parallel cut replays the identical delivery sequence, no
    // matter which worker's ring drains first. Repeat each shape a few
    // times so a scheduling-dependent bug cannot hide behind one lucky
    // interleaving.
    for shards in [2, 3] {
        for _ in 0..10 {
            let (mut sim, log) = build_tie(shards);
            sim.run_until(SimTime::from_us(10));
            assert_eq!(
                *log.borrow(),
                reference,
                "tie order diverged at {shards} shards"
            );
        }
    }
}

/// Same scenario but with the departure instants one serialisation
/// slot apart: ordering must follow timestamps first, source id only
/// on exact ties.
#[test]
fn timestamp_order_dominates_source_id() {
    let build = |n_shards: usize| {
        let mut b = SimBuilder::new();
        // Higher-id source departs *earlier* — its frame must still
        // arrive first.
        let a = b.add_component(
            "late-src",
            Box::new(OneShot {
                at: SimTime::from_ns(1000),
                frame_len: 64,
            }),
            1,
        );
        let c = b.add_component(
            "early-src",
            Box::new(OneShot {
                at: SimTime::from_ns(100),
                frame_len: 64,
            }),
            1,
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        let sink = b.add_component("sink", Box::new(OrderSink { log: log.clone() }), 2);
        b.connect(a, 0, sink, 0, LinkSpec::ten_gig());
        b.connect(c, 0, sink, 1, LinkSpec::ten_gig());
        let mut plan = ShardPlan::new(3, n_shards);
        plan.assign(a, 0);
        plan.assign(c, 1 % n_shards);
        plan.assign(sink, 2 % n_shards);
        (b.build_sharded(plan), log)
    };
    let reference = {
        let (mut sim, log) = build(1);
        sim.run_until(SimTime::from_us(10));
        let r = log.borrow().clone();
        r
    };
    assert_eq!(reference.len(), 2);
    assert_eq!(reference[0].1, 1, "earlier departure delivered first");
    assert!(reference[0].0 < reference[1].0);
    for shards in [2, 3] {
        let (mut sim, log) = build(shards);
        sim.run_until(SimTime::from_us(10));
        assert_eq!(*log.borrow(), reference);
    }
}

/// Lookahead is derived from the *minimum* cross-shard propagation
/// delay when links differ.
#[test]
fn lookahead_is_min_cross_shard_propagation() {
    let mut b = SimBuilder::new();
    let a = b.add_component(
        "a",
        Box::new(OneShot {
            at: SimTime::ZERO,
            frame_len: 64,
        }),
        1,
    );
    let log = Rc::new(RefCell::new(Vec::new()));
    let sink = b.add_component("s", Box::new(OrderSink { log: log.clone() }), 2);
    let c = b.add_component(
        "c",
        Box::new(OneShot {
            at: SimTime::ZERO,
            frame_len: 64,
        }),
        1,
    );
    b.connect_asym(
        a,
        0,
        sink,
        0,
        LinkSpec::ten_gig().with_propagation(SimDuration::from_ns(40)),
        LinkSpec::ten_gig().with_propagation(SimDuration::from_ns(25)),
    );
    b.connect(
        c,
        0,
        sink,
        1,
        LinkSpec::ten_gig().with_propagation(SimDuration::from_ns(7)),
    );
    let mut plan = ShardPlan::new(3, 2);
    plan.assign(a, 0);
    plan.assign(c, 0);
    plan.assign(sink, 1);
    let sim = b.build_sharded(plan);
    assert_eq!(sim.lookahead(), Some(SimDuration::from_ns(7)));
}
