//! Property test: the hierarchical [`TimerWheel`] dispatches events in
//! exactly the order a reference `BinaryHeap` min-ordered on
//! `(time, seq)` would — including same-instant ties — across
//! randomized interleaved push/pop schedules. This is the determinism
//! contract of the event-kernel swap: byte-for-byte the order the old
//! `BinaryHeap<EventEntry>` kernel produced.

use osnt_netsim::TimerWheel;
use osnt_time::SimTime;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

proptest! {
    #[test]
    fn wheel_matches_reference_heap_interleaved(
        ops in proptest::collection::vec((any::<u8>(), 0u64..5, any::<u64>()), 1..500)
    ) {
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (kind, class, raw) in ops {
            if kind % 3 != 0 || heap.is_empty() {
                // Push. The offset class picks the time scale so every
                // wheel level and the overflow heap get exercised;
                // class 4 is an exact tie on `now` (same-instant
                // events, ordered by seq alone).
                let off = match class {
                    0 => raw % 100,                 // same / adjacent slot
                    1 => raw % 1_000_000,           // level 0/1
                    2 => raw % 10_000_000_000,      // level 2/3
                    3 => raw % 100_000_000_000_000, // top level + overflow
                    _ => 0,                         // tie on `now`
                };
                let t = now + off;
                wheel.push(SimTime::from_ps(t), seq, seq);
                heap.push(Reverse((t, seq)));
                seq += 1;
            } else {
                // Pop: peek and pop must both agree with the reference.
                let &Reverse((rt, rs)) = heap.peek().expect("checked non-empty");
                let peeked = wheel.peek().expect("wheel tracks heap");
                prop_assert_eq!((peeked.0.as_ps(), peeked.1), (rt, rs));
                let (t, s, item) = wheel.pop().expect("wheel tracks heap");
                let Reverse((rt, rs)) = heap.pop().expect("checked");
                prop_assert_eq!((t.as_ps(), s, item), (rt, rs, rs));
                now = t.as_ps();
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain whatever is left: the tail order must match too.
        while let Some(Reverse((rt, rs))) = heap.pop() {
            let (t, s, item) = wheel.pop().expect("wheel drains with heap");
            prop_assert_eq!((t.as_ps(), s, item), (rt, rs, rs));
        }
        prop_assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_matches_reference_heap_bulk(
        times in proptest::collection::vec(0u64..10_000_000, 1..300)
    ) {
        // Fill-then-drain with clustered times: quantising to 1 ns
        // makes duplicate instants common, so the seq tiebreak is
        // load-bearing, and many events share one wheel slot.
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        for (i, t) in times.iter().enumerate() {
            let t = t / 1000 * 1000;
            wheel.push(SimTime::from_ps(t), i as u64, i as u64);
            heap.push(Reverse((t, i as u64)));
        }
        while let Some(Reverse((rt, rs))) = heap.pop() {
            let (t, s, item) = wheel.pop().expect("same length");
            prop_assert_eq!((t.as_ps(), s, item), (rt, rs, rs));
        }
        prop_assert!(wheel.is_empty());
    }
}
