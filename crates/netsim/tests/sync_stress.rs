//! Forced-contention stress coverage for the shard executive's
//! lock-light primitives: the `SpscRing` mutex-spill path and
//! `SpinBarrier` poison propagation. The unit tests in `sync.rs` pin
//! the semantics under friendly schedules; these loops hammer the
//! *unfriendly* ones — tiny rings with a producer that outruns the
//! consumer (every push a coin-flip between the lock-free slot and the
//! spill lock), and barriers whose workers die mid-window at every
//! possible round.

use osnt_netsim::{SpinBarrier, SpscRing};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// How hard to push. Override with OSNT_SYNC_STRESS for soak runs.
fn stress_iters(default: u64) -> u64 {
    std::env::var("OSNT_SYNC_STRESS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[test]
fn ring_spill_under_sustained_overrun_loses_nothing() {
    // Capacity 1 makes nearly every push race the consumer for the
    // spill lock: the ring is almost always "full", so the producer is
    // forced down the mutex path while the consumer concurrently
    // drains both the slot and the spill vector. Every value must
    // arrive exactly once, across many capacities and rounds.
    let total = stress_iters(30_000);
    for capacity in [1usize, 2, 3, 7] {
        let ring = Arc::new(SpscRing::new(capacity));
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..total {
                    ring.push(i);
                    if i % 64 == 0 {
                        thread::yield_now(); // vary the interleaving
                    }
                }
            })
        };
        let mut got = Vec::with_capacity(total as usize);
        while got.len() < total as usize {
            ring.drain_into(&mut got);
            thread::yield_now();
        }
        producer.join().unwrap();
        ring.drain_into(&mut got);
        assert!(ring.is_empty(), "cap {capacity}: ring must drain clean");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            got.len(),
            "cap {capacity}: duplicated delivery"
        );
        assert_eq!(
            sorted,
            (0..total).collect::<Vec<_>>(),
            "cap {capacity}: lost entries"
        );
    }
}

#[test]
fn ring_spill_ping_pong_rounds_stay_fifo() {
    // Barrier-phased like the real executive, but with the ring sized
    // far below the burst so every round exercises slot reuse *after*
    // a spill. Within a round the drain must be exactly FIFO (ring
    // part first, spill part after, both in push order).
    let rounds = stress_iters(2_000);
    let ring = SpscRing::new(3);
    let mut next = 0u64;
    for round in 0..rounds {
        let burst = 1 + (round % 13); // 1..=13, hits both paths
        let start = next;
        for _ in 0..burst {
            ring.push(next);
            next += 1;
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(
            out,
            (start..next).collect::<Vec<_>>(),
            "round {round}: drain must preserve push order"
        );
        assert!(ring.is_empty());
    }
}

#[test]
fn barrier_full_rounds_under_oversubscription() {
    // More workers than the host has cores (CI runners are often
    // 1-core) forces the yield path; every round's increments must be
    // visible to every worker between barriers, hundreds of times.
    let workers = 8usize;
    let rounds = stress_iters(300);
    let barrier = Arc::new(SpinBarrier::new(workers));
    let counter = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                let mut sense = false;
                for round in 1..=rounds {
                    counter.fetch_add(1, Ordering::SeqCst);
                    barrier.wait(&mut sense).unwrap();
                    assert_eq!(counter.load(Ordering::SeqCst), round * workers as u64);
                    barrier.wait(&mut sense).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn barrier_poison_releases_workers_at_every_round() {
    // Sweep the kill point: one worker dies (unwinds through its
    // poison guard) at round k while its peers are mid-rendezvous.
    // Every survivor must return `BarrierPoisoned` — at whatever round
    // it happens to be parked in — and never deadlock. This is the
    // executive's one-panic-means-clean-all-stop contract under every
    // phase alignment, not just the first.
    struct PoisonGuard(Arc<SpinBarrier>);
    impl Drop for PoisonGuard {
        fn drop(&mut self) {
            self.0.poison();
        }
    }
    let sweeps = stress_iters(20);
    for kill_round in 0..sweeps {
        let workers = 4usize;
        let barrier = Arc::new(SpinBarrier::new(workers));
        let released = Arc::new(AtomicUsize::new(0));
        let survivors: Vec<_> = (0..workers - 1)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let released = Arc::clone(&released);
                thread::spawn(move || {
                    let mut sense = false;
                    loop {
                        if barrier.wait(&mut sense).is_err() {
                            released.fetch_add(1, Ordering::SeqCst);
                            return;
                        }
                    }
                })
            })
            .collect();
        let dying = {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let guard = PoisonGuard(Arc::clone(&barrier));
                let mut sense = false;
                for _ in 0..kill_round {
                    if barrier.wait(&mut sense).is_err() {
                        unreachable!("nobody else poisons");
                    }
                }
                drop(guard); // the unwind path, without the panic noise
            })
        };
        dying.join().unwrap();
        for s in survivors {
            s.join().unwrap();
        }
        assert_eq!(
            released.load(Ordering::SeqCst),
            workers - 1,
            "kill at round {kill_round}: every survivor must be released"
        );
        let mut sense = false;
        assert!(
            barrier.wait(&mut sense).is_err(),
            "kill at round {kill_round}: poison must be permanent"
        );
    }
}

#[test]
fn ring_and_barrier_compose_like_the_executive() {
    // A miniature two-worker shard executive: each window, worker A
    // pushes a burst into its ring, both meet at the barrier, worker B
    // drains and checks, both meet again. The ring is deliberately
    // smaller than the burst so every window crosses the spill path;
    // the barrier is what publishes the spill contents. Any missing or
    // duplicated entry is a memory-ordering bug in the pair.
    let windows = stress_iters(1_000);
    let ring = Arc::new(SpscRing::new(2));
    let barrier = Arc::new(SpinBarrier::new(2));
    let producer = {
        let ring = Arc::clone(&ring);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            let mut sense = false;
            let mut next = 0u64;
            for _ in 0..windows {
                for _ in 0..5 {
                    ring.push(next);
                    next += 1;
                }
                barrier.wait(&mut sense).unwrap(); // burst published
                barrier.wait(&mut sense).unwrap(); // drain finished
            }
        })
    };
    let mut sense = false;
    let mut expect = 0u64;
    for window in 0..windows {
        barrier.wait(&mut sense).unwrap();
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(
            out,
            (expect..expect + 5).collect::<Vec<_>>(),
            "window {window}: burst must arrive whole and in order"
        );
        expect += 5;
        assert!(ring.is_empty());
        barrier.wait(&mut sense).unwrap();
    }
    producer.join().unwrap();
}
