//! Determinism parity of the sharded kernel: for every generated
//! topology and every shard count, the parallel run must produce
//! **byte-identical** observable state to the single-threaded kernel —
//! arrival logs (time, port, payload digest), per-port counters,
//! fault-injection tallies and the dispatched-event count.
//!
//! This is the non-negotiable contract of `osnt_netsim::shard`: the
//! `(time, source component, per-source sequence)` event key is
//! partition-independent, so any cut of the component graph replays
//! the same total order. The property test here pins that argument
//! against real topologies (independent port pairs, cross-shard
//! chains, fan-in, a stochastic `FaultyLink` mid-chain) at shard
//! counts 1, 2 and 4.

use osnt_netsim::{
    Component, ComponentId, FaultConfig, FaultStats, FaultyLink, Kernel, LinkSpec, LossModel,
    ShardPlan, SimBuilder,
};
use osnt_packet::{hash::crc32, Packet};
use osnt_time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One observed arrival: (time ps, rx port, frame digest).
type ArrivalLog = Rc<RefCell<Vec<(u64, usize, u32)>>>;

/// Constant-bit-rate source: `n` frames of `frame_len`, one per
/// `interval`, payload stamped with the frame index.
struct Cbr {
    n: u64,
    interval: SimDuration,
    frame_len: usize,
    sent: u64,
}

impl Component for Cbr {
    fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
        if self.n > 0 {
            k.schedule_timer(me, SimDuration::ZERO, 0);
        }
    }
    fn on_packet(&mut self, _: &mut Kernel, _: ComponentId, _: usize, _: Packet) {}
    fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, _tag: u64) {
        let mut data = vec![0u8; self.frame_len - 4];
        data[..8].copy_from_slice(&self.sent.to_be_bytes());
        let _ = k.transmit(me, 0, Packet::from_vec(data));
        self.sent += 1;
        if self.sent < self.n {
            k.schedule_timer(me, self.interval, 0);
        }
    }
}

/// Sink recording every arrival with a payload digest.
struct RecSink {
    log: ArrivalLog,
}

impl Component for RecSink {
    fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, port: usize, pkt: Packet) {
        self.log
            .borrow_mut()
            .push((k.now().as_ps(), port, crc32(pkt.data())));
    }
}

/// Everything we compare between runs.
#[derive(Debug, PartialEq)]
struct Observed {
    arrivals: Vec<Vec<(u64, usize, u32)>>,
    counters: Vec<(u64, u64, u64, u64, u64)>,
    fault: Option<FaultStats>,
    dispatched: u64,
}

/// Generator parameters for one random topology.
#[derive(Debug, Clone)]
struct Topo {
    /// Independent CBR→sink pairs (exercise the no-cross-wire path).
    pairs: usize,
    /// Add a cross-shard chain src → FaultyLink → sink.
    chain: bool,
    /// Add a two-source fan-in to one 2-port sink.
    fanin: bool,
    frames: u64,
    frame_len: usize,
    interval_ns: u64,
    fault_seed: u64,
    loss: f64,
}

/// Build the topology, returning (builder, per-sink logs, fault stats,
/// component count, and the list of wire-connected groups for plan
/// construction).
struct Built {
    builder: SimBuilder,
    logs: Vec<ArrivalLog>,
    fault: Option<Rc<RefCell<FaultStats>>>,
    groups: Vec<Vec<ComponentId>>,
    /// Every component id, in creation order (for counter snapshots).
    ids: Vec<ComponentId>,
}

fn build(t: &Topo) -> Built {
    let mut b = SimBuilder::new();
    let mut logs = Vec::new();
    let mut groups = Vec::new();
    let interval = SimDuration::from_ns(t.interval_ns);
    for i in 0..t.pairs {
        let src = b.add_component(
            &format!("cbr{i}"),
            Box::new(Cbr {
                n: t.frames,
                interval,
                frame_len: t.frame_len,
                sent: 0,
            }),
            1,
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        let sink = b.add_component(
            &format!("sink{i}"),
            Box::new(RecSink { log: log.clone() }),
            1,
        );
        b.connect(src, 0, sink, 0, LinkSpec::ten_gig());
        logs.push(log);
        groups.push(vec![src, sink]);
    }
    let mut fault = None;
    if t.chain {
        let src = b.add_component(
            "chain-src",
            Box::new(Cbr {
                n: t.frames,
                interval,
                frame_len: t.frame_len,
                sent: 0,
            }),
            1,
        );
        let (link, stats) = FaultyLink::new(FaultConfig {
            loss: if t.loss > 0.0 {
                LossModel::Uniform {
                    probability: t.loss,
                }
            } else {
                LossModel::None
            },
            seed: t.fault_seed,
            ..FaultConfig::default()
        })
        .expect("valid config");
        let mid = b.add_component("chain-fault", Box::new(link), 2);
        let log = Rc::new(RefCell::new(Vec::new()));
        let sink = b.add_component("chain-sink", Box::new(RecSink { log: log.clone() }), 1);
        b.connect(src, 0, mid, 0, LinkSpec::ten_gig());
        b.connect(mid, 1, sink, 0, LinkSpec::ten_gig());
        logs.push(log);
        fault = Some(stats);
        // Three components we deliberately cut across shards: each in
        // its own group so plans can separate them.
        groups.push(vec![src]);
        groups.push(vec![mid]);
        groups.push(vec![sink]);
    }
    if t.fanin {
        let a = b.add_component(
            "fan-a",
            Box::new(Cbr {
                n: t.frames,
                interval,
                frame_len: t.frame_len,
                sent: 0,
            }),
            1,
        );
        let c = b.add_component(
            "fan-b",
            Box::new(Cbr {
                n: t.frames,
                interval,
                frame_len: t.frame_len,
                sent: 0,
            }),
            1,
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        let sink = b.add_component("fan-sink", Box::new(RecSink { log: log.clone() }), 2);
        b.connect(a, 0, sink, 0, LinkSpec::ten_gig());
        b.connect(c, 0, sink, 1, LinkSpec::ten_gig());
        logs.push(log);
        groups.push(vec![a]);
        groups.push(vec![c]);
        groups.push(vec![sink]);
    }
    let ids = groups.iter().flatten().copied().collect();
    Built {
        builder: b,
        logs,
        fault,
        groups,
        ids,
    }
}

fn snapshot(
    logs: &[ArrivalLog],
    fault: &Option<Rc<RefCell<FaultStats>>>,
    counters: Vec<(u64, u64, u64, u64, u64)>,
    dispatched: u64,
) -> Observed {
    Observed {
        arrivals: logs.iter().map(|l| l.borrow().clone()).collect(),
        counters,
        fault: fault.as_ref().map(|f| *f.borrow()),
        dispatched,
    }
}

const HORIZON_MS: u64 = 2;

fn run_single(t: &Topo) -> Observed {
    let built = build(t);
    let mut sim = built.builder.build();
    let dispatched = sim.run_until(SimTime::from_ms(HORIZON_MS));
    let counters = built
        .ids
        .iter()
        .map(|&id| {
            let c = sim.kernel().counters(id, 0);
            (c.tx_frames, c.tx_bytes, c.tx_drops, c.rx_frames, c.rx_bytes)
        })
        .collect();
    snapshot(&built.logs, &built.fault, counters, dispatched)
}

fn run_sharded(t: &Topo, n_shards: usize) -> Observed {
    let built = build(t);
    let n = built.builder.component_count();
    // Deterministic cut: group g → shard g % n_shards. This splits
    // the chain and fan-in topologies across shards on purpose.
    let mut plan = ShardPlan::new(n, n_shards);
    for (g, members) in built.groups.iter().enumerate() {
        for &m in members {
            plan.assign(m, g % n_shards);
        }
    }
    let mut sim = built.builder.build_sharded(plan);
    let dispatched = sim.run_until(SimTime::from_ms(HORIZON_MS));
    let counters = built
        .ids
        .iter()
        .map(|&id| {
            let c = sim.counters(id, 0);
            (c.tx_frames, c.tx_bytes, c.tx_drops, c.rx_frames, c.rx_bytes)
        })
        .collect();
    snapshot(&built.logs, &built.fault, counters, dispatched)
}

fn assert_parity(t: &Topo) {
    let reference = run_single(t);
    // Something must actually happen or the test proves nothing.
    assert!(reference.dispatched > 0, "degenerate topology: {t:?}");
    for shards in [1, 2, 4] {
        let got = run_sharded(t, shards);
        assert_eq!(
            got, reference,
            "sharded run (shards={shards}) diverged from single-threaded: {t:?}"
        );
    }
}

proptest! {
    #[test]
    fn sharded_runs_match_single_threaded(
        pairs in 1usize..4,
        chain in any::<bool>(),
        fanin in any::<bool>(),
        frames in 1u64..40,
        frame_len in (0usize..4).prop_map(|i| [64usize, 128, 512, 1518][i]),
        interval_ns in (0usize..4).prop_map(|i| [68u64, 100, 1_000, 10_000][i]),
        fault_seed in any::<u64>(),
        loss in (0usize..3).prop_map(|i| [0.0f64, 0.1, 0.5][i]),
    ) {
        assert_parity(&Topo {
            pairs, chain, fanin, frames, frame_len, interval_ns, fault_seed, loss,
        });
    }
}

/// Quiescence path parity: `run_to_quiescence` drains to the same
/// state and event count for any shard count.
#[test]
fn quiescence_parity() {
    let t = Topo {
        pairs: 2,
        chain: true,
        fanin: true,
        frames: 25,
        frame_len: 256,
        interval_ns: 500,
        fault_seed: 7,
        loss: 0.2,
    };
    let reference = {
        let built = build(&t);
        let mut sim = built.builder.build();
        let d = sim.run_to_quiescence(1_000_000);
        (
            d,
            built
                .logs
                .iter()
                .map(|l| l.borrow().clone())
                .collect::<Vec<_>>(),
        )
    };
    for shards in [2, 4] {
        let built = build(&t);
        let n = built.builder.component_count();
        let mut plan = ShardPlan::new(n, shards);
        for (g, members) in built.groups.iter().enumerate() {
            for &m in members {
                plan.assign(m, g % shards);
            }
        }
        let mut sim = built.builder.build_sharded(plan);
        let d = sim.run_to_quiescence(1_000_000);
        assert_eq!(sim.pending_events(), 0);
        let logs: Vec<_> = built.logs.iter().map(|l| l.borrow().clone()).collect();
        assert_eq!(
            (d, logs),
            reference,
            "quiescence diverged at {shards} shards"
        );
    }
}

/// The auto-sharder keeps wire-connected groups together: independent
/// pairs spread across shards, and results still match.
#[test]
fn auto_sharding_parity() {
    let t = Topo {
        pairs: 4,
        chain: false,
        fanin: false,
        frames: 50,
        frame_len: 64,
        interval_ns: 68,
        fault_seed: 0,
        loss: 0.0,
    };
    let reference = run_single(&t);
    let built = build(&t);
    let mut sim = built.builder.build_auto_sharded(4);
    assert_eq!(sim.n_shards(), 4);
    assert!(
        sim.lookahead().is_none(),
        "independent pairs have no cross-shard wires"
    );
    let dispatched = sim.run_until(SimTime::from_ms(HORIZON_MS));
    let counters = built
        .ids
        .iter()
        .map(|&id| {
            let c = sim.counters(id, 0);
            (c.tx_frames, c.tx_bytes, c.tx_drops, c.rx_frames, c.rx_bytes)
        })
        .collect();
    let got = snapshot(&built.logs, &None, counters, dispatched);
    assert_eq!(got, reference);
}

/// Randomized-yield stress: with `OSNT_SHARD_STRESS` set, every worker
/// inserts pseudo-random `yield_now` bursts around its window phases,
/// shaking out schedules the quiet run never exhibits. Parity must
/// hold under every interleaving — this is the repo's no-TSan race
/// check (see CONTRIBUTING.md).
#[test]
fn yield_stress_keeps_parity() {
    let t = Topo {
        pairs: 2,
        chain: true,
        fanin: true,
        frames: 30,
        frame_len: 64,
        interval_ns: 68,
        fault_seed: 99,
        loss: 0.1,
    };
    let reference = run_single(&t);
    std::env::set_var("OSNT_SHARD_STRESS", "1");
    let result = std::panic::catch_unwind(|| {
        for round in 0..5u64 {
            std::env::set_var("OSNT_SHARD_STRESS", (round + 1).to_string());
            for shards in [2, 4] {
                let got = run_sharded(&t, shards);
                assert_eq!(
                    got, reference,
                    "stress round {round} diverged at {shards} shards"
                );
            }
        }
    });
    std::env::remove_var("OSNT_SHARD_STRESS");
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// A cross-shard link with zero propagation delay has no lookahead —
/// the build must refuse it rather than livelock.
#[test]
#[should_panic(expected = "zero propagation")]
fn zero_propagation_cross_link_rejected() {
    let mut b = SimBuilder::new();
    let log = Rc::new(RefCell::new(Vec::new()));
    let src = b.add_component(
        "src",
        Box::new(Cbr {
            n: 1,
            interval: SimDuration::from_ns(100),
            frame_len: 64,
            sent: 0,
        }),
        1,
    );
    let sink = b.add_component("sink", Box::new(RecSink { log }), 1);
    b.connect(
        src,
        0,
        sink,
        0,
        LinkSpec::ten_gig().with_propagation(SimDuration::ZERO),
    );
    let mut plan = ShardPlan::new(2, 2);
    plan.assign(src, 0);
    plan.assign(sink, 1);
    let _ = b.build_sharded(plan);
}
