//! A tiny, dependency-free, deterministic PRNG for the clock models.
//!
//! The oscillator drift model needs a noise source, but `osnt-time` sits at
//! the very bottom of the dependency graph, so it carries its own
//! xorshift64* generator instead of pulling in `rand`. Quality is more than
//! adequate for noise injection; it is **not** a cryptographic generator.

/// xorshift64* PRNG (Vigna, 2016). Deterministic and seedable.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has a fixed point at zero).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample from an approximately standard normal distribution.
    ///
    /// Sum of 12 uniforms minus 6 (Irwin–Hall): mean 0, variance 1,
    /// bounded in ±6. Plenty for oscillator noise; avoids transcendental
    /// functions so results are bit-stable across platforms with the same
    /// rounding mode.
    pub fn next_gaussian(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        acc - 6.0
    }

    /// Uniform value in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut r = XorShift64::new(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = XorShift64::new(11);
        for _ in 0..1000 {
            let v = r.next_range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }
}
