//! Free-running hardware clock model.
//!
//! The NetFPGA-10G timestamp counter is driven by a crystal oscillator.
//! Crystals are imperfect: they have a fixed frequency error (tens of ppm)
//! and a slowly wandering component (temperature, ageing). Undisciplined,
//! such a clock drifts by milliseconds per minute — useless for one-way
//! latency measurement across two cards. OSNT therefore disciplines the
//! counter from a GPS pulse-per-second input (see [`crate::gps`]).
//!
//! [`HwClock`] maps *true* simulation time to the local clock reading by
//! integrating a frequency-error process:
//!
//! ```text
//! d(offset)/dt = (freq_error_ppm + trim_ppm) * 1e-6
//! freq_error_ppm ~ random walk (+ fixed initial error)
//! local(t) = t + offset(t)
//! ```
//!
//! Readings are quantised to the 6.25 ns datapath tick, like hardware.

use crate::rng::XorShift64;
use crate::timestamp::HwTimestamp;
use crate::{SimTime, DATAPATH_TICK_PS};

/// Parameters of the oscillator error process.
#[derive(Debug, Clone)]
pub struct DriftModel {
    /// Fixed frequency error in parts-per-million. Typical commodity
    /// crystals are specified at ±50 ppm; a good TCXO at ±2 ppm.
    pub initial_freq_error_ppm: f64,
    /// Intensity of the random walk on the frequency error, in
    /// ppm·s^-1/2. Zero disables wander.
    pub random_walk_ppm: f64,
    /// Standard deviation of white phase noise added to each *reading*,
    /// in picoseconds (models sampling jitter in the capture flops).
    pub reading_jitter_ps: f64,
}

impl DriftModel {
    /// A perfect oscillator: no drift, no noise. Useful in unit tests and
    /// in experiments that want to isolate other effects.
    pub fn ideal() -> Self {
        DriftModel {
            initial_freq_error_ppm: 0.0,
            random_walk_ppm: 0.0,
            reading_jitter_ps: 0.0,
        }
    }

    /// A commodity crystal as found on an FPGA board: +18 ppm fixed error,
    /// mild wander, ~50 ps sampling jitter.
    pub fn commodity_xo() -> Self {
        DriftModel {
            initial_freq_error_ppm: 18.0,
            random_walk_ppm: 0.05,
            reading_jitter_ps: 50.0,
        }
    }

    /// A temperature-compensated oscillator: ±1.5 ppm class.
    pub fn tcxo() -> Self {
        DriftModel {
            initial_freq_error_ppm: 1.5,
            random_walk_ppm: 0.01,
            reading_jitter_ps: 30.0,
        }
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        DriftModel::commodity_xo()
    }
}

/// A free-running (optionally servo-trimmed) hardware clock.
#[derive(Debug, Clone)]
pub struct HwClock {
    model: DriftModel,
    rng: XorShift64,
    /// Last true instant up to which the error process was integrated.
    last_true: SimTime,
    /// Accumulated local-minus-true offset at `last_true`, picoseconds.
    offset_ps: f64,
    /// Current oscillator frequency error (wandering), ppm.
    freq_error_ppm: f64,
    /// Servo-applied frequency trim, ppm (set by the GPS discipline).
    trim_ppm: f64,
}

impl HwClock {
    /// Create a clock with the given error model and noise seed.
    pub fn new(model: DriftModel, seed: u64) -> Self {
        let freq = model.initial_freq_error_ppm;
        HwClock {
            model,
            rng: XorShift64::new(seed),
            last_true: SimTime::ZERO,
            offset_ps: 0.0,
            freq_error_ppm: freq,
            trim_ppm: 0.0,
        }
    }

    /// A perfect clock (no drift): local time equals true time.
    pub fn ideal() -> Self {
        HwClock::new(DriftModel::ideal(), 0)
    }

    /// Integrate the error process up to true time `t`. Calling with a
    /// time before the last advance is a no-op (the clock state is
    /// monotone in true time).
    pub fn advance_to(&mut self, t: SimTime) {
        let Some(dt) = t.checked_duration_since(self.last_true) else {
            return;
        };
        if dt.as_ps() == 0 {
            return;
        }
        let dt_s = dt.as_secs_f64();
        // Phase accumulates at the current rate error. 1 ppm = 1e6 ps/s.
        self.offset_ps += (self.freq_error_ppm + self.trim_ppm) * 1e6 * dt_s;
        // Frequency random-walks.
        if self.model.random_walk_ppm > 0.0 {
            self.freq_error_ppm +=
                self.model.random_walk_ppm * dt_s.sqrt() * self.rng.next_gaussian();
        }
        self.last_true = t;
    }

    /// Read the clock at true time `t` as the hardware would: advance the
    /// error process, add reading jitter, quantise to the 6.25 ns tick and
    /// encode as a 32.32 timestamp.
    pub fn read(&mut self, t: SimTime) -> HwTimestamp {
        self.advance_to(t);
        let mut local_ps = t.as_ps() as f64 + self.offset_ps;
        if self.model.reading_jitter_ps > 0.0 {
            local_ps += self.model.reading_jitter_ps * self.rng.next_gaussian();
        }
        let local_ps = if local_ps < 0.0 { 0 } else { local_ps as u64 };
        let quantised = (local_ps / DATAPATH_TICK_PS) * DATAPATH_TICK_PS;
        HwTimestamp::from_ps_unquantised(quantised)
    }

    /// Current local-minus-true offset in picoseconds (positive = clock
    /// runs fast). Does not advance the process.
    pub fn offset_ps(&self) -> f64 {
        self.offset_ps
    }

    /// Current wandering frequency error, ppm (excluding servo trim).
    pub fn freq_error_ppm(&self) -> f64 {
        self.freq_error_ppm
    }

    /// Servo trim currently applied, ppm.
    pub fn trim_ppm(&self) -> f64 {
        self.trim_ppm
    }

    /// Effective rate error = oscillator error + servo trim, ppm.
    pub fn effective_rate_ppm(&self) -> f64 {
        self.freq_error_ppm + self.trim_ppm
    }

    /// Set the servo frequency trim (called by the GPS discipline).
    pub fn set_trim_ppm(&mut self, trim: f64) {
        self.trim_ppm = trim;
    }

    /// Apply an instantaneous phase step of `delta_ps` (positive steps the
    /// clock forward). Real counters implement this by loading a new value
    /// into the timestamp register.
    pub fn step_phase_ps(&mut self, delta_ps: f64) {
        self.offset_ps += delta_ps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimDuration, PS_PER_SEC};

    #[test]
    fn ideal_clock_tracks_true_time() {
        let mut c = HwClock::ideal();
        for ns in [0u64, 10, 1_000, 1_000_000] {
            let ts = c.read(SimTime::from_ns(ns));
            let expect = (ns * 1000 / DATAPATH_TICK_PS) * DATAPATH_TICK_PS;
            // Tick quantisation is exact; the 32.32 wire encoding adds
            // up to one fraction unit (~233 ps).
            assert!(
                ts.to_ps().abs_diff(expect) <= 233,
                "read {} vs expected {expect}",
                ts.to_ps()
            );
        }
    }

    #[test]
    fn fixed_ppm_error_accumulates_linearly() {
        let model = DriftModel {
            initial_freq_error_ppm: 10.0,
            random_walk_ppm: 0.0,
            reading_jitter_ps: 0.0,
        };
        let mut c = HwClock::new(model, 1);
        c.advance_to(SimTime::from_secs(1));
        // 10 ppm over 1 s = 10 µs = 1e7 ps.
        assert!(
            (c.offset_ps() - 1.0e7).abs() < 1.0,
            "offset {}",
            c.offset_ps()
        );
        c.advance_to(SimTime::from_secs(2));
        assert!((c.offset_ps() - 2.0e7).abs() < 1.0);
    }

    #[test]
    fn trim_cancels_fixed_error() {
        let model = DriftModel {
            initial_freq_error_ppm: 10.0,
            random_walk_ppm: 0.0,
            reading_jitter_ps: 0.0,
        };
        let mut c = HwClock::new(model, 1);
        c.set_trim_ppm(-10.0);
        c.advance_to(SimTime::from_secs(100));
        assert!(c.offset_ps().abs() < 1e-6);
    }

    #[test]
    fn advance_is_monotone_and_idempotent() {
        let mut c = HwClock::new(DriftModel::commodity_xo(), 3);
        c.advance_to(SimTime::from_secs(5));
        let off = c.offset_ps();
        // Going backwards or re-advancing to the same instant changes nothing.
        c.advance_to(SimTime::from_secs(4));
        c.advance_to(SimTime::from_secs(5));
        assert_eq!(c.offset_ps(), off);
    }

    #[test]
    fn phase_step_moves_reading() {
        let mut c = HwClock::ideal();
        c.step_phase_ps(1.0e6); // +1 µs
        let ts = c.read(SimTime::from_secs(1));
        let err = ts.to_ps() as i64 - (PS_PER_SEC + 1_000_000) as i64;
        assert!(err.abs() <= DATAPATH_TICK_PS as i64 + 233, "err {err}");
    }

    #[test]
    fn readings_are_quantised_to_tick() {
        let mut c = HwClock::new(DriftModel::commodity_xo(), 9);
        for i in 0..100u64 {
            let ts = c.read(SimTime::from_ns(i * 137 + 13));
            // The counter value is a whole number of ticks; after the
            // 32.32 wire encoding the decoded picoseconds sit within one
            // fraction unit (~233 ps) below a tick boundary.
            let rem = ts.to_ps() % DATAPATH_TICK_PS;
            assert!(
                rem <= 233 || rem >= DATAPATH_TICK_PS - 233,
                "reading {} ps is {rem} ps off a tick",
                ts.to_ps()
            );
        }
    }

    #[test]
    fn random_walk_changes_frequency() {
        let model = DriftModel {
            initial_freq_error_ppm: 0.0,
            random_walk_ppm: 0.5,
            reading_jitter_ps: 0.0,
        };
        let mut c = HwClock::new(model, 42);
        let f0 = c.freq_error_ppm();
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            t += SimDuration::from_secs(1);
            c.advance_to(t);
        }
        assert_ne!(c.freq_error_ppm(), f0);
    }

    #[test]
    fn commodity_clock_drifts_visibly_within_a_minute() {
        let mut c = HwClock::new(DriftModel::commodity_xo(), 7);
        c.advance_to(SimTime::from_secs(60));
        // 18 ppm * 60 s ≈ 1.08 ms — far beyond sub-µs precision.
        assert!(c.offset_ps().abs() > 1e8, "offset {}", c.offset_ps());
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut c = HwClock::new(DriftModel::commodity_xo(), 99);
            c.advance_to(SimTime::from_secs(10));
            (c.offset_ps(), c.freq_error_ppm())
        };
        assert_eq!(mk(), mk());
    }
}
