#![warn(missing_docs)]
//! # osnt-time — hardware timekeeping for OSNT-rs
//!
//! OSNT associates every packet with a **64-bit timestamp taken at the MAC**
//! with a resolution of **6.25 ns** (one cycle of the NetFPGA-10G's 160 MHz
//! datapath clock), and keeps that clock disciplined to real time with an
//! external **GPS pulse-per-second (PPS)** input.
//!
//! This crate models that whole timekeeping chain:
//!
//! * [`SimTime`] — the simulator's notion of *true* time: an integer number
//!   of picoseconds since the start of the simulation. Every other
//!   timestamp in OSNT-rs is derived from it.
//! * [`HwTimestamp`] — the on-the-wire 64-bit, 32.32 fixed-point timestamp
//!   format used by the OSNT hardware (integer seconds in the upper 32
//!   bits, fractional seconds in the lower 32).
//! * [`HwClock`] — a free-running oscillator with frequency error and
//!   random-walk drift, quantised to the 6.25 ns datapath tick.
//! * [`GpsDiscipline`] — a PI servo that steers a [`HwClock`] from PPS
//!   edges, reproducing the paper's "clock drift and phase coordination
//!   maintained by a GPS input".
//!
//! The models are deterministic: all randomness comes from an internal
//! seeded PRNG ([`rng::XorShift64`]).

pub mod clock;
pub mod gps;
pub mod progress;
pub mod rng;
pub mod signal;
pub mod timestamp;

pub use clock::{DriftModel, HwClock};
pub use gps::{
    run_pps_session, run_pps_session_with_signal, DisciplineState, GpsDiscipline, PpsSample,
    ServoGains,
};
pub use progress::ProgressProbe;
pub use signal::GpsSignal;
pub use timestamp::HwTimestamp;

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// One tick of the OSNT datapath clock (160 MHz): 6.25 ns, i.e. 6250 ps.
pub const DATAPATH_TICK_PS: u64 = 6_250;

/// Nominal datapath clock frequency of the NetFPGA-10G design, in Hz.
pub const DATAPATH_HZ: u64 = 160_000_000;

/// Simulation ("true") time: picoseconds since the simulation epoch.
///
/// `SimTime` is a transparent `u64` newtype. Picosecond resolution is
/// chosen so that one bit time at 10 Gb/s is exactly 100 ps and one
/// datapath tick is exactly 6250 ps — all the arithmetic the 10 GbE wire
/// imposes stays exact in integers.
///
/// The full range covers ~213 days of simulated time, far beyond any
/// experiment in this repository.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Picoseconds since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Nanoseconds since the epoch (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }
    /// Microseconds since the epoch (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / PS_PER_US
    }
    /// Time as floating-point seconds (for reporting only — never for
    /// event arithmetic).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
    /// Checked subtraction: `None` if `earlier` is after `self`.
    #[inline]
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
    /// Duration since `earlier`; panics if `earlier > self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        self.checked_duration_since(earlier)
            .expect("duration_since: earlier instant is after self")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }
    /// Construct from floating-point seconds, rounding to the nearest
    /// picosecond. Intended for configuration plumbing, not event math.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }
    /// Floating-point seconds (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// Floating-point nanoseconds (reporting only).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Multiply by an integer count, saturating at the maximum.
    #[inline]
    pub fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
    /// Checked multiply by an integer count.
    #[inline]
    pub fn checked_mul(self, n: u64) -> Option<SimDuration> {
        self.0.checked_mul(n).map(SimDuration)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past ~213 days"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Render a picosecond count with an adaptive unit (`ps`, `ns`, `us`,
/// `ms`, `s`), used by the `Display` impls.
fn format_ps(ps: u64) -> String {
    if ps == 0 {
        return "0ps".to_string();
    }
    if ps.is_multiple_of(PS_PER_SEC) {
        format!("{}s", ps / PS_PER_SEC)
    } else if ps.is_multiple_of(PS_PER_MS) {
        format!("{}ms", ps / PS_PER_MS)
    } else if ps.is_multiple_of(PS_PER_US) {
        format!("{}us", ps / PS_PER_US)
    } else if ps.is_multiple_of(PS_PER_NS) {
        format!("{}ns", ps / PS_PER_NS)
    } else {
        format!("{}ps", ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_us(5).as_ps(), 5_000_000);
        assert_eq!(SimTime::from_ms(5).as_ps(), 5_000_000_000);
        assert_eq!(SimTime::from_secs(5).as_ps(), 5_000_000_000_000);
        assert_eq!(SimTime::from_secs(3).as_ns(), 3_000_000_000);
    }

    #[test]
    fn datapath_tick_is_6_25_ns() {
        assert_eq!(DATAPATH_TICK_PS, 6250);
        // 160 MHz * 6.25 ns = exactly one second.
        assert_eq!(DATAPATH_TICK_PS * DATAPATH_HZ, PS_PER_SEC);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_ns(50);
        assert_eq!((t + d).as_ns(), 150);
        assert_eq!((t - d).as_ns(), 50);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.duration_since(SimTime::ZERO).as_ns(), 100);
    }

    #[test]
    fn checked_duration_since_ordering() {
        let early = SimTime::from_ns(10);
        let late = SimTime::from_ns(20);
        assert_eq!(
            late.checked_duration_since(early),
            Some(SimDuration::from_ns(10))
        );
        assert_eq!(early.checked_duration_since(late), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimDuration::from_ns(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ps(0).to_string(), "0ps");
        assert_eq!(SimTime::from_ns(7).to_string(), "7ns");
        assert_eq!(SimTime::from_us(3).to_string(), "3us");
        assert_eq!(SimTime::from_secs(2).to_string(), "2s");
        assert_eq!(SimTime::from_ps(6250).to_string(), "6250ps");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-12).as_ps(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_ps(), PS_PER_SEC / 2);
    }
}
