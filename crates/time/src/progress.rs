//! Shared progress heartbeats for supervised runs.
//!
//! A long experiment is *loss-limited on the host side*: the hardware
//! model never wedges, but the harness around it can (a livelocked
//! component scheduling zero-delay events forever, a control channel
//! that swallows every barrier, a stuck shard worker). The supervisor's
//! watchdog detects those by watching **simulated-time-advance
//! counters**: every event dispatcher publishes the simulated time it
//! has reached into a [`ProgressProbe`], and a monitor thread declares
//! the run wedged when that high-water mark stops moving in wall-clock
//! time — dispatching events without advancing virtual time is a
//! livelock, not progress.
//!
//! The probe also carries the cooperative **abort flag**: the watchdog
//! (or any other supervisor policy) raises it, and the dispatch loops
//! check it between events / at window boundaries and return early, so
//! a wedged run becomes a journaled `RunAborted` partial report instead
//! of a hung CI job.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A set of shared counters exported by an event dispatcher (the
/// single-threaded kernel, every shard worker of a sharded run, or the
/// OFLOPS controller's control channel) and observed by a watchdog
/// thread. All operations are lock-free; writers use relaxed-ordering
/// atomics because the watchdog only needs *eventual* visibility.
#[derive(Default)]
pub struct ProgressProbe {
    /// High-water mark of simulated time reached, in picoseconds.
    now_ps: AtomicU64,
    /// Monotone count of dispatched events / handled messages. Not a
    /// liveness signal (a livelock keeps ticking) — diagnostic detail
    /// for the `last_progress` field of an abort report.
    ticks: AtomicU64,
    /// Cooperative cancellation flag.
    abort: AtomicBool,
}

impl ProgressProbe {
    /// A fresh probe behind an [`Arc`], ready to be attached to a
    /// simulation and handed to a watchdog.
    pub fn new() -> Arc<Self> {
        Arc::new(ProgressProbe::default())
    }

    /// Publish that the dispatcher has reached simulated time `ps`.
    /// Monotone (`fetch_max`), so concurrent shard workers publishing
    /// different window positions never move the mark backwards.
    #[inline]
    pub fn advance_time(&self, ps: u64) {
        self.now_ps.fetch_max(ps, Ordering::Relaxed);
    }

    /// Count one dispatched event / handled message.
    #[inline]
    pub fn tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` dispatched events at once (batch dispatch).
    #[inline]
    pub fn tick_by(&self, n: u64) {
        self.ticks.fetch_add(n, Ordering::Relaxed);
    }

    /// Simulated-time high-water mark, picoseconds.
    pub fn now_ps(&self) -> u64 {
        self.now_ps.load(Ordering::Relaxed)
    }

    /// Events dispatched so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Raise the cooperative abort flag. Idempotent; never blocks.
    pub fn request_abort(&self) {
        self.abort.store(true, Ordering::Release);
    }

    /// True once [`ProgressProbe::request_abort`] has been called.
    #[inline]
    pub fn abort_requested(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ProgressProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressProbe")
            .field("now_ps", &self.now_ps())
            .field("ticks", &self.ticks())
            .field("abort", &self.abort_requested())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_mark_is_monotone() {
        let p = ProgressProbe::new();
        p.advance_time(100);
        p.advance_time(50);
        assert_eq!(p.now_ps(), 100);
        p.advance_time(150);
        assert_eq!(p.now_ps(), 150);
    }

    #[test]
    fn ticks_accumulate() {
        let p = ProgressProbe::new();
        p.tick();
        p.tick_by(9);
        assert_eq!(p.ticks(), 10);
    }

    #[test]
    fn abort_flag_latches() {
        let p = ProgressProbe::new();
        assert!(!p.abort_requested());
        p.request_abort();
        p.request_abort();
        assert!(p.abort_requested());
    }

    #[test]
    fn probe_is_shared_across_threads() {
        let p = ProgressProbe::new();
        let q = p.clone();
        let t = std::thread::spawn(move || {
            for i in 0..1000 {
                q.advance_time(i);
                q.tick();
            }
            q.request_abort();
        });
        t.join().unwrap();
        assert_eq!(p.now_ps(), 999);
        assert_eq!(p.ticks(), 1000);
        assert!(p.abort_requested());
    }
}
