//! The OSNT 64-bit hardware timestamp format.
//!
//! The OSNT design stamps packets with a 64-bit value in **32.32 fixed
//! point**: the upper 32 bits count whole seconds, the lower 32 bits count
//! fractions of a second in units of 2⁻³² s (~232.8 ps). The hardware
//! counter itself advances once per 160 MHz datapath cycle, i.e. every
//! **6.25 ns**, so the *resolution* of a stamp is 6.25 ns even though the
//! format could express finer values.
//!
//! [`HwTimestamp`] keeps both properties: conversions from [`SimTime`]
//! first quantise to the datapath tick, then encode in 32.32 fixed point.

use crate::{SimDuration, SimTime, DATAPATH_TICK_PS, PS_PER_SEC};
use core::fmt;

/// A 64-bit OSNT hardware timestamp in 32.32 fixed-point seconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HwTimestamp(pub u64);

impl HwTimestamp {
    /// Number of bytes a timestamp occupies when embedded in a packet.
    pub const WIRE_SIZE: usize = 8;

    /// Build a timestamp directly from the raw 64-bit register value.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        HwTimestamp(raw)
    }

    /// The raw 64-bit register value.
    #[inline]
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// Whole-seconds part (upper 32 bits).
    #[inline]
    pub const fn seconds(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Fractional part in units of 2⁻³² s (lower 32 bits).
    #[inline]
    pub const fn fraction(self) -> u32 {
        self.0 as u32
    }

    /// Encode a true time as the hardware would: quantise down to the
    /// 6.25 ns datapath tick, then express in 32.32 fixed point.
    pub fn from_sim_time(t: SimTime) -> Self {
        let quantised_ps = (t.as_ps() / DATAPATH_TICK_PS) * DATAPATH_TICK_PS;
        Self::encode_ps(quantised_ps)
    }

    /// Encode an *exact* picosecond value (no tick quantisation); used by
    /// tests and by software-timestamp baselines that are not bound to the
    /// datapath clock.
    pub fn from_ps_unquantised(ps: u64) -> Self {
        Self::encode_ps(ps)
    }

    fn encode_ps(ps: u64) -> Self {
        let secs = ps / PS_PER_SEC;
        let frac_ps = ps % PS_PER_SEC;
        // fraction = frac_ps / 1e12 * 2^32, rounded to nearest.
        let frac = ((frac_ps as u128) << 32) / PS_PER_SEC as u128;
        debug_assert!(secs <= u32::MAX as u64, "timestamp seconds overflow");
        HwTimestamp((secs << 32) | frac as u64)
    }

    /// Decode back to picoseconds (rounded to the nearest picosecond).
    ///
    /// `decode → encode` is lossy below the 2⁻³² s fraction unit
    /// (~232.8 ps); combined with the 6.25 ns quantisation in
    /// [`HwTimestamp::from_sim_time`], round-tripping a `SimTime` is
    /// accurate to within one datapath tick.
    pub fn to_ps(self) -> u64 {
        let secs = (self.0 >> 32) * PS_PER_SEC;
        // frac_ps = fraction * 1e12 / 2^32, rounded.
        let frac_ps = ((self.0 as u32 as u128) * PS_PER_SEC as u128 + (1u128 << 31)) >> 32;
        secs + frac_ps as u64
    }

    /// Decode to a [`SimTime`].
    pub fn to_sim_time(self) -> SimTime {
        SimTime::from_ps(self.to_ps())
    }

    /// Difference between two stamps as a duration. Panics if
    /// `earlier > self` (stamps are expected to be causally ordered).
    pub fn duration_since(self, earlier: HwTimestamp) -> SimDuration {
        SimDuration::from_ps(
            self.to_ps()
                .checked_sub(earlier.to_ps())
                .expect("HwTimestamp::duration_since: earlier stamp is later"),
        )
    }

    /// Serialise to big-endian bytes for embedding into a packet.
    pub fn to_be_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Parse from big-endian bytes extracted from a packet.
    pub fn from_be_bytes(b: [u8; 8]) -> Self {
        HwTimestamp(u64::from_be_bytes(b))
    }
}

impl fmt::Debug for HwTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HwTimestamp({}.{:09}s)",
            self.seconds(),
            // fraction in nanoseconds for readability
            ((self.fraction() as u128 * 1_000_000_000) >> 32) as u64
        )
    }
}

/// Maximum error introduced by one encode/decode round trip, in
/// picoseconds: one datapath tick (quantisation) plus one fraction unit
/// (232.8 ps encoding granularity, rounded up).
pub const MAX_ROUNDTRIP_ERROR_PS: u64 = DATAPATH_TICK_PS + 233;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trips() {
        let ts = HwTimestamp::from_sim_time(SimTime::ZERO);
        assert_eq!(ts.as_raw(), 0);
        assert_eq!(ts.to_ps(), 0);
    }

    #[test]
    fn whole_seconds_are_exact() {
        for s in [0u64, 1, 2, 59, 3600, 86_400] {
            let ts = HwTimestamp::from_sim_time(SimTime::from_secs(s));
            assert_eq!(ts.seconds() as u64, s);
            assert_eq!(ts.fraction(), 0);
            assert_eq!(ts.to_ps(), s * PS_PER_SEC);
        }
    }

    #[test]
    fn quantisation_is_6_25_ns() {
        // 10 ns of true time lands on the 6.25 ns tick below it; the
        // 32.32 encoding then adds up to one fraction unit (~233 ps) of
        // representation error below the tick.
        let ts = HwTimestamp::from_sim_time(SimTime::from_ns(10));
        assert!(ts.to_ps().abs_diff(6_250) <= 233, "got {}", ts.to_ps());
        let ts = HwTimestamp::from_sim_time(SimTime::from_ps(6_250));
        assert!(ts.to_ps().abs_diff(6_250) <= 233, "got {}", ts.to_ps());
        // Ticks that are exact multiples of the fraction unit's period
        // (every 1 s worth) survive exactly.
        let ts = HwTimestamp::from_sim_time(SimTime::from_secs(2));
        assert_eq!(ts.to_ps(), 2 * PS_PER_SEC);
    }

    #[test]
    fn round_trip_error_is_bounded() {
        // Scan a mix of magnitudes; error must stay within a tick + one
        // fraction unit.
        let mut t: u64 = 1;
        for _ in 0..200_000 {
            let ts = HwTimestamp::from_sim_time(SimTime::from_ps(t));
            let back = ts.to_ps();
            assert!(back <= t, "decode must not be in the future: {t} -> {back}");
            assert!(
                t - back <= MAX_ROUNDTRIP_ERROR_PS,
                "error too large at {t}: {}",
                t - back
            );
            t = t.wrapping_mul(3).wrapping_add(7) % (5 * PS_PER_SEC);
        }
    }

    #[test]
    fn wire_round_trip() {
        let ts = HwTimestamp::from_sim_time(SimTime::from_ps(123_456_789_012));
        let bytes = ts.to_be_bytes();
        assert_eq!(HwTimestamp::from_be_bytes(bytes), ts);
    }

    #[test]
    fn duration_since_measures_latency() {
        let a = HwTimestamp::from_sim_time(SimTime::from_ns(1_000));
        let b = HwTimestamp::from_sim_time(SimTime::from_ns(2_000));
        let d = b.duration_since(a);
        assert_eq!(d.as_ns(), 1_000);
    }

    #[test]
    #[should_panic(expected = "earlier stamp is later")]
    fn duration_since_rejects_reversed_stamps() {
        let a = HwTimestamp::from_sim_time(SimTime::from_ns(1_000));
        let b = HwTimestamp::from_sim_time(SimTime::from_ns(2_000));
        let _ = a.duration_since(b);
    }

    #[test]
    fn ordering_matches_time() {
        let a = HwTimestamp::from_sim_time(SimTime::from_ns(10));
        let b = HwTimestamp::from_sim_time(SimTime::from_ns(20));
        assert!(a < b);
    }

    #[test]
    fn fraction_encoding_of_half_second() {
        let ts = HwTimestamp::from_ps_unquantised(PS_PER_SEC / 2);
        // Half a second = 2^31 fraction units.
        assert_eq!(ts.fraction(), 1u32 << 31);
    }
}
