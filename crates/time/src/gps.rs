//! GPS pulse-per-second clock discipline.
//!
//! The OSNT board takes a PPS signal from an external GPS receiver. On
//! every pulse the hardware compares the local timestamp counter to the
//! (known) top-of-second and steers the counter so that "clock drift and
//! phase coordination" stay bounded, which is what makes *one-way*
//! measurements between two cards meaningful.
//!
//! [`GpsDiscipline`] reproduces the standard GPSDO control law:
//!
//! 1. While the local offset is larger than [`GpsDiscipline::step_threshold_ps`],
//!    **phase-step** the counter (coarse lock, exactly what hardware does
//!    when it loads the register from GPS time).
//! 2. Once within the threshold, run a **PI servo** on the once-per-second
//!    offset samples, trimming the clock frequency. This drives both phase
//!    and frequency error toward zero and *holds* them there against
//!    oscillator wander.
//!
//! When the GPS signal drops (see [`crate::signal::GpsSignal`]) the
//! discipline enters **holdover**: the servo freezes its last learned
//! trim, the clock free-runs, and phase error accumulates at the
//! residual rate until pulses return — exactly what a GPSDO does when
//! the antenna goes dark.

use crate::clock::HwClock;
use crate::signal::GpsSignal;
use crate::SimTime;

/// Where the discipline currently is in its acquire/lock/holdover
/// lifecycle. Experiments use this to annotate measurement windows whose
/// timestamps were taken on a coasting clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisciplineState {
    /// Pulses arriving, offset not yet held within the lock threshold.
    Acquiring,
    /// Offset held within the lock threshold for the required pulses.
    Locked,
    /// GPS signal lost: free-running on the frozen trim.
    Holdover,
}

/// Proportional/integral gains of the PPS servo.
///
/// Units: the servo observes the phase offset in picoseconds once per
/// second and outputs a frequency trim in ppm. Because 1 ppm accumulates
/// 1e6 ps over one second, a proportional gain of `kp = 0.5` cancels half
/// of the observed offset per pulse.
#[derive(Debug, Clone, Copy)]
pub struct ServoGains {
    /// Proportional gain (fraction of the offset cancelled per second).
    pub kp: f64,
    /// Integral gain (accumulates to cancel persistent frequency error).
    pub ki: f64,
}

impl Default for ServoGains {
    fn default() -> Self {
        // Critically-damped-ish defaults found adequate across the drift
        // models in `DriftModel`.
        ServoGains { kp: 0.7, ki: 0.3 }
    }
}

/// PPS-driven PI discipline for a [`HwClock`].
#[derive(Debug, Clone)]
pub struct GpsDiscipline {
    gains: ServoGains,
    /// Integral accumulator over offset samples, in picoseconds.
    integral_ps: f64,
    /// Offsets larger than this are corrected with a phase step rather
    /// than the servo. Default 10 µs.
    pub step_threshold_ps: f64,
    /// Number of consecutive pulses with |offset| below
    /// `lock_threshold_ps` required to declare lock.
    pub lock_pulses: u32,
    /// Offset magnitude regarded as "locked". Default 1 µs (the paper's
    /// sub-µs precision claim).
    pub lock_threshold_ps: f64,
    in_spec_pulses: u32,
    pulses_seen: u64,
    last_offset_ps: f64,
    /// Frequency trim learned during acquisition (phase-step) pulses; the
    /// fine PI servo's output rides on top of it.
    base_trim_ppm: f64,
    in_holdover: bool,
    pulses_missed: u64,
    holdover_entries: u64,
}

impl GpsDiscipline {
    /// Create a discipline with the given gains and default thresholds.
    pub fn new(gains: ServoGains) -> Self {
        GpsDiscipline {
            gains,
            integral_ps: 0.0,
            step_threshold_ps: 10e6, // 10 µs
            lock_pulses: 3,
            lock_threshold_ps: 1e6, // 1 µs
            in_spec_pulses: 0,
            pulses_seen: 0,
            last_offset_ps: 0.0,
            base_trim_ppm: 0.0,
            in_holdover: false,
            pulses_missed: 0,
            holdover_entries: 0,
        }
    }

    /// Process one PPS edge occurring at true time `t` and steer `clock`.
    /// Returns the offset (local minus true, picoseconds) observed at the
    /// pulse, *before* correction.
    pub fn on_pps(&mut self, clock: &mut HwClock, t: SimTime) -> f64 {
        clock.advance_to(t);
        let offset = clock.offset_ps();
        self.pulses_seen += 1;
        self.last_offset_ps = offset;
        if self.in_holdover {
            // Reacquisition: the integral accumulated against pre-outage
            // conditions; re-anchor the base trim at whatever held during
            // holdover and restart the fine servo from there.
            self.in_holdover = false;
            self.base_trim_ppm = clock.trim_ppm();
            self.integral_ps = 0.0;
            self.in_spec_pulses = 0;
        }

        if offset.abs() > self.step_threshold_ps {
            // Coarse correction: jam the counter to GPS time, and fold
            // the drift rate observed over the pulse interval into the
            // frequency trim (a GPSDO's acquisition step). Without the
            // trim update an oscillator that drifts more than the step
            // threshold per second would be re-stepped forever and the
            // fine servo would never engage.
            clock.step_phase_ps(-offset);
            let interval_s = 1.0; // pulses are per-second by definition
            self.base_trim_ppm = clock.trim_ppm() - offset / (interval_s * 1e6);
            clock.set_trim_ppm(self.base_trim_ppm);
            self.integral_ps = 0.0;
            self.in_spec_pulses = 0;
        } else {
            // Fine correction: PI trim in ppm riding on the acquisition
            // trim. An offset of x ps over the next one-second interval
            // is cancelled by x/1e6 ppm.
            self.integral_ps += offset;
            let trim_ppm = self.base_trim_ppm
                - (self.gains.kp * offset + self.gains.ki * self.integral_ps) / 1e6;
            clock.set_trim_ppm(trim_ppm);
            if offset.abs() <= self.lock_threshold_ps {
                self.in_spec_pulses = self.in_spec_pulses.saturating_add(1);
            } else {
                self.in_spec_pulses = 0;
            }
        }
        offset
    }

    /// Handle a *missing* PPS edge at true time `t` (GPS signal lost).
    /// The clock keeps the trim it last learned and free-runs — holdover.
    /// Returns the (uncorrected) offset accumulated so far, picoseconds.
    pub fn on_pps_missed(&mut self, clock: &mut HwClock, t: SimTime) -> f64 {
        clock.advance_to(t);
        self.pulses_missed += 1;
        if !self.in_holdover {
            self.in_holdover = true;
            self.holdover_entries += 1;
            // Lock status describes the *servo loop*; with no input the
            // loop is open, whatever the phase error happens to be.
            self.in_spec_pulses = 0;
        }
        let offset = clock.offset_ps();
        self.last_offset_ps = offset;
        offset
    }

    /// Whether the servo has held the offset within the lock threshold for
    /// the required number of consecutive pulses.
    pub fn is_locked(&self) -> bool {
        !self.in_holdover && self.in_spec_pulses >= self.lock_pulses
    }

    /// Current lifecycle state (see [`DisciplineState`]).
    pub fn state(&self) -> DisciplineState {
        if self.in_holdover {
            DisciplineState::Holdover
        } else if self.is_locked() {
            DisciplineState::Locked
        } else {
            DisciplineState::Acquiring
        }
    }

    /// PPS edges that never arrived because the signal was down.
    pub fn pulses_missed(&self) -> u64 {
        self.pulses_missed
    }

    /// Number of distinct holdover episodes entered.
    pub fn holdover_entries(&self) -> u64 {
        self.holdover_entries
    }

    /// Offset observed at the most recent pulse, picoseconds.
    pub fn last_offset_ps(&self) -> f64 {
        self.last_offset_ps
    }

    /// Total pulses processed.
    pub fn pulses_seen(&self) -> u64 {
        self.pulses_seen
    }
}

impl Default for GpsDiscipline {
    fn default() -> Self {
        GpsDiscipline::new(ServoGains::default())
    }
}

/// Drive `clock` with one PPS per second for `seconds` simulated seconds
/// starting at `start`, returning the per-pulse pre-correction offsets in
/// picoseconds. Convenience wrapper used by experiments and tests.
pub fn run_pps_session(
    clock: &mut HwClock,
    disc: &mut GpsDiscipline,
    start: SimTime,
    seconds: u64,
) -> Vec<f64> {
    let mut offsets = Vec::with_capacity(seconds as usize);
    for s in 1..=seconds {
        let t = SimTime::from_ps(start.as_ps() + s * crate::PS_PER_SEC);
        offsets.push(disc.on_pps(clock, t));
    }
    offsets
}

/// One second of a [`run_pps_session_with_signal`] run: the pre-correction
/// offset and the discipline state right after that pulse slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpsSample {
    /// True time of the (possibly missing) pulse slot.
    pub t: SimTime,
    /// Local-minus-true offset in picoseconds, before any correction.
    pub offset_ps: f64,
    /// State after processing the slot.
    pub state: DisciplineState,
}

/// Like [`run_pps_session`], but consults a [`GpsSignal`]: at each
/// top-of-second where the signal has no fix the pulse is *missed* and
/// the discipline coasts in holdover. Returns one sample per second.
pub fn run_pps_session_with_signal(
    clock: &mut HwClock,
    disc: &mut GpsDiscipline,
    signal: &GpsSignal,
    start: SimTime,
    seconds: u64,
) -> Vec<PpsSample> {
    let mut samples = Vec::with_capacity(seconds as usize);
    for s in 1..=seconds {
        let t = SimTime::from_ps(start.as_ps() + s * crate::PS_PER_SEC);
        let offset_ps = if signal.has_fix(t) {
            disc.on_pps(clock, t)
        } else {
            disc.on_pps_missed(clock, t)
        };
        samples.push(PpsSample {
            t,
            offset_ps,
            state: disc.state(),
        });
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftModel;

    fn drifty_clock(seed: u64) -> HwClock {
        HwClock::new(DriftModel::commodity_xo(), seed)
    }

    #[test]
    fn servo_locks_commodity_oscillator() {
        let mut clock = drifty_clock(5);
        let mut disc = GpsDiscipline::default();
        let offsets = run_pps_session(&mut clock, &mut disc, SimTime::ZERO, 60);
        assert!(
            disc.is_locked(),
            "servo failed to lock: {:?}",
            &offsets[50..]
        );
        // Steady-state offset is sub-microsecond (paper: sub-µs precision).
        for &o in &offsets[30..] {
            assert!(o.abs() < 1e6, "offset {o} ps exceeds 1 µs after settling");
        }
    }

    #[test]
    fn undisciplined_clock_blows_past_a_microsecond() {
        let mut clock = drifty_clock(5);
        clock.advance_to(SimTime::from_secs(60));
        assert!(clock.offset_ps().abs() > 1e6);
    }

    #[test]
    fn large_initial_offset_is_phase_stepped() {
        let mut clock = HwClock::ideal();
        clock.step_phase_ps(5e7); // 50 µs off
        let mut disc = GpsDiscipline::default();
        let first = disc.on_pps(&mut clock, SimTime::from_secs(1));
        assert!(first > 4.9e7);
        // After the step the offset is gone immediately.
        assert!(clock.offset_ps().abs() < 1.0);
    }

    #[test]
    fn integral_term_cancels_fixed_frequency_error() {
        let model = DriftModel {
            initial_freq_error_ppm: 25.0,
            random_walk_ppm: 0.0,
            reading_jitter_ps: 0.0,
        };
        let mut clock = HwClock::new(model, 1);
        let mut disc = GpsDiscipline::default();
        run_pps_session(&mut clock, &mut disc, SimTime::ZERO, 120);
        // Servo trim must have learned ≈ -25 ppm.
        assert!(
            (clock.trim_ppm() + 25.0).abs() < 1.0,
            "trim {} ppm",
            clock.trim_ppm()
        );
        assert!(disc.is_locked());
    }

    #[test]
    fn lock_is_reported_only_after_consecutive_good_pulses() {
        let mut clock = HwClock::ideal();
        let mut disc = GpsDiscipline::default();
        disc.on_pps(&mut clock, SimTime::from_secs(1));
        assert!(!disc.is_locked());
        disc.on_pps(&mut clock, SimTime::from_secs(2));
        disc.on_pps(&mut clock, SimTime::from_secs(3));
        assert!(disc.is_locked());
    }

    #[test]
    fn pulse_counter_increments() {
        let mut clock = HwClock::ideal();
        let mut disc = GpsDiscipline::default();
        run_pps_session(&mut clock, &mut disc, SimTime::ZERO, 10);
        assert_eq!(disc.pulses_seen(), 10);
    }

    #[test]
    fn holdover_coasts_and_reacquires() {
        use crate::SimDuration;
        let mut clock = drifty_clock(5);
        let mut disc = GpsDiscipline::default();
        // 60 s of lock, 30 s of outage, 60 s of reacquisition.
        let signal = GpsSignal::outage(SimTime::from_secs(60), SimDuration::from_secs(30));
        let samples =
            run_pps_session_with_signal(&mut clock, &mut disc, &signal, SimTime::ZERO, 150);

        // Locked before the outage (sample i is the pulse at t = i+1 s;
        // the outage window [60 s, 90 s) swallows pulses 60..=89, i.e.
        // samples[59..89]).
        assert_eq!(samples[58].state, DisciplineState::Locked);
        // In holdover during the outage; the servo reports not-locked.
        for s in &samples[59..89] {
            assert_eq!(s.state, DisciplineState::Holdover);
        }
        // Holdover drift: the frozen trim cancels the *learned* rate, so
        // the accumulated error stays far below undisciplined free-run
        // (18 ppm ⇒ 540 µs over 30 s) but grows past the locked floor.
        let end_of_holdover = samples[88].offset_ps.abs();
        assert!(
            end_of_holdover < 540e6 / 10.0,
            "holdover drift {end_of_holdover} ps — trim was not frozen"
        );
        // Reacquired lock by the end.
        assert_eq!(samples[149].state, DisciplineState::Locked);
        assert!(samples[149].offset_ps.abs() < 1e6);
        // Accounting.
        assert_eq!(disc.pulses_missed(), 30);
        assert_eq!(disc.holdover_entries(), 1);
        assert_eq!(disc.pulses_seen(), 120);
    }

    #[test]
    fn holdover_beats_undisciplined_free_run() {
        use crate::SimDuration;
        // Same oscillator, same outage; one clock disciplined-then-held,
        // the other never disciplined at all.
        let mut held = drifty_clock(21);
        let mut disc = GpsDiscipline::default();
        let signal = GpsSignal::outage(SimTime::from_secs(120), SimDuration::from_secs(60));
        let samples =
            run_pps_session_with_signal(&mut held, &mut disc, &signal, SimTime::ZERO, 180);
        let holdover_err = samples[179 - 1].offset_ps.abs();

        let mut free = drifty_clock(21);
        free.advance_to(SimTime::from_secs(180));
        let free_err = free.offset_ps().abs();

        assert!(
            holdover_err * 10.0 < free_err,
            "holdover {holdover_err} ps should be ≪ free-run {free_err} ps"
        );
    }

    #[test]
    fn always_on_signal_matches_plain_session() {
        let mut c1 = drifty_clock(9);
        let mut d1 = GpsDiscipline::default();
        let plain = run_pps_session(&mut c1, &mut d1, SimTime::ZERO, 40);

        let mut c2 = drifty_clock(9);
        let mut d2 = GpsDiscipline::default();
        let with_sig = run_pps_session_with_signal(
            &mut c2,
            &mut d2,
            &GpsSignal::always_on(),
            SimTime::ZERO,
            40,
        );
        let offsets: Vec<f64> = with_sig.iter().map(|s| s.offset_ps).collect();
        assert_eq!(plain, offsets);
        assert_eq!(d1.is_locked(), d2.is_locked());
    }

    #[test]
    fn state_machine_walks_acquire_lock_holdover() {
        let mut clock = HwClock::ideal();
        let mut disc = GpsDiscipline::default();
        assert_eq!(disc.state(), DisciplineState::Acquiring);
        for s in 1..=3 {
            disc.on_pps(&mut clock, SimTime::from_secs(s));
        }
        assert_eq!(disc.state(), DisciplineState::Locked);
        disc.on_pps_missed(&mut clock, SimTime::from_secs(4));
        assert_eq!(disc.state(), DisciplineState::Holdover);
        assert!(!disc.is_locked());
        // One good pulse leaves holdover but lock needs consecutive
        // in-spec pulses again.
        disc.on_pps(&mut clock, SimTime::from_secs(5));
        assert_eq!(disc.state(), DisciplineState::Acquiring);
    }

    #[test]
    fn tcxo_locks_tighter_than_commodity() {
        let run = |model: DriftModel| {
            let mut clock = HwClock::new(model, 33);
            let mut disc = GpsDiscipline::default();
            let off = run_pps_session(&mut clock, &mut disc, SimTime::ZERO, 300);
            off[150..].iter().map(|o| o.abs()).sum::<f64>() / 150.0
        };
        let commodity = run(DriftModel::commodity_xo());
        let tcxo = run(DriftModel::tcxo());
        assert!(
            tcxo < commodity,
            "tcxo mean |offset| {tcxo} ps should beat commodity {commodity} ps"
        );
    }
}
