//! GPS pulse-per-second clock discipline.
//!
//! The OSNT board takes a PPS signal from an external GPS receiver. On
//! every pulse the hardware compares the local timestamp counter to the
//! (known) top-of-second and steers the counter so that "clock drift and
//! phase coordination" stay bounded, which is what makes *one-way*
//! measurements between two cards meaningful.
//!
//! [`GpsDiscipline`] reproduces the standard GPSDO control law:
//!
//! 1. While the local offset is larger than [`GpsDiscipline::step_threshold_ps`],
//!    **phase-step** the counter (coarse lock, exactly what hardware does
//!    when it loads the register from GPS time).
//! 2. Once within the threshold, run a **PI servo** on the once-per-second
//!    offset samples, trimming the clock frequency. This drives both phase
//!    and frequency error toward zero and *holds* them there against
//!    oscillator wander.

use crate::clock::HwClock;
use crate::SimTime;

/// Proportional/integral gains of the PPS servo.
///
/// Units: the servo observes the phase offset in picoseconds once per
/// second and outputs a frequency trim in ppm. Because 1 ppm accumulates
/// 1e6 ps over one second, a proportional gain of `kp = 0.5` cancels half
/// of the observed offset per pulse.
#[derive(Debug, Clone, Copy)]
pub struct ServoGains {
    /// Proportional gain (fraction of the offset cancelled per second).
    pub kp: f64,
    /// Integral gain (accumulates to cancel persistent frequency error).
    pub ki: f64,
}

impl Default for ServoGains {
    fn default() -> Self {
        // Critically-damped-ish defaults found adequate across the drift
        // models in `DriftModel`.
        ServoGains { kp: 0.7, ki: 0.3 }
    }
}

/// PPS-driven PI discipline for a [`HwClock`].
#[derive(Debug, Clone)]
pub struct GpsDiscipline {
    gains: ServoGains,
    /// Integral accumulator over offset samples, in picoseconds.
    integral_ps: f64,
    /// Offsets larger than this are corrected with a phase step rather
    /// than the servo. Default 10 µs.
    pub step_threshold_ps: f64,
    /// Number of consecutive pulses with |offset| below
    /// `lock_threshold_ps` required to declare lock.
    pub lock_pulses: u32,
    /// Offset magnitude regarded as "locked". Default 1 µs (the paper's
    /// sub-µs precision claim).
    pub lock_threshold_ps: f64,
    in_spec_pulses: u32,
    pulses_seen: u64,
    last_offset_ps: f64,
    /// Frequency trim learned during acquisition (phase-step) pulses; the
    /// fine PI servo's output rides on top of it.
    base_trim_ppm: f64,
}

impl GpsDiscipline {
    /// Create a discipline with the given gains and default thresholds.
    pub fn new(gains: ServoGains) -> Self {
        GpsDiscipline {
            gains,
            integral_ps: 0.0,
            step_threshold_ps: 10e6, // 10 µs
            lock_pulses: 3,
            lock_threshold_ps: 1e6, // 1 µs
            in_spec_pulses: 0,
            pulses_seen: 0,
            last_offset_ps: 0.0,
            base_trim_ppm: 0.0,
        }
    }

    /// Process one PPS edge occurring at true time `t` and steer `clock`.
    /// Returns the offset (local minus true, picoseconds) observed at the
    /// pulse, *before* correction.
    pub fn on_pps(&mut self, clock: &mut HwClock, t: SimTime) -> f64 {
        clock.advance_to(t);
        let offset = clock.offset_ps();
        self.pulses_seen += 1;
        self.last_offset_ps = offset;

        if offset.abs() > self.step_threshold_ps {
            // Coarse correction: jam the counter to GPS time, and fold
            // the drift rate observed over the pulse interval into the
            // frequency trim (a GPSDO's acquisition step). Without the
            // trim update an oscillator that drifts more than the step
            // threshold per second would be re-stepped forever and the
            // fine servo would never engage.
            clock.step_phase_ps(-offset);
            let interval_s = 1.0; // pulses are per-second by definition
            self.base_trim_ppm = clock.trim_ppm() - offset / (interval_s * 1e6);
            clock.set_trim_ppm(self.base_trim_ppm);
            self.integral_ps = 0.0;
            self.in_spec_pulses = 0;
        } else {
            // Fine correction: PI trim in ppm riding on the acquisition
            // trim. An offset of x ps over the next one-second interval
            // is cancelled by x/1e6 ppm.
            self.integral_ps += offset;
            let trim_ppm = self.base_trim_ppm
                - (self.gains.kp * offset + self.gains.ki * self.integral_ps) / 1e6;
            clock.set_trim_ppm(trim_ppm);
            if offset.abs() <= self.lock_threshold_ps {
                self.in_spec_pulses = self.in_spec_pulses.saturating_add(1);
            } else {
                self.in_spec_pulses = 0;
            }
        }
        offset
    }

    /// Whether the servo has held the offset within the lock threshold for
    /// the required number of consecutive pulses.
    pub fn is_locked(&self) -> bool {
        self.in_spec_pulses >= self.lock_pulses
    }

    /// Offset observed at the most recent pulse, picoseconds.
    pub fn last_offset_ps(&self) -> f64 {
        self.last_offset_ps
    }

    /// Total pulses processed.
    pub fn pulses_seen(&self) -> u64 {
        self.pulses_seen
    }
}

impl Default for GpsDiscipline {
    fn default() -> Self {
        GpsDiscipline::new(ServoGains::default())
    }
}

/// Drive `clock` with one PPS per second for `seconds` simulated seconds
/// starting at `start`, returning the per-pulse pre-correction offsets in
/// picoseconds. Convenience wrapper used by experiments and tests.
pub fn run_pps_session(
    clock: &mut HwClock,
    disc: &mut GpsDiscipline,
    start: SimTime,
    seconds: u64,
) -> Vec<f64> {
    let mut offsets = Vec::with_capacity(seconds as usize);
    for s in 1..=seconds {
        let t = SimTime::from_ps(start.as_ps() + s * crate::PS_PER_SEC);
        offsets.push(disc.on_pps(clock, t));
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftModel;

    fn drifty_clock(seed: u64) -> HwClock {
        HwClock::new(DriftModel::commodity_xo(), seed)
    }

    #[test]
    fn servo_locks_commodity_oscillator() {
        let mut clock = drifty_clock(5);
        let mut disc = GpsDiscipline::default();
        let offsets = run_pps_session(&mut clock, &mut disc, SimTime::ZERO, 60);
        assert!(
            disc.is_locked(),
            "servo failed to lock: {:?}",
            &offsets[50..]
        );
        // Steady-state offset is sub-microsecond (paper: sub-µs precision).
        for &o in &offsets[30..] {
            assert!(o.abs() < 1e6, "offset {o} ps exceeds 1 µs after settling");
        }
    }

    #[test]
    fn undisciplined_clock_blows_past_a_microsecond() {
        let mut clock = drifty_clock(5);
        clock.advance_to(SimTime::from_secs(60));
        assert!(clock.offset_ps().abs() > 1e6);
    }

    #[test]
    fn large_initial_offset_is_phase_stepped() {
        let mut clock = HwClock::ideal();
        clock.step_phase_ps(5e7); // 50 µs off
        let mut disc = GpsDiscipline::default();
        let first = disc.on_pps(&mut clock, SimTime::from_secs(1));
        assert!(first > 4.9e7);
        // After the step the offset is gone immediately.
        assert!(clock.offset_ps().abs() < 1.0);
    }

    #[test]
    fn integral_term_cancels_fixed_frequency_error() {
        let model = DriftModel {
            initial_freq_error_ppm: 25.0,
            random_walk_ppm: 0.0,
            reading_jitter_ps: 0.0,
        };
        let mut clock = HwClock::new(model, 1);
        let mut disc = GpsDiscipline::default();
        run_pps_session(&mut clock, &mut disc, SimTime::ZERO, 120);
        // Servo trim must have learned ≈ -25 ppm.
        assert!(
            (clock.trim_ppm() + 25.0).abs() < 1.0,
            "trim {} ppm",
            clock.trim_ppm()
        );
        assert!(disc.is_locked());
    }

    #[test]
    fn lock_is_reported_only_after_consecutive_good_pulses() {
        let mut clock = HwClock::ideal();
        let mut disc = GpsDiscipline::default();
        disc.on_pps(&mut clock, SimTime::from_secs(1));
        assert!(!disc.is_locked());
        disc.on_pps(&mut clock, SimTime::from_secs(2));
        disc.on_pps(&mut clock, SimTime::from_secs(3));
        assert!(disc.is_locked());
    }

    #[test]
    fn pulse_counter_increments() {
        let mut clock = HwClock::ideal();
        let mut disc = GpsDiscipline::default();
        run_pps_session(&mut clock, &mut disc, SimTime::ZERO, 10);
        assert_eq!(disc.pulses_seen(), 10);
    }

    #[test]
    fn tcxo_locks_tighter_than_commodity() {
        let run = |model: DriftModel| {
            let mut clock = HwClock::new(model, 33);
            let mut disc = GpsDiscipline::default();
            let off = run_pps_session(&mut clock, &mut disc, SimTime::ZERO, 300);
            off[150..].iter().map(|o| o.abs()).sum::<f64>() / 150.0
        };
        let commodity = run(DriftModel::commodity_xo());
        let tcxo = run(DriftModel::tcxo());
        assert!(
            tcxo < commodity,
            "tcxo mean |offset| {tcxo} ps should beat commodity {commodity} ps"
        );
    }
}
