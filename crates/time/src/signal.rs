//! GPS fix availability schedule.
//!
//! A real GPS receiver loses its fix — antenna faults, urban canyons,
//! interference. While the fix is gone there are no PPS edges and the
//! discipline must go into **holdover**: free-run on the last learned
//! frequency trim and let phase error accumulate at the residual rate.
//! [`GpsSignal`] is the deterministic schedule of such outages that a
//! fault-injection experiment scripts in advance.

use crate::{SimDuration, SimTime};

/// A deterministic schedule of GPS signal-loss windows.
///
/// The signal is *up* everywhere except inside the configured
/// `[start, end)` outage windows. Windows may be given in any order;
/// they are sorted and merged at construction.
#[derive(Debug, Clone, Default)]
pub struct GpsSignal {
    /// Sorted, non-overlapping outage windows.
    outages: Vec<(SimTime, SimTime)>,
}

impl GpsSignal {
    /// A signal with no outages (permanent fix) — the behaviour every
    /// experiment had before fault injection existed.
    pub fn always_on() -> Self {
        GpsSignal::default()
    }

    /// Build from a list of `[start, end)` outage windows. Empty and
    /// inverted windows are discarded; overlapping windows are merged.
    pub fn with_outages(mut windows: Vec<(SimTime, SimTime)>) -> Self {
        windows.retain(|(s, e)| e > s);
        windows.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        GpsSignal { outages: merged }
    }

    /// A single outage of `length` starting at `start`.
    pub fn outage(start: SimTime, length: SimDuration) -> Self {
        GpsSignal::with_outages(vec![(start, start + length)])
    }

    /// Whether the receiver has a fix (and therefore emits a PPS edge)
    /// at true time `t`.
    pub fn has_fix(&self, t: SimTime) -> bool {
        // Windows are few (an experiment scripts a handful); linear scan
        // beats a binary search at these sizes and is obviously correct.
        !self.outages.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// The scheduled outage windows (sorted, non-overlapping).
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.outages
    }

    /// Total scheduled outage time.
    pub fn total_outage(&self) -> SimDuration {
        self.outages
            .iter()
            .fold(SimDuration::ZERO, |acc, &(s, e)| acc + (e - s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_has_fix_everywhere() {
        let s = GpsSignal::always_on();
        assert!(s.has_fix(SimTime::ZERO));
        assert!(s.has_fix(SimTime::from_secs(3600)));
        assert_eq!(s.total_outage(), SimDuration::ZERO);
    }

    #[test]
    fn outage_window_is_half_open() {
        let s = GpsSignal::outage(SimTime::from_secs(10), SimDuration::from_secs(5));
        assert!(s.has_fix(SimTime::from_secs(9)));
        assert!(!s.has_fix(SimTime::from_secs(10)));
        assert!(!s.has_fix(SimTime::from_ps(15 * crate::PS_PER_SEC - 1)));
        assert!(s.has_fix(SimTime::from_secs(15)));
    }

    #[test]
    fn overlapping_windows_merge() {
        let s = GpsSignal::with_outages(vec![
            (SimTime::from_secs(20), SimTime::from_secs(30)),
            (SimTime::from_secs(10), SimTime::from_secs(25)),
            (SimTime::from_secs(50), SimTime::from_secs(50)), // empty, dropped
        ]);
        assert_eq!(
            s.windows(),
            &[(SimTime::from_secs(10), SimTime::from_secs(30))]
        );
        assert_eq!(s.total_outage(), SimDuration::from_secs(20));
    }
}
