//! OpenFlow 1.0 actions (the subset the switch model executes).

use crate::codec::WireError;

/// Special output-port numbers from the spec.
pub mod port_no {
    /// Process with the normal L2 pipeline.
    pub const NORMAL: u16 = 0xfffa;
    /// Flood out of all ports except ingress.
    pub const FLOOD: u16 = 0xfffb;
    /// All ports except ingress.
    pub const ALL: u16 = 0xfffc;
    /// Send to the controller as PACKET_IN.
    pub const CONTROLLER: u16 = 0xfffd;
}

/// A flow action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// OFPAT_OUTPUT: forward out of a port (or a virtual port).
    Output {
        /// Destination port number.
        port: u16,
        /// Bytes to send when the port is CONTROLLER.
        max_len: u16,
    },
    /// OFPAT_SET_VLAN_VID.
    SetVlanVid(u16),
    /// OFPAT_STRIP_VLAN.
    StripVlan,
}

impl Action {
    /// Wire length of this action.
    pub fn wire_len(&self) -> usize {
        8
    }

    /// Serialise.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        match self {
            Action::Output { port, max_len } => {
                out.extend_from_slice(&0u16.to_be_bytes()); // OFPAT_OUTPUT
                out.extend_from_slice(&8u16.to_be_bytes());
                out.extend_from_slice(&port.to_be_bytes());
                out.extend_from_slice(&max_len.to_be_bytes());
            }
            Action::SetVlanVid(vid) => {
                out.extend_from_slice(&1u16.to_be_bytes()); // OFPAT_SET_VLAN_VID
                out.extend_from_slice(&8u16.to_be_bytes());
                out.extend_from_slice(&vid.to_be_bytes());
                out.extend_from_slice(&[0, 0]);
            }
            Action::StripVlan => {
                out.extend_from_slice(&3u16.to_be_bytes()); // OFPAT_STRIP_VLAN
                out.extend_from_slice(&8u16.to_be_bytes());
                out.extend_from_slice(&[0, 0, 0, 0]);
            }
        }
    }

    /// Parse one action; returns the action and bytes consumed.
    pub fn parse(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        if bytes.len() < 8 {
            return Err(WireError::Truncated);
        }
        let atype = u16::from_be_bytes([bytes[0], bytes[1]]);
        let len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if len < 8 || bytes.len() < len {
            return Err(WireError::Truncated);
        }
        let action = match atype {
            0 => Action::Output {
                port: u16::from_be_bytes([bytes[4], bytes[5]]),
                max_len: u16::from_be_bytes([bytes[6], bytes[7]]),
            },
            1 => Action::SetVlanVid(u16::from_be_bytes([bytes[4], bytes[5]])),
            3 => Action::StripVlan,
            other => return Err(WireError::UnknownAction(other)),
        };
        Ok((action, len))
    }

    /// Parse a list of actions from `bytes`.
    pub fn parse_list(mut bytes: &[u8]) -> Result<Vec<Action>, WireError> {
        let mut out = Vec::new();
        while !bytes.is_empty() {
            let (a, used) = Action::parse(bytes)?;
            out.push(a);
            bytes = &bytes[used..];
        }
        Ok(out)
    }

    /// Serialise a list of actions.
    pub fn write_list(actions: &[Action], out: &mut Vec<u8>) {
        for a in actions {
            a.write_to(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_each_kind() {
        for a in [
            Action::Output {
                port: 3,
                max_len: 128,
            },
            Action::SetVlanVid(42),
            Action::StripVlan,
        ] {
            let mut buf = Vec::new();
            a.write_to(&mut buf);
            assert_eq!(buf.len(), a.wire_len());
            let (back, used) = Action::parse(&buf).unwrap();
            assert_eq!(back, a);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn list_round_trip() {
        let actions = vec![
            Action::SetVlanVid(7),
            Action::Output {
                port: 1,
                max_len: 0,
            },
        ];
        let mut buf = Vec::new();
        Action::write_list(&actions, &mut buf);
        assert_eq!(Action::parse_list(&buf).unwrap(), actions);
    }

    #[test]
    fn unknown_action_rejected() {
        let buf = [0x00, 0x63, 0x00, 0x08, 0, 0, 0, 0];
        assert!(matches!(
            Action::parse(&buf),
            Err(WireError::UnknownAction(0x63))
        ));
    }

    #[test]
    fn truncated_list_rejected() {
        let mut buf = Vec::new();
        Action::Output {
            port: 1,
            max_len: 0,
        }
        .write_to(&mut buf);
        buf.truncate(6);
        assert!(Action::parse_list(&buf).is_err());
    }
}
