//! Stream framing: OpenFlow messages over a byte stream.
//!
//! The control channel between OFLOPS-turbo and the switch is a TCP-like
//! byte stream in the simulation; [`MessageCodec`] accumulates bytes and
//! yields complete messages, exactly as a real OpenFlow endpoint frames
//! its socket reads using the header's length field.

use crate::header::{Header, OFP_HEADER_LEN};
use crate::messages::Message;
use core::fmt;

/// Errors in the wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes for the claimed structure.
    Truncated,
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Header length field smaller than the header itself.
    BadLength(u16),
    /// Unknown message type byte.
    UnknownType(u8),
    /// Unknown action type.
    UnknownAction(u16),
    /// Unknown flow-mod command.
    UnknownCommand(u16),
    /// Unknown statistics type.
    UnknownStatsType(u16),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated OpenFlow message"),
            WireError::BadVersion(v) => write!(f, "unsupported OpenFlow version {v:#04x}"),
            WireError::BadLength(l) => write!(f, "invalid header length {l}"),
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::UnknownAction(a) => write!(f, "unknown action type {a}"),
            WireError::UnknownCommand(c) => write!(f, "unknown flow-mod command {c}"),
            WireError::UnknownStatsType(s) => write!(f, "unknown stats type {s}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Accumulating decoder for a message stream.
#[derive(Debug, Default)]
pub struct MessageCodec {
    buf: Vec<u8>,
}

impl MessageCodec {
    /// An empty codec.
    pub fn new() -> Self {
        MessageCodec::default()
    }

    /// Append received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to pop one complete message. `Ok(None)` means more bytes are
    /// needed.
    pub fn next_message(&mut self) -> Result<Option<(Message, u32)>, WireError> {
        if self.buf.len() < OFP_HEADER_LEN {
            return Ok(None);
        }
        let header = Header::parse(&self.buf)?;
        let total = header.length as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame: Vec<u8> = self.buf.drain(..total).collect();
        let (msg, xid) = Message::decode(&frame)?;
        Ok(Some((msg, xid)))
    }

    /// Drain every complete message currently buffered.
    pub fn drain_messages(&mut self) -> Result<Vec<(Message, u32)>, WireError> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::EchoData;

    #[test]
    fn reassembles_split_messages() {
        let wire = [
            Message::Hello.encode(1),
            Message::EchoRequest(EchoData(vec![9; 32])).encode(2),
            Message::BarrierRequest.encode(3),
        ]
        .concat();
        let mut codec = MessageCodec::new();
        let mut got = Vec::new();
        // Feed in awkward 5-byte chunks.
        for chunk in wire.chunks(5) {
            codec.feed(chunk);
            got.extend(codec.drain_messages().unwrap());
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (Message::Hello, 1));
        assert_eq!(got[2], (Message::BarrierRequest, 3));
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn partial_message_returns_none() {
        let wire = Message::Hello.encode(1);
        let mut codec = MessageCodec::new();
        codec.feed(&wire[..4]);
        assert_eq!(codec.next_message().unwrap(), None);
        codec.feed(&wire[4..]);
        assert_eq!(codec.next_message().unwrap(), Some((Message::Hello, 1)));
    }

    #[test]
    fn garbage_reports_error() {
        let mut codec = MessageCodec::new();
        codec.feed(&[0xff; 16]);
        assert!(codec.next_message().is_err());
    }
}
