//! The common OpenFlow header.

use crate::codec::WireError;

/// OpenFlow 1.0 wire version byte.
pub const OFP_VERSION: u8 = 0x01;

/// Length of the fixed header.
pub const OFP_HEADER_LEN: usize = 8;

/// OpenFlow 1.0 message types (the subset we model, with the official
/// numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageType {
    /// OFPT_HELLO
    Hello = 0,
    /// OFPT_ERROR
    Error = 1,
    /// OFPT_ECHO_REQUEST
    EchoRequest = 2,
    /// OFPT_ECHO_REPLY
    EchoReply = 3,
    /// OFPT_FEATURES_REQUEST
    FeaturesRequest = 5,
    /// OFPT_FEATURES_REPLY
    FeaturesReply = 6,
    /// OFPT_PACKET_IN
    PacketIn = 10,
    /// OFPT_FLOW_REMOVED
    FlowRemoved = 11,
    /// OFPT_PACKET_OUT
    PacketOut = 13,
    /// OFPT_FLOW_MOD
    FlowMod = 14,
    /// OFPT_STATS_REQUEST
    StatsRequest = 16,
    /// OFPT_STATS_REPLY
    StatsReply = 17,
    /// OFPT_BARRIER_REQUEST
    BarrierRequest = 18,
    /// OFPT_BARRIER_REPLY
    BarrierReply = 19,
}

impl MessageType {
    /// Parse the type byte.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => MessageType::Hello,
            1 => MessageType::Error,
            2 => MessageType::EchoRequest,
            3 => MessageType::EchoReply,
            5 => MessageType::FeaturesRequest,
            6 => MessageType::FeaturesReply,
            10 => MessageType::PacketIn,
            11 => MessageType::FlowRemoved,
            13 => MessageType::PacketOut,
            14 => MessageType::FlowMod,
            16 => MessageType::StatsRequest,
            17 => MessageType::StatsReply,
            18 => MessageType::BarrierRequest,
            19 => MessageType::BarrierReply,
            other => return Err(WireError::UnknownType(other)),
        })
    }
}

/// The 8-byte header preceding every message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Protocol version (must be [`OFP_VERSION`]).
    pub version: u8,
    /// Message type.
    pub msg_type: MessageType,
    /// Total message length including this header.
    pub length: u16,
    /// Transaction id, echoed in replies.
    pub xid: u32,
}

impl Header {
    /// Parse a header from the first 8 bytes of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < OFP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let version = bytes[0];
        if version != OFP_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let msg_type = MessageType::from_u8(bytes[1])?;
        let length = u16::from_be_bytes([bytes[2], bytes[3]]);
        if (length as usize) < OFP_HEADER_LEN {
            return Err(WireError::BadLength(length));
        }
        Ok(Header {
            version,
            msg_type,
            length,
            xid: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        })
    }

    /// Serialise.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.push(self.version);
        out.push(self.msg_type as u8);
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&self.xid.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = Header {
            version: OFP_VERSION,
            msg_type: MessageType::FlowMod,
            length: 72,
            xid: 0xdead_beef,
        };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), OFP_HEADER_LEN);
        assert_eq!(Header::parse(&buf).unwrap(), h);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        Header {
            version: OFP_VERSION,
            msg_type: MessageType::Hello,
            length: 8,
            xid: 0,
        }
        .write_to(&mut buf);
        buf[0] = 4; // OpenFlow 1.3
        assert!(matches!(Header::parse(&buf), Err(WireError::BadVersion(4))));
    }

    #[test]
    fn rejects_unknown_type_and_short_length() {
        let mut buf = vec![OFP_VERSION, 99, 0, 8, 0, 0, 0, 0];
        assert!(matches!(
            Header::parse(&buf),
            Err(WireError::UnknownType(99))
        ));
        buf[1] = 0;
        buf[3] = 4; // length 4 < 8
        assert!(matches!(Header::parse(&buf), Err(WireError::BadLength(4))));
    }

    #[test]
    fn truncated() {
        assert!(matches!(
            Header::parse(&[1, 0, 0]),
            Err(WireError::Truncated)
        ));
    }
}
