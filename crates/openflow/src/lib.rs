#![warn(missing_docs)]
//! # osnt-openflow — OpenFlow 1.0 wire protocol
//!
//! The subset of OpenFlow 1.0 (wire version `0x01`) that OFLOPS-turbo
//! exercises against the switch model: session setup (`HELLO`,
//! `FEATURES_REQUEST/REPLY`, `ECHO`), table programming (`FLOW_MOD`),
//! synchronisation (`BARRIER_REQUEST/REPLY`), the reactive path
//! (`PACKET_IN`, `PACKET_OUT`) and counters (`STATS_REQUEST/REPLY` with
//! flow and port statistics).
//!
//! Everything serialises to and parses from the real OpenFlow 1.0 byte
//! layout, so captures of the control channel look like genuine OpenFlow
//! and the framing logic (length-prefixed messages over a stream) is
//! faithfully exercised.

pub mod actions;
pub mod codec;
pub mod header;
pub mod match_field;
pub mod messages;

pub use actions::Action;
pub use codec::{MessageCodec, WireError};
pub use header::{Header, MessageType, OFP_HEADER_LEN, OFP_VERSION};
pub use match_field::OfMatch;
pub use messages::{
    EchoData, FeaturesReply, FlowMod, FlowModCommand, FlowRemoved, FlowStatsEntry, Message,
    PacketIn, PacketInReason, PacketOut, PortStats, StatsBody,
};
