//! OpenFlow 1.0 message bodies and their wire forms.

use crate::actions::Action;
use crate::codec::WireError;
use crate::header::{Header, MessageType, OFP_HEADER_LEN, OFP_VERSION};
use crate::match_field::{OfMatch, OFP_MATCH_LEN};
use osnt_packet::MacAddr;

/// Payload of an echo request/reply (opaque, echoed back verbatim —
/// OFLOPS uses it to carry timestamps for control-channel RTT probes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EchoData(pub Vec<u8>);

/// One physical port in a FEATURES_REPLY (`ofp_phy_port`, 48 bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhyPort {
    /// Port number (1-based in OpenFlow 1.0).
    pub port_no: u16,
    /// MAC address of the port.
    pub hw_addr: MacAddr,
    /// Interface name (truncated/padded to 16 bytes on the wire).
    pub name: String,
}

impl PhyPort {
    const WIRE_LEN: usize = 48;

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.port_no.to_be_bytes());
        out.extend_from_slice(&self.hw_addr.octets());
        let mut name = [0u8; 16];
        let bytes = self.name.as_bytes();
        let n = bytes.len().min(15);
        name[..n].copy_from_slice(&bytes[..n]);
        out.extend_from_slice(&name);
        // config, state, curr, advertised, supported, peer — all zero in
        // the model.
        out.extend_from_slice(&[0u8; 24]);
    }

    fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < Self::WIRE_LEN {
            return Err(WireError::Truncated);
        }
        let mut mac = [0u8; 6];
        mac.copy_from_slice(&bytes[2..8]);
        let name_end = bytes[8..24].iter().position(|&b| b == 0).unwrap_or(16);
        Ok(PhyPort {
            port_no: u16::from_be_bytes([bytes[0], bytes[1]]),
            hw_addr: MacAddr(mac),
            name: String::from_utf8_lossy(&bytes[8..8 + name_end]).into_owned(),
        })
    }
}

/// FEATURES_REPLY body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeaturesReply {
    /// Datapath id (switch identity).
    pub datapath_id: u64,
    /// Packet buffers available for PACKET_IN buffering.
    pub n_buffers: u32,
    /// Number of flow tables.
    pub n_tables: u8,
    /// Capability bitmap.
    pub capabilities: u32,
    /// Supported-action bitmap.
    pub actions: u32,
    /// Physical ports.
    pub ports: Vec<PhyPort>,
}

/// Why a PACKET_IN was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    /// No matching flow entry.
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
}

/// PACKET_IN body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketIn {
    /// Buffer id (0xffffffff = packet not buffered, full frame follows).
    pub buffer_id: u32,
    /// Original frame length.
    pub total_len: u16,
    /// Ingress port.
    pub in_port: u16,
    /// Reason.
    pub reason: PacketInReason,
    /// The (possibly truncated) frame bytes.
    pub data: Vec<u8>,
}

/// PACKET_OUT body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketOut {
    /// Buffer id (0xffffffff = the frame is in `data`).
    pub buffer_id: u32,
    /// Port the frame "arrived" on (0xfff8 = OFPP_NONE/controller).
    pub in_port: u16,
    /// Actions to apply.
    pub actions: Vec<Action>,
    /// The frame, when not buffered.
    pub data: Vec<u8>,
}

/// FLOW_MOD commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum FlowModCommand {
    /// Add a new entry.
    Add = 0,
    /// Modify matching entries.
    Modify = 1,
    /// Modify strictly (match + priority must be identical).
    ModifyStrict = 2,
    /// Delete matching entries.
    Delete = 3,
    /// Delete strictly.
    DeleteStrict = 4,
}

impl FlowModCommand {
    fn from_u16(v: u16) -> Result<Self, WireError> {
        Ok(match v {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            4 => FlowModCommand::DeleteStrict,
            other => return Err(WireError::UnknownCommand(other)),
        })
    }
}

/// FLOW_MOD body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMod {
    /// Match fields.
    pub of_match: OfMatch,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// What to do.
    pub command: FlowModCommand,
    /// Idle timeout, seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout, seconds (0 = none).
    pub hard_timeout: u16,
    /// Priority (higher wins among overlapping wildcard entries).
    pub priority: u16,
    /// Buffered packet to apply to (0xffffffff = none).
    pub buffer_id: u32,
    /// For DELETE: restrict to entries with this out port.
    pub out_port: u16,
    /// Flag bits (OFPFF_SEND_FLOW_REM = 1).
    pub flags: u16,
    /// Actions of the entry.
    pub actions: Vec<Action>,
}

impl FlowMod {
    /// An ADD with sensible defaults.
    pub fn add(of_match: OfMatch, priority: u16, actions: Vec<Action>) -> Self {
        FlowMod {
            of_match,
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority,
            buffer_id: 0xffff_ffff,
            out_port: 0xffff,
            flags: 0,
            actions,
        }
    }

    /// A strict DELETE of a previously added entry.
    pub fn delete_strict(of_match: OfMatch, priority: u16) -> Self {
        FlowMod {
            command: FlowModCommand::DeleteStrict,
            ..FlowMod::add(of_match, priority, Vec::new())
        }
    }
}

/// FLOW_REMOVED body (sent when an entry expires or is deleted with
/// OFPFF_SEND_FLOW_REM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRemoved {
    /// The entry's match.
    pub of_match: OfMatch,
    /// The entry's cookie.
    pub cookie: u64,
    /// The entry's priority.
    pub priority: u16,
    /// Removal reason (0 idle, 1 hard, 2 delete).
    pub reason: u8,
    /// Entry lifetime, seconds part.
    pub duration_sec: u32,
    /// Entry lifetime, nanoseconds part.
    pub duration_nsec: u32,
    /// Packets the entry matched.
    pub packet_count: u64,
    /// Bytes the entry matched.
    pub byte_count: u64,
}

/// Per-flow statistics entry in a STATS_REPLY.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStatsEntry {
    /// Table containing the entry.
    pub table_id: u8,
    /// The entry's match.
    pub of_match: OfMatch,
    /// Entry age, seconds part.
    pub duration_sec: u32,
    /// Entry age, nanoseconds part.
    pub duration_nsec: u32,
    /// Priority.
    pub priority: u16,
    /// Cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Actions.
    pub actions: Vec<Action>,
}

/// Per-port statistics entry in a STATS_REPLY (`ofp_port_stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    /// Port number.
    pub port_no: u16,
    /// Frames received.
    pub rx_packets: u64,
    /// Frames sent.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Frames dropped on receive.
    pub rx_dropped: u64,
    /// Frames dropped on transmit.
    pub tx_dropped: u64,
}

/// Statistics request/reply bodies (type-tagged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsBody {
    /// OFPST_FLOW request: which flows to report.
    FlowRequest {
        /// Filter.
        of_match: OfMatch,
        /// Table (0xff = all).
        table_id: u8,
    },
    /// OFPST_FLOW reply.
    FlowReply(Vec<FlowStatsEntry>),
    /// OFPST_PORT request (0xffff = all ports).
    PortRequest {
        /// Port filter.
        port_no: u16,
    },
    /// OFPST_PORT reply.
    PortReply(Vec<PortStats>),
}

/// A complete OpenFlow message (type + body, without the xid which lives
/// in the envelope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// OFPT_HELLO.
    Hello,
    /// OFPT_ERROR.
    Error {
        /// Error type (e.g. 3 = flow-mod failed).
        err_type: u16,
        /// Error code within the type.
        code: u16,
        /// At least 64 bytes of the offending message.
        data: Vec<u8>,
    },
    /// OFPT_ECHO_REQUEST.
    EchoRequest(EchoData),
    /// OFPT_ECHO_REPLY.
    EchoReply(EchoData),
    /// OFPT_FEATURES_REQUEST.
    FeaturesRequest,
    /// OFPT_FEATURES_REPLY.
    FeaturesReply(FeaturesReply),
    /// OFPT_PACKET_IN.
    PacketIn(PacketIn),
    /// OFPT_FLOW_REMOVED.
    FlowRemoved(FlowRemoved),
    /// OFPT_PACKET_OUT.
    PacketOut(PacketOut),
    /// OFPT_FLOW_MOD.
    FlowMod(FlowMod),
    /// OFPT_STATS_REQUEST.
    StatsRequest(StatsBody),
    /// OFPT_STATS_REPLY.
    StatsReply(StatsBody),
    /// OFPT_BARRIER_REQUEST.
    BarrierRequest,
    /// OFPT_BARRIER_REPLY.
    BarrierReply,
}

impl Message {
    /// The message's wire type.
    pub fn msg_type(&self) -> MessageType {
        match self {
            Message::Hello => MessageType::Hello,
            Message::Error { .. } => MessageType::Error,
            Message::EchoRequest(_) => MessageType::EchoRequest,
            Message::EchoReply(_) => MessageType::EchoReply,
            Message::FeaturesRequest => MessageType::FeaturesRequest,
            Message::FeaturesReply(_) => MessageType::FeaturesReply,
            Message::PacketIn(_) => MessageType::PacketIn,
            Message::FlowRemoved(_) => MessageType::FlowRemoved,
            Message::PacketOut(_) => MessageType::PacketOut,
            Message::FlowMod(_) => MessageType::FlowMod,
            Message::StatsRequest(_) => MessageType::StatsRequest,
            Message::StatsReply(_) => MessageType::StatsReply,
            Message::BarrierRequest => MessageType::BarrierRequest,
            Message::BarrierReply => MessageType::BarrierReply,
        }
    }

    /// Serialise with header.
    pub fn encode(&self, xid: u32) -> Vec<u8> {
        let mut body = Vec::new();
        self.write_body(&mut body);
        let mut out = Vec::with_capacity(OFP_HEADER_LEN + body.len());
        Header {
            version: OFP_VERSION,
            msg_type: self.msg_type(),
            length: (OFP_HEADER_LEN + body.len()) as u16,
            xid,
        }
        .write_to(&mut out);
        out.extend_from_slice(&body);
        out
    }

    fn write_body(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello
            | Message::FeaturesRequest
            | Message::BarrierRequest
            | Message::BarrierReply => {}
            Message::Error {
                err_type,
                code,
                data,
            } => {
                out.extend_from_slice(&err_type.to_be_bytes());
                out.extend_from_slice(&code.to_be_bytes());
                out.extend_from_slice(data);
            }
            Message::EchoRequest(d) | Message::EchoReply(d) => {
                out.extend_from_slice(&d.0);
            }
            Message::FeaturesReply(f) => {
                out.extend_from_slice(&f.datapath_id.to_be_bytes());
                out.extend_from_slice(&f.n_buffers.to_be_bytes());
                out.push(f.n_tables);
                out.extend_from_slice(&[0u8; 3]);
                out.extend_from_slice(&f.capabilities.to_be_bytes());
                out.extend_from_slice(&f.actions.to_be_bytes());
                for p in &f.ports {
                    p.write_to(out);
                }
            }
            Message::PacketIn(p) => {
                out.extend_from_slice(&p.buffer_id.to_be_bytes());
                out.extend_from_slice(&p.total_len.to_be_bytes());
                out.extend_from_slice(&p.in_port.to_be_bytes());
                out.push(match p.reason {
                    PacketInReason::NoMatch => 0,
                    PacketInReason::Action => 1,
                });
                out.push(0);
                out.extend_from_slice(&p.data);
            }
            Message::FlowRemoved(f) => {
                f.of_match.write_to(out);
                out.extend_from_slice(&f.cookie.to_be_bytes());
                out.extend_from_slice(&f.priority.to_be_bytes());
                out.push(f.reason);
                out.push(0);
                out.extend_from_slice(&f.duration_sec.to_be_bytes());
                out.extend_from_slice(&f.duration_nsec.to_be_bytes());
                out.extend_from_slice(&0u16.to_be_bytes()); // idle_timeout
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&f.packet_count.to_be_bytes());
                out.extend_from_slice(&f.byte_count.to_be_bytes());
            }
            Message::PacketOut(p) => {
                out.extend_from_slice(&p.buffer_id.to_be_bytes());
                out.extend_from_slice(&p.in_port.to_be_bytes());
                let mut acts = Vec::new();
                Action::write_list(&p.actions, &mut acts);
                out.extend_from_slice(&(acts.len() as u16).to_be_bytes());
                out.extend_from_slice(&acts);
                out.extend_from_slice(&p.data);
            }
            Message::FlowMod(f) => {
                f.of_match.write_to(out);
                out.extend_from_slice(&f.cookie.to_be_bytes());
                out.extend_from_slice(&(f.command as u16).to_be_bytes());
                out.extend_from_slice(&f.idle_timeout.to_be_bytes());
                out.extend_from_slice(&f.hard_timeout.to_be_bytes());
                out.extend_from_slice(&f.priority.to_be_bytes());
                out.extend_from_slice(&f.buffer_id.to_be_bytes());
                out.extend_from_slice(&f.out_port.to_be_bytes());
                out.extend_from_slice(&f.flags.to_be_bytes());
                Action::write_list(&f.actions, out);
            }
            Message::StatsRequest(body) => write_stats(body, out, true),
            Message::StatsReply(body) => write_stats(body, out, false),
        }
    }

    /// Parse one complete message (header already validated); returns the
    /// message and xid.
    pub fn decode(bytes: &[u8]) -> Result<(Message, u32), WireError> {
        let header = Header::parse(bytes)?;
        if bytes.len() < header.length as usize {
            return Err(WireError::Truncated);
        }
        let body = &bytes[OFP_HEADER_LEN..header.length as usize];
        let msg = match header.msg_type {
            MessageType::Hello => Message::Hello,
            MessageType::Error => {
                if body.len() < 4 {
                    return Err(WireError::Truncated);
                }
                Message::Error {
                    err_type: u16::from_be_bytes([body[0], body[1]]),
                    code: u16::from_be_bytes([body[2], body[3]]),
                    data: body[4..].to_vec(),
                }
            }
            MessageType::EchoRequest => Message::EchoRequest(EchoData(body.to_vec())),
            MessageType::EchoReply => Message::EchoReply(EchoData(body.to_vec())),
            MessageType::FeaturesRequest => Message::FeaturesRequest,
            MessageType::FeaturesReply => {
                if body.len() < 24 {
                    return Err(WireError::Truncated);
                }
                let mut ports = Vec::new();
                let mut rest = &body[24..];
                while !rest.is_empty() {
                    ports.push(PhyPort::parse(rest)?);
                    rest = &rest[PhyPort::WIRE_LEN..];
                }
                Message::FeaturesReply(FeaturesReply {
                    datapath_id: u64::from_be_bytes(body[0..8].try_into().unwrap()),
                    n_buffers: u32::from_be_bytes(body[8..12].try_into().unwrap()),
                    n_tables: body[12],
                    capabilities: u32::from_be_bytes(body[16..20].try_into().unwrap()),
                    actions: u32::from_be_bytes(body[20..24].try_into().unwrap()),
                    ports,
                })
            }
            MessageType::PacketIn => {
                if body.len() < 10 {
                    return Err(WireError::Truncated);
                }
                Message::PacketIn(PacketIn {
                    buffer_id: u32::from_be_bytes(body[0..4].try_into().unwrap()),
                    total_len: u16::from_be_bytes([body[4], body[5]]),
                    in_port: u16::from_be_bytes([body[6], body[7]]),
                    reason: if body[8] == 0 {
                        PacketInReason::NoMatch
                    } else {
                        PacketInReason::Action
                    },
                    data: body[10..].to_vec(),
                })
            }
            MessageType::FlowRemoved => {
                if body.len() < OFP_MATCH_LEN + 40 {
                    return Err(WireError::Truncated);
                }
                let m = OfMatch::parse(body)?;
                let b = &body[OFP_MATCH_LEN..];
                Message::FlowRemoved(FlowRemoved {
                    of_match: m,
                    cookie: u64::from_be_bytes(b[0..8].try_into().unwrap()),
                    priority: u16::from_be_bytes([b[8], b[9]]),
                    reason: b[10],
                    duration_sec: u32::from_be_bytes(b[12..16].try_into().unwrap()),
                    duration_nsec: u32::from_be_bytes(b[16..20].try_into().unwrap()),
                    packet_count: u64::from_be_bytes(b[24..32].try_into().unwrap()),
                    byte_count: u64::from_be_bytes(b[32..40].try_into().unwrap()),
                })
            }
            MessageType::PacketOut => {
                if body.len() < 8 {
                    return Err(WireError::Truncated);
                }
                let actions_len = u16::from_be_bytes([body[6], body[7]]) as usize;
                if body.len() < 8 + actions_len {
                    return Err(WireError::Truncated);
                }
                Message::PacketOut(PacketOut {
                    buffer_id: u32::from_be_bytes(body[0..4].try_into().unwrap()),
                    in_port: u16::from_be_bytes([body[4], body[5]]),
                    actions: Action::parse_list(&body[8..8 + actions_len])?,
                    data: body[8 + actions_len..].to_vec(),
                })
            }
            MessageType::FlowMod => {
                if body.len() < OFP_MATCH_LEN + 24 {
                    return Err(WireError::Truncated);
                }
                let m = OfMatch::parse(body)?;
                let b = &body[OFP_MATCH_LEN..];
                Message::FlowMod(FlowMod {
                    of_match: m,
                    cookie: u64::from_be_bytes(b[0..8].try_into().unwrap()),
                    command: FlowModCommand::from_u16(u16::from_be_bytes([b[8], b[9]]))?,
                    idle_timeout: u16::from_be_bytes([b[10], b[11]]),
                    hard_timeout: u16::from_be_bytes([b[12], b[13]]),
                    priority: u16::from_be_bytes([b[14], b[15]]),
                    buffer_id: u32::from_be_bytes(b[16..20].try_into().unwrap()),
                    out_port: u16::from_be_bytes([b[20], b[21]]),
                    flags: u16::from_be_bytes([b[22], b[23]]),
                    actions: Action::parse_list(&b[24..])?,
                })
            }
            MessageType::StatsRequest => Message::StatsRequest(parse_stats(body, true)?),
            MessageType::StatsReply => Message::StatsReply(parse_stats(body, false)?),
            MessageType::BarrierRequest => Message::BarrierRequest,
            MessageType::BarrierReply => Message::BarrierReply,
        };
        Ok((msg, header.xid))
    }
}

const OFPST_FLOW: u16 = 1;
const OFPST_PORT: u16 = 4;

fn write_stats(body: &StatsBody, out: &mut Vec<u8>, is_request: bool) {
    match body {
        StatsBody::FlowRequest { of_match, table_id } => {
            assert!(is_request);
            out.extend_from_slice(&OFPST_FLOW.to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes()); // flags
            of_match.write_to(out);
            out.push(*table_id);
            out.push(0);
            out.extend_from_slice(&0xffffu16.to_be_bytes()); // out_port = none
        }
        StatsBody::FlowReply(entries) => {
            assert!(!is_request);
            out.extend_from_slice(&OFPST_FLOW.to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes());
            for e in entries {
                let mut acts = Vec::new();
                Action::write_list(&e.actions, &mut acts);
                let entry_len = 88 + acts.len();
                out.extend_from_slice(&(entry_len as u16).to_be_bytes());
                out.push(e.table_id);
                out.push(0);
                e.of_match.write_to(out);
                out.extend_from_slice(&e.duration_sec.to_be_bytes());
                out.extend_from_slice(&e.duration_nsec.to_be_bytes());
                out.extend_from_slice(&e.priority.to_be_bytes());
                out.extend_from_slice(&0u16.to_be_bytes()); // idle
                out.extend_from_slice(&0u16.to_be_bytes()); // hard
                out.extend_from_slice(&[0u8; 6]);
                out.extend_from_slice(&e.cookie.to_be_bytes());
                out.extend_from_slice(&e.packet_count.to_be_bytes());
                out.extend_from_slice(&e.byte_count.to_be_bytes());
                out.extend_from_slice(&acts);
            }
        }
        StatsBody::PortRequest { port_no } => {
            assert!(is_request);
            out.extend_from_slice(&OFPST_PORT.to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes());
            out.extend_from_slice(&port_no.to_be_bytes());
            out.extend_from_slice(&[0u8; 6]);
        }
        StatsBody::PortReply(entries) => {
            assert!(!is_request);
            out.extend_from_slice(&OFPST_PORT.to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes());
            for e in entries {
                out.extend_from_slice(&e.port_no.to_be_bytes());
                out.extend_from_slice(&[0u8; 6]);
                out.extend_from_slice(&e.rx_packets.to_be_bytes());
                out.extend_from_slice(&e.tx_packets.to_be_bytes());
                out.extend_from_slice(&e.rx_bytes.to_be_bytes());
                out.extend_from_slice(&e.tx_bytes.to_be_bytes());
                out.extend_from_slice(&e.rx_dropped.to_be_bytes());
                out.extend_from_slice(&e.tx_dropped.to_be_bytes());
                // rx/tx errors, frame/over/crc errors, collisions = 0.
                out.extend_from_slice(&[0u8; 48]);
            }
        }
    }
}

fn parse_stats(body: &[u8], is_request: bool) -> Result<StatsBody, WireError> {
    if body.len() < 4 {
        return Err(WireError::Truncated);
    }
    let stype = u16::from_be_bytes([body[0], body[1]]);
    let rest = &body[4..];
    match (stype, is_request) {
        (OFPST_FLOW, true) => {
            if rest.len() < OFP_MATCH_LEN + 4 {
                return Err(WireError::Truncated);
            }
            Ok(StatsBody::FlowRequest {
                of_match: OfMatch::parse(rest)?,
                table_id: rest[OFP_MATCH_LEN],
            })
        }
        (OFPST_FLOW, false) => {
            let mut entries = Vec::new();
            let mut b = rest;
            while !b.is_empty() {
                if b.len() < 88 {
                    return Err(WireError::Truncated);
                }
                let entry_len = u16::from_be_bytes([b[0], b[1]]) as usize;
                if entry_len < 88 || b.len() < entry_len {
                    return Err(WireError::Truncated);
                }
                let of_match = OfMatch::parse(&b[4..])?;
                entries.push(FlowStatsEntry {
                    table_id: b[2],
                    of_match,
                    duration_sec: u32::from_be_bytes(b[44..48].try_into().unwrap()),
                    duration_nsec: u32::from_be_bytes(b[48..52].try_into().unwrap()),
                    priority: u16::from_be_bytes([b[52], b[53]]),
                    cookie: u64::from_be_bytes(b[64..72].try_into().unwrap()),
                    packet_count: u64::from_be_bytes(b[72..80].try_into().unwrap()),
                    byte_count: u64::from_be_bytes(b[80..88].try_into().unwrap()),
                    actions: Action::parse_list(&b[88..entry_len])?,
                });
                b = &b[entry_len..];
            }
            Ok(StatsBody::FlowReply(entries))
        }
        (OFPST_PORT, true) => {
            if rest.len() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(StatsBody::PortRequest {
                port_no: u16::from_be_bytes([rest[0], rest[1]]),
            })
        }
        (OFPST_PORT, false) => {
            let mut entries = Vec::new();
            let mut b = rest;
            const LEN: usize = 104;
            while !b.is_empty() {
                if b.len() < LEN {
                    return Err(WireError::Truncated);
                }
                entries.push(PortStats {
                    port_no: u16::from_be_bytes([b[0], b[1]]),
                    rx_packets: u64::from_be_bytes(b[8..16].try_into().unwrap()),
                    tx_packets: u64::from_be_bytes(b[16..24].try_into().unwrap()),
                    rx_bytes: u64::from_be_bytes(b[24..32].try_into().unwrap()),
                    tx_bytes: u64::from_be_bytes(b[32..40].try_into().unwrap()),
                    rx_dropped: u64::from_be_bytes(b[40..48].try_into().unwrap()),
                    tx_dropped: u64::from_be_bytes(b[48..56].try_into().unwrap()),
                });
                b = &b[LEN..];
            }
            Ok(StatsBody::PortReply(entries))
        }
        (other, _) => Err(WireError::UnknownStatsType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn round_trip(msg: Message) {
        let wire = msg.encode(0x1234_5678);
        let (back, xid) = Message::decode(&wire).expect("decodes");
        assert_eq!(back, msg);
        assert_eq!(xid, 0x1234_5678);
        // Length field is exact.
        let h = Header::parse(&wire).unwrap();
        assert_eq!(h.length as usize, wire.len());
    }

    #[test]
    fn simple_messages_round_trip() {
        round_trip(Message::Hello);
        round_trip(Message::FeaturesRequest);
        round_trip(Message::BarrierRequest);
        round_trip(Message::BarrierReply);
        round_trip(Message::EchoRequest(EchoData(vec![1, 2, 3, 4])));
        round_trip(Message::EchoReply(EchoData(vec![])));
        round_trip(Message::Error {
            err_type: 3,
            code: 0,
            data: vec![0xde, 0xad],
        });
    }

    #[test]
    fn features_reply_round_trip() {
        round_trip(Message::FeaturesReply(FeaturesReply {
            datapath_id: 0x0000_beef_cafe_0001,
            n_buffers: 256,
            n_tables: 1,
            capabilities: 0xc7,
            actions: 0xfff,
            ports: vec![
                PhyPort {
                    port_no: 1,
                    hw_addr: MacAddr::local(1),
                    name: "eth1".into(),
                },
                PhyPort {
                    port_no: 2,
                    hw_addr: MacAddr::local(2),
                    name: "eth2".into(),
                },
            ],
        }));
    }

    #[test]
    fn flow_mod_round_trip() {
        round_trip(Message::FlowMod(FlowMod::add(
            OfMatch::ipv4_dst(Ipv4Addr::new(10, 0, 0, 9)),
            100,
            vec![Action::Output {
                port: 2,
                max_len: 0,
            }],
        )));
        round_trip(Message::FlowMod(FlowMod::delete_strict(
            OfMatch::udp_dst_port(9001),
            5,
        )));
    }

    #[test]
    fn packet_in_out_round_trip() {
        round_trip(Message::PacketIn(PacketIn {
            buffer_id: 0xffff_ffff,
            total_len: 128,
            in_port: 3,
            reason: PacketInReason::NoMatch,
            data: vec![0xaa; 60],
        }));
        round_trip(Message::PacketOut(PacketOut {
            buffer_id: 0xffff_ffff,
            in_port: 0xfff8,
            actions: vec![Action::Output {
                port: 1,
                max_len: 0,
            }],
            data: vec![0x55; 64],
        }));
    }

    #[test]
    fn flow_removed_round_trip() {
        round_trip(Message::FlowRemoved(FlowRemoved {
            of_match: OfMatch::udp_dst_port(80),
            cookie: 7,
            priority: 10,
            reason: 2,
            duration_sec: 12,
            duration_nsec: 500,
            packet_count: 1000,
            byte_count: 64_000,
        }));
    }

    #[test]
    fn stats_round_trips() {
        round_trip(Message::StatsRequest(StatsBody::FlowRequest {
            of_match: OfMatch::any(),
            table_id: 0xff,
        }));
        round_trip(Message::StatsRequest(StatsBody::PortRequest {
            port_no: 0xffff,
        }));
        round_trip(Message::StatsReply(StatsBody::FlowReply(vec![
            FlowStatsEntry {
                table_id: 0,
                of_match: OfMatch::ipv4_dst(Ipv4Addr::new(1, 2, 3, 4)),
                duration_sec: 3,
                duration_nsec: 250_000,
                priority: 9,
                cookie: 0xabcd,
                packet_count: 55,
                byte_count: 7040,
                actions: vec![Action::Output {
                    port: 4,
                    max_len: 0,
                }],
            },
        ])));
        round_trip(Message::StatsReply(StatsBody::PortReply(vec![
            PortStats {
                port_no: 1,
                rx_packets: 10,
                tx_packets: 20,
                rx_bytes: 640,
                tx_bytes: 1280,
                rx_dropped: 1,
                tx_dropped: 2,
            },
            PortStats::default(),
        ])));
    }

    #[test]
    fn truncated_decode_fails() {
        let wire = Message::FlowMod(FlowMod::add(OfMatch::any(), 1, vec![])).encode(1);
        assert!(Message::decode(&wire[..wire.len() - 4]).is_err());
    }
}
