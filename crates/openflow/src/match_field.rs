//! The OpenFlow 1.0 `ofp_match` structure (40 bytes, wildcard bitmap).

use crate::codec::WireError;
use osnt_packet::{MacAddr, ParsedPacket};
use std::net::Ipv4Addr;

/// Wildcard flag bits of `ofp_match.wildcards` (OpenFlow 1.0 §5.2.3).
pub mod wildcards {
    /// Switch input port.
    pub const IN_PORT: u32 = 1 << 0;
    /// VLAN id.
    pub const DL_VLAN: u32 = 1 << 1;
    /// Ethernet source address.
    pub const DL_SRC: u32 = 1 << 2;
    /// Ethernet destination address.
    pub const DL_DST: u32 = 1 << 3;
    /// Ethernet frame type.
    pub const DL_TYPE: u32 = 1 << 4;
    /// IP protocol.
    pub const NW_PROTO: u32 = 1 << 5;
    /// TCP/UDP source port.
    pub const TP_SRC: u32 = 1 << 6;
    /// TCP/UDP destination port.
    pub const TP_DST: u32 = 1 << 7;
    /// Source IP: 6-bit shift count (0 = exact, ≥32 = full wildcard).
    pub const NW_SRC_SHIFT: u32 = 8;
    /// Destination IP shift count position.
    pub const NW_DST_SHIFT: u32 = 14;
    /// VLAN PCP.
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    /// IP ToS.
    pub const NW_TOS: u32 = 1 << 21;
    /// Everything wildcarded.
    pub const ALL: u32 = 0x003f_ffff;
}

/// Length of the wire `ofp_match`.
pub const OFP_MATCH_LEN: usize = 40;

/// An OpenFlow 1.0 match. Fields are always present on the wire; the
/// wildcard bitmap says which ones count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OfMatch {
    /// Wildcard bitmap (see [`wildcards`]).
    pub wildcards: u32,
    /// Ingress port.
    pub in_port: u16,
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// VLAN id (0xffff = untagged, per the spec's OFP_VLAN_NONE).
    pub dl_vlan: u16,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// EtherType.
    pub dl_type: u16,
    /// IP ToS (DSCP, high 6 bits).
    pub nw_tos: u8,
    /// IP protocol (or ARP opcode low byte).
    pub nw_proto: u8,
    /// Source IPv4 address.
    pub nw_src: Ipv4Addr,
    /// Destination IPv4 address.
    pub nw_dst: Ipv4Addr,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl OfMatch {
    /// The match-everything entry.
    pub fn any() -> Self {
        OfMatch {
            wildcards: wildcards::ALL,
            in_port: 0,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_vlan: 0xffff,
            dl_vlan_pcp: 0,
            dl_type: 0,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        }
    }

    /// Exact match on an IPv4 destination address (common OFLOPS shape).
    pub fn ipv4_dst(dst: Ipv4Addr) -> Self {
        let mut m = OfMatch::any();
        m.dl_type = 0x0800;
        m.nw_dst = dst;
        m.wildcards &= !wildcards::DL_TYPE;
        m.set_nw_dst_prefix(32);
        m
    }

    /// Exact match on a UDP destination port for IPv4 traffic.
    pub fn udp_dst_port(port: u16) -> Self {
        let mut m = OfMatch::any();
        m.dl_type = 0x0800;
        m.nw_proto = 17;
        m.tp_dst = port;
        m.wildcards &= !(wildcards::DL_TYPE | wildcards::NW_PROTO | wildcards::TP_DST);
        m
    }

    /// Set the source-IP prefix length (32 = exact, 0 = wildcard).
    pub fn set_nw_src_prefix(&mut self, prefix_len: u8) {
        let shift = 32 - prefix_len.min(32) as u32;
        self.wildcards = (self.wildcards & !(0x3f << wildcards::NW_SRC_SHIFT))
            | (shift << wildcards::NW_SRC_SHIFT);
    }

    /// Set the destination-IP prefix length (32 = exact, 0 = wildcard).
    pub fn set_nw_dst_prefix(&mut self, prefix_len: u8) {
        let shift = 32 - prefix_len.min(32) as u32;
        self.wildcards = (self.wildcards & !(0x3f << wildcards::NW_DST_SHIFT))
            | (shift << wildcards::NW_DST_SHIFT);
    }

    fn nw_src_shift(&self) -> u32 {
        (self.wildcards >> wildcards::NW_SRC_SHIFT) & 0x3f
    }

    fn nw_dst_shift(&self) -> u32 {
        (self.wildcards >> wildcards::NW_DST_SHIFT) & 0x3f
    }

    /// Number of exact-match bits — the natural priority tiebreak for
    /// overlapping wildcard entries.
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        for bit in [
            wildcards::IN_PORT,
            wildcards::DL_VLAN,
            wildcards::DL_SRC,
            wildcards::DL_DST,
            wildcards::DL_TYPE,
            wildcards::NW_PROTO,
            wildcards::TP_SRC,
            wildcards::TP_DST,
        ] {
            if self.wildcards & bit == 0 {
                n += 1;
            }
        }
        n + (32 - self.nw_src_shift().min(32)) + (32 - self.nw_dst_shift().min(32))
    }

    /// Whether a parsed frame arriving on `in_port` satisfies this match.
    pub fn matches(&self, in_port: u16, p: &ParsedPacket<'_>) -> bool {
        let w = self.wildcards;
        if w & wildcards::IN_PORT == 0 && in_port != self.in_port {
            return false;
        }
        if w & wildcards::DL_SRC == 0 && p.src_mac() != Some(self.dl_src) {
            return false;
        }
        if w & wildcards::DL_DST == 0 && p.dst_mac() != Some(self.dl_dst) {
            return false;
        }
        if w & wildcards::DL_VLAN == 0 {
            let vid = p.vlan.map(|v| v.vid).unwrap_or(0xffff);
            if vid != self.dl_vlan {
                return false;
            }
        }
        if w & wildcards::DL_TYPE == 0 && p.effective_ethertype() != Some(self.dl_type) {
            return false;
        }
        if w & wildcards::NW_PROTO == 0 && p.ip_protocol() != Some(self.nw_proto) {
            return false;
        }
        let src_shift = self.nw_src_shift();
        if src_shift < 32 {
            let Some(std::net::IpAddr::V4(src)) = p.src_ip() else {
                return false;
            };
            if (u32::from(src) ^ u32::from(self.nw_src)) >> src_shift != 0 {
                return false;
            }
        }
        let dst_shift = self.nw_dst_shift();
        if dst_shift < 32 {
            let Some(std::net::IpAddr::V4(dst)) = p.dst_ip() else {
                return false;
            };
            if (u32::from(dst) ^ u32::from(self.nw_dst)) >> dst_shift != 0 {
                return false;
            }
        }
        if w & wildcards::TP_SRC == 0 && p.l4.map(|l| l.src_port) != Some(self.tp_src) {
            return false;
        }
        if w & wildcards::TP_DST == 0 && p.l4.map(|l| l.dst_port) != Some(self.tp_dst) {
            return false;
        }
        true
    }

    /// Serialise the 40-byte wire form.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.wildcards.to_be_bytes());
        out.extend_from_slice(&self.in_port.to_be_bytes());
        out.extend_from_slice(&self.dl_src.octets());
        out.extend_from_slice(&self.dl_dst.octets());
        out.extend_from_slice(&self.dl_vlan.to_be_bytes());
        out.push(self.dl_vlan_pcp);
        out.push(0); // pad
        out.extend_from_slice(&self.dl_type.to_be_bytes());
        out.push(self.nw_tos);
        out.push(self.nw_proto);
        out.extend_from_slice(&[0, 0]); // pad
        out.extend_from_slice(&self.nw_src.octets());
        out.extend_from_slice(&self.nw_dst.octets());
        out.extend_from_slice(&self.tp_src.to_be_bytes());
        out.extend_from_slice(&self.tp_dst.to_be_bytes());
    }

    /// Parse the 40-byte wire form.
    pub fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < OFP_MATCH_LEN {
            return Err(WireError::Truncated);
        }
        let mac = |off: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&bytes[off..off + 6]);
            MacAddr(m)
        };
        let ip =
            |off: usize| Ipv4Addr::new(bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]);
        Ok(OfMatch {
            wildcards: u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            in_port: u16::from_be_bytes([bytes[4], bytes[5]]),
            dl_src: mac(6),
            dl_dst: mac(12),
            dl_vlan: u16::from_be_bytes([bytes[18], bytes[19]]),
            dl_vlan_pcp: bytes[20],
            dl_type: u16::from_be_bytes([bytes[22], bytes[23]]),
            nw_tos: bytes[24],
            nw_proto: bytes[25],
            nw_src: ip(28),
            nw_dst: ip(32),
            tp_src: u16::from_be_bytes([bytes[36], bytes[37]]),
            tp_dst: u16::from_be_bytes([bytes[38], bytes[39]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osnt_packet::PacketBuilder;

    fn udp_frame(dst_ip: Ipv4Addr, dst_port: u16) -> osnt_packet::Packet {
        PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), dst_ip)
            .udp(1000, dst_port)
            .build()
    }

    #[test]
    fn wire_round_trip() {
        let m = OfMatch::udp_dst_port(9001);
        let mut buf = Vec::new();
        m.write_to(&mut buf);
        assert_eq!(buf.len(), OFP_MATCH_LEN);
        assert_eq!(OfMatch::parse(&buf).unwrap(), m);
    }

    #[test]
    fn any_matches_everything() {
        let m = OfMatch::any();
        let p = udp_frame(Ipv4Addr::new(1, 2, 3, 4), 99);
        assert!(m.matches(3, &p.parse()));
    }

    #[test]
    fn ipv4_dst_exact_match() {
        let m = OfMatch::ipv4_dst(Ipv4Addr::new(10, 1, 0, 5));
        let hit = udp_frame(Ipv4Addr::new(10, 1, 0, 5), 1);
        let miss = udp_frame(Ipv4Addr::new(10, 1, 0, 6), 1);
        assert!(m.matches(0, &hit.parse()));
        assert!(!m.matches(0, &miss.parse()));
    }

    #[test]
    fn dst_prefix_match() {
        let mut m = OfMatch::any();
        m.dl_type = 0x0800;
        m.wildcards &= !wildcards::DL_TYPE;
        m.nw_dst = Ipv4Addr::new(10, 1, 0, 0);
        m.set_nw_dst_prefix(16);
        assert!(m.matches(0, &udp_frame(Ipv4Addr::new(10, 1, 200, 9), 1).parse()));
        assert!(!m.matches(0, &udp_frame(Ipv4Addr::new(10, 2, 0, 9), 1).parse()));
    }

    #[test]
    fn udp_port_match() {
        let m = OfMatch::udp_dst_port(9001);
        assert!(m.matches(0, &udp_frame(Ipv4Addr::new(1, 1, 1, 1), 9001).parse()));
        assert!(!m.matches(0, &udp_frame(Ipv4Addr::new(1, 1, 1, 1), 9002).parse()));
    }

    #[test]
    fn in_port_match() {
        let mut m = OfMatch::any();
        m.in_port = 2;
        m.wildcards &= !wildcards::IN_PORT;
        let p = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 1);
        assert!(m.matches(2, &p.parse()));
        assert!(!m.matches(3, &p.parse()));
    }

    #[test]
    fn specificity_ranks_exactness() {
        assert_eq!(OfMatch::any().specificity(), 0);
        let m = OfMatch::ipv4_dst(Ipv4Addr::new(1, 1, 1, 1));
        let n = OfMatch::udp_dst_port(80);
        assert!(m.specificity() > 0);
        assert!(n.specificity() > 0);
        // dst /32 + dl_type = 33 exact bits vs dl_type+proto+port = 3.
        assert!(m.specificity() > n.specificity());
    }

    #[test]
    fn non_ip_frame_fails_ip_matches() {
        let m = OfMatch::ipv4_dst(Ipv4Addr::new(1, 1, 1, 1));
        let arp = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::BROADCAST)
            .raw_ethertype(0x0806)
            .payload(&[0u8; 46])
            .build();
        assert!(!m.matches(0, &arp.parse()));
    }
}
