#![warn(missing_docs)]
//! # osnt-error — the workspace error taxonomy
//!
//! A network tester exists to measure networks that misbehave; its own
//! harness must therefore *degrade*, not abort, when a config is bad or
//! a fault fires mid-run. This crate is the shared vocabulary for that:
//! every crate in the workspace reports construction and run failures as
//! an [`OsntError`] instead of panicking, and experiments thread the
//! error (or a partial result) back to the caller.
//!
//! The enum is hand-rolled in the `thiserror` idiom (a variant per
//! failure class, `Display` giving the human sentence, `std::error::Error`
//! implemented) — the build environment is offline, so no derive macros.

use core::fmt;

/// Every way the OSNT-rs measurement stack can fail without the failure
/// being a bug. Variants are coarse on purpose: callers match on the
/// *class* of failure (bad config vs. resource exhausted vs. channel
/// fault), and the payload carries the human detail.
#[derive(Debug, Clone, PartialEq)]
pub enum OsntError {
    /// A configuration value is invalid or inconsistent (caught at
    /// construction time, before any event runs).
    Config {
        /// Which subsystem rejected the configuration.
        context: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// A bounded resource (flow table, buffer, port vector) cannot hold
    /// what was requested.
    Capacity {
        /// The resource that is full.
        what: &'static str,
        /// Entries/bytes requested.
        needed: usize,
        /// Entries/bytes available.
        available: usize,
    },
    /// A component port that must be wired to a link is not.
    NotConnected {
        /// The component's name.
        component: String,
        /// The unwired port index.
        port: usize,
    },
    /// Bytes on a channel did not parse (truncated read, corrupt frame,
    /// malformed message).
    Decode {
        /// What failed to decode.
        what: &'static str,
        /// Parser detail.
        reason: String,
    },
    /// The OpenFlow control channel failed (disconnect, stall past the
    /// timeout, retries exhausted).
    ControlChannel {
        /// What happened on the channel.
        reason: String,
    },
    /// A run produced no usable samples (everything was lost to faults),
    /// so even a partial result would be empty.
    NoSamples {
        /// The experiment or pipeline that came up empty.
        context: &'static str,
    },
    /// A supervised run was aborted before completing — the watchdog
    /// detected a stalled heartbeat, or the operator cancelled it. The
    /// phases finished before the abort are journaled and survive as a
    /// partial report.
    RunAborted {
        /// The phase that was executing when the run died.
        phase: String,
        /// Last recorded progress: the simulated-time high-water mark
        /// (picoseconds) the run had reached.
        last_progress: u64,
    },
    /// The run journal failed at the I/O layer (create, append, fsync,
    /// truncate). Distinct from [`OsntError::Decode`], which covers
    /// corrupt *contents*; this is the disk itself failing.
    Journal {
        /// The journal operation that failed.
        op: &'static str,
        /// The underlying I/O detail.
        reason: String,
    },
    /// A contained panic: a shard worker or a measurement module
    /// unwound, was caught at the containment boundary, and converted
    /// into this error instead of poisoning the process.
    Panicked {
        /// The containment boundary that caught it.
        context: &'static str,
        /// The panic payload, stringified.
        reason: String,
    },
    /// A deterministically injected crash (chaos testing): the journal
    /// refused an append to simulate a SIGKILL landing at exactly that
    /// point. Nothing after the refusal reaches the disk — on-disk state
    /// is byte-identical to a real kill between two appends — so resume
    /// must reconstruct the run from whatever the journal holds.
    CrashInjected {
        /// 1-based index of the journal append the simulated kill hit.
        append: u64,
    },
    /// A chaos-campaign invariant audit failed: a conservation ledger,
    /// an ordering/causality check, or an integrity check over a report,
    /// capture, or journal did not hold. The system under test kept
    /// running — the *answer* is what is untrustworthy.
    InvariantViolated {
        /// The invariant that failed (stable, grep-able name).
        invariant: &'static str,
        /// What the audit observed.
        detail: String,
    },
}

impl OsntError {
    /// Shorthand for a [`OsntError::Config`].
    pub fn config(context: &'static str, reason: impl Into<String>) -> Self {
        OsntError::Config {
            context,
            reason: reason.into(),
        }
    }

    /// Shorthand for a [`OsntError::Decode`].
    pub fn decode(what: &'static str, reason: impl Into<String>) -> Self {
        OsntError::Decode {
            what,
            reason: reason.into(),
        }
    }

    /// Shorthand for a [`OsntError::ControlChannel`].
    pub fn control(reason: impl Into<String>) -> Self {
        OsntError::ControlChannel {
            reason: reason.into(),
        }
    }

    /// Shorthand for a [`OsntError::Journal`].
    pub fn journal(op: &'static str, reason: impl Into<String>) -> Self {
        OsntError::Journal {
            op,
            reason: reason.into(),
        }
    }

    /// Shorthand for a [`OsntError::Panicked`], stringifying the payload
    /// a `catch_unwind` returned (the common `&str` / `String` cases;
    /// anything else becomes an opaque marker).
    pub fn from_panic(context: &'static str, payload: &(dyn std::any::Any + Send)) -> Self {
        let reason = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        OsntError::Panicked { context, reason }
    }
}

impl fmt::Display for OsntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsntError::Config { context, reason } => {
                write!(f, "invalid {context} configuration: {reason}")
            }
            OsntError::Capacity {
                what,
                needed,
                available,
            } => {
                write!(f, "{what} full: needed {needed}, available {available}")
            }
            OsntError::NotConnected { component, port } => {
                write!(
                    f,
                    "component {component:?} port {port} is not wired to anything"
                )
            }
            OsntError::Decode { what, reason } => write!(f, "cannot decode {what}: {reason}"),
            OsntError::ControlChannel { reason } => {
                write!(f, "control channel failure: {reason}")
            }
            OsntError::NoSamples { context } => {
                write!(f, "{context} produced no usable samples")
            }
            OsntError::RunAborted {
                phase,
                last_progress,
            } => {
                write!(
                    f,
                    "run aborted during phase {phase:?} (last progress: simulated {last_progress} ps)"
                )
            }
            OsntError::Journal { op, reason } => {
                write!(f, "run journal {op} failed: {reason}")
            }
            OsntError::Panicked { context, reason } => {
                write!(f, "{context} panicked: {reason}")
            }
            OsntError::CrashInjected { append } => {
                write!(f, "injected crash: journal append #{append} was killed")
            }
            OsntError::InvariantViolated { invariant, detail } => {
                write!(f, "invariant {invariant} violated: {detail}")
            }
        }
    }
}

impl std::error::Error for OsntError {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, OsntError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = OsntError::config("generator", "batch must be >= 1");
        assert_eq!(
            e.to_string(),
            "invalid generator configuration: batch must be >= 1"
        );
        let e = OsntError::Capacity {
            what: "flow table",
            needed: 11,
            available: 10,
        };
        assert_eq!(e.to_string(), "flow table full: needed 11, available 10");
        let e = OsntError::NotConnected {
            component: "gen0".into(),
            port: 0,
        };
        assert!(e.to_string().contains("gen0"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&OsntError::control("disconnect"));
    }

    #[test]
    fn class_matching_works() {
        let e = OsntError::decode("OpenFlow message", "truncated at byte 3");
        assert!(matches!(e, OsntError::Decode { .. }));
    }
}
