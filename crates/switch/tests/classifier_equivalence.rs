//! Classifier equivalence: the tuple-space engine must be
//! observationally identical to the linear reference — same verdicts
//! (including the priority/specificity/insertion-order tie-break), same
//! hit counters, same table contents — across arbitrary interleavings
//! of flow_mods, expiry, and lookups.
//!
//! Two tables run the *same* operation sequence, one per classifier.
//! Because all mutation logic is engine-independent, their entry
//! vectors must stay byte-identical, so lookup verdicts can be compared
//! as raw indices. The interpreter (`lookup_idx`) is additionally
//! consulted as the semantic ground truth.

use osnt_openflow::match_field::wildcards;
use osnt_openflow::{Action, OfMatch};
use osnt_packet::{FlowKey, FlowKeyBlock, MacAddr, Packet, PacketBuilder};
use osnt_switch::flowtable::{FlowEntry, FlowTable};
use osnt_switch::Classifier;
use osnt_time::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const IP_POOL: [Ipv4Addr; 4] = [
    Ipv4Addr::new(10, 0, 0, 1),
    Ipv4Addr::new(10, 0, 0, 2),
    Ipv4Addr::new(10, 1, 0, 1),
    Ipv4Addr::new(192, 168, 1, 1),
];
const PREFIX_POOL: [u8; 4] = [8, 16, 24, 32];
const PORT_POOL: [u16; 4] = [53, 80, 443, 9001];

/// A generatable wildcard match: a few overlapping field shapes drawn
/// from small pools, so random sets collide on masks, values, and
/// ranks (equal-priority ties are frequent by construction).
#[derive(Debug, Clone, Copy)]
struct MatchSpec {
    ipv4: bool,
    nw_dst: Option<(u8, u8)>,
    tp_dst: Option<u8>,
    in_port: Option<u8>,
    priority: u16,
    hard_timeout: u16,
}

impl MatchSpec {
    fn build(&self) -> OfMatch {
        let mut m = OfMatch::any();
        if self.ipv4 {
            m.dl_type = 0x0800;
            m.wildcards &= !wildcards::DL_TYPE;
        }
        if let Some((ip, plen)) = self.nw_dst {
            m.nw_dst = IP_POOL[ip as usize];
            m.set_nw_dst_prefix(PREFIX_POOL[plen as usize]);
        }
        if let Some(p) = self.tp_dst {
            m.tp_dst = PORT_POOL[p as usize];
            m.wildcards &= !wildcards::TP_DST;
        }
        if let Some(p) = self.in_port {
            m.in_port = p as u16 + 1;
            m.wildcards &= !wildcards::IN_PORT;
        }
        m
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Add(MatchSpec),
    DeleteStrict(MatchSpec),
    Delete(MatchSpec),
    ModifyStrict(MatchSpec),
    Expire,
}

fn match_spec() -> impl Strategy<Value = MatchSpec> {
    (0u8..2, 0u8..17, 0u8..5, 0u8..4, 0u8..4, 0u8..5).prop_map(|(ipv4, nw, tp, inp, prio, hto)| {
        MatchSpec {
            ipv4: ipv4 == 1,
            nw_dst: (nw < 16).then_some((nw & 3, nw >> 2)),
            tp_dst: (tp < 4).then_some(tp),
            in_port: (inp < 3).then_some(inp),
            priority: [1u16, 5, 5, 9][prio as usize],
            hard_timeout: [0u16, 0, 0, 1, 2][hto as usize],
        }
    })
}

fn op() -> impl Strategy<Value = Op> {
    (0u8..8, match_spec()).prop_map(|(k, s)| match k {
        0..=3 => Op::Add(s),
        4 => Op::DeleteStrict(s),
        5 => Op::Delete(s),
        6 => Op::ModifyStrict(s),
        _ => Op::Expire,
    })
}

fn udp_frame(dst_ip: Ipv4Addr, dst_port: u16) -> Packet {
    PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
        .ipv4(Ipv4Addr::new(10, 9, 9, 9), dst_ip)
        .udp(1000, dst_port)
        .build()
}

fn out(port: u16) -> Vec<Action> {
    vec![Action::Output { port, max_len: 0 }]
}

/// Apply one op to a table. All mutation logic is engine-independent,
/// so both tables stay structurally identical.
fn apply(t: &mut FlowTable, i: usize, op: &Op) {
    let now = SimTime::from_ms(i as u64);
    match op {
        Op::Add(s) => {
            let mut e = FlowEntry::new(s.build(), s.priority, out(i as u16), now);
            e.hard_timeout = s.hard_timeout;
            let _ = t.add(e); // TableFull rejections are part of the behaviour
        }
        Op::DeleteStrict(s) => {
            t.delete(&s.build(), s.priority, true);
        }
        Op::Delete(s) => {
            t.delete(&s.build(), s.priority, false);
        }
        Op::ModifyStrict(s) => {
            t.modify(
                &s.build(),
                s.priority,
                true,
                &out((i as u16).wrapping_add(10_000)),
            );
        }
        Op::Expire => {
            t.expire(now);
        }
    }
}

/// The state both engines must agree on, entry for entry.
fn snapshot(t: &FlowTable) -> Vec<(OfMatch, u16, Vec<Action>, u64, u64)> {
    t.iter()
        .map(|e| {
            (
                e.of_match,
                e.priority,
                e.actions.clone(),
                e.packets,
                e.bytes,
            )
        })
        .collect()
}

proptest! {
    /// Random flow_mod histories + random traffic: both classifiers
    /// must return identical verdicts on every lookup path (scalar key,
    /// 8-lane block, interpreter ground truth) and accumulate identical
    /// hit counters — under overlapping masks, equal-priority ties, and
    /// capacity-constrained (table-full) histories.
    #[test]
    fn tuple_space_equals_linear(
        capacity in 4usize..24,
        ops in proptest::collection::vec(op(), 1..80),
        keys in proptest::collection::vec((0u8..4, 0u8..4), 1..24),
    ) {
        let mut linear = FlowTable::with_classifier(capacity, Classifier::Linear);
        let mut tuple = FlowTable::with_classifier(capacity, Classifier::TupleSpace);
        for (i, o) in ops.iter().enumerate() {
            apply(&mut linear, i, o);
            apply(&mut tuple, i, o);
        }
        prop_assert_eq!(snapshot(&linear), snapshot(&tuple));

        let frames: Vec<Packet> = keys
            .iter()
            .map(|&(ip, port)| udp_frame(IP_POOL[ip as usize], PORT_POOL[port as usize]))
            .collect();
        for in_port in [1u16, 2, 3] {
            // Scalar verdicts, all three paths.
            for frame in &frames {
                let parsed = frame.parse();
                let key = FlowKey::extract(&parsed);
                let truth = linear.lookup_idx(in_port, &parsed);
                prop_assert_eq!(linear.lookup_key_idx(in_port, &key), truth);
                prop_assert_eq!(tuple.lookup_key_idx(in_port, &key), truth);
                // Account on both so counters must track together.
                if let Some(i) = truth {
                    let now = SimTime::from_secs(999);
                    FlowTable::account(linear.entry_mut(i), now, frame.frame_len());
                    FlowTable::account(tuple.entry_mut(i), now, frame.frame_len());
                }
            }
            // Block verdicts, 8 lanes at a time.
            for chunk in frames.chunks(8) {
                let mut block = FlowKeyBlock::new();
                let mut expect = Vec::new();
                for frame in chunk {
                    let parsed = frame.parse();
                    block.push(&FlowKey::extract(&parsed));
                    expect.push(linear.lookup_idx(in_port, &parsed));
                }
                let lin = linear.lookup_block_idx(in_port, &block);
                let tup = tuple.lookup_block_idx(in_port, &block);
                prop_assert_eq!(&lin[..expect.len()], &expect[..]);
                prop_assert_eq!(&tup[..expect.len()], &expect[..]);
            }
        }
        prop_assert_eq!(snapshot(&linear), snapshot(&tuple));
    }
}

/// Deterministic splitmix64 — a seeded op stream without touching the
/// tables' entropy or adding dependencies.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// 100k-flow_mod churn with interleaved lookups: the tuple engine's
/// incremental maintenance (insert/remove/relocate under `swap_remove`
/// storage) must never drift from the linear reference, no matter how
/// long the history. Verdicts are cross-checked periodically (the
/// linear table recompiles O(n) rows per check, so checks are sampled);
/// final table state is compared entry-for-entry.
#[test]
fn hundred_k_flowmod_churn_stays_equivalent() {
    const OPS: usize = 100_000;
    const CAPACITY: usize = 1024;
    let mut rng = SplitMix(0xE15_F10);
    let mut linear = FlowTable::with_classifier(CAPACITY, Classifier::Linear);
    let mut tuple = FlowTable::with_classifier(CAPACITY, Classifier::TupleSpace);

    let spec_from = |r: u64| {
        let nw = (r >> 8) & 0xf;
        MatchSpec {
            ipv4: r & 1 == 0,
            nw_dst: (nw < 12).then_some(((nw & 3) as u8, ((nw >> 2) & 3) as u8)),
            tp_dst: ((r >> 16) & 3 != 3).then_some(((r >> 18) & 3) as u8),
            in_port: ((r >> 24) & 7 == 0).then_some(((r >> 27) & 1) as u8),
            priority: [1u16, 5, 5, 9][((r >> 32) & 3) as usize],
            hard_timeout: [0u16, 0, 0, 1][((r >> 40) & 3) as usize],
        }
    };
    let mut lookups = 0u64;
    let mut hits = 0u64;
    for i in 0..OPS {
        let r = rng.next();
        let s = spec_from(r);
        let o = match r % 16 {
            0..=8 => Op::Add(s),
            9..=11 => Op::DeleteStrict(s),
            12 => Op::Delete(s),
            13..=14 => Op::ModifyStrict(s),
            _ => Op::Expire,
        };
        apply(&mut linear, i, &o);
        apply(&mut tuple, i, &o);
        assert_eq!(linear.len(), tuple.len(), "len diverged at op {i}");
        // Tuple-engine lookups are cheap — probe every 8 ops; pull the
        // linear reference in every 512th op (it recompiles O(n) rows).
        if i % 8 == 0 {
            let k = rng.next();
            let frame = udp_frame(
                IP_POOL[(k & 3) as usize],
                PORT_POOL[((k >> 2) & 3) as usize],
            );
            let in_port = ((k >> 4) & 1) as u16 + 1;
            let key = FlowKey::extract(&frame.parse());
            let t = tuple.lookup_key_idx(in_port, &key);
            lookups += 1;
            hits += t.is_some() as u64;
            if i % 512 == 0 {
                assert_eq!(
                    linear.lookup_key_idx(in_port, &key),
                    t,
                    "verdict diverged at op {i}"
                );
                assert_eq!(
                    linear.lookup_idx(in_port, &frame.parse()),
                    t,
                    "interpreter diverged at op {i}"
                );
            }
        }
    }
    assert_eq!(snapshot(&linear), snapshot(&tuple));
    assert!(lookups >= (OPS / 8) as u64);
    // The workload must actually exercise matches, not just misses.
    assert!(hits > 0, "churn produced no matching lookups");
    // And a final exhaustive sweep across the whole key pool.
    for ip in IP_POOL {
        for port in PORT_POOL {
            let frame = udp_frame(ip, port);
            let parsed = frame.parse();
            let key = FlowKey::extract(&parsed);
            for in_port in [1u16, 2] {
                let truth = linear.lookup_idx(in_port, &parsed);
                assert_eq!(linear.lookup_key_idx(in_port, &key), truth);
                assert_eq!(tuple.lookup_key_idx(in_port, &key), truth);
            }
        }
    }
}
