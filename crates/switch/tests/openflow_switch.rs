//! Component-level tests of the OpenFlow switch model: a scripted
//! controller drives the control channel directly and hosts observe the
//! dataplane.

use osnt_netsim::{Component, ComponentId, Kernel, LinkSpec, SimBuilder};
use osnt_openflow::messages::{FlowMod, Message, PacketOut, StatsBody};
use osnt_openflow::{Action, OfMatch};
use osnt_packet::{MacAddr, Packet, PacketBuilder};
use osnt_switch::{decap_control, encap_control, OfSwitchConfig, OpenFlowSwitch};
use osnt_time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// A controller that sends a scripted list of (time, message) and logs
/// every reply with its arrival time.
struct ScriptedController {
    script: Vec<(SimTime, Message)>,
    log: Rc<RefCell<Vec<(SimTime, Message, u32)>>>,
}

impl Component for ScriptedController {
    fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
        for (i, (t, _)) in self.script.iter().enumerate() {
            k.schedule_timer_at(me, *t, i as u64);
        }
    }
    fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
        let msg = self.script[tag as usize].1.clone();
        let _ = k.transmit(me, 0, encap_control(&msg, tag as u32 + 1));
    }
    fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, pkt: Packet) {
        if let Some(Ok((msg, xid))) = decap_control(&pkt) {
            self.log.borrow_mut().push((k.now(), msg, xid));
        }
    }
}

/// A host that sends a scripted list of frames and records arrivals.
struct Host {
    script: Vec<(SimTime, Packet)>,
    got: Rc<RefCell<Vec<(SimTime, Packet)>>>,
}

impl Component for Host {
    fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
        for (i, (t, _)) in self.script.iter().enumerate() {
            k.schedule_timer_at(me, *t, i as u64);
        }
    }
    fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
        let _ = k.transmit(me, 0, self.script[tag as usize].1.clone());
    }
    fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, pkt: Packet) {
        self.got.borrow_mut().push((k.now(), pkt));
    }
}

fn probe_to(dst: Ipv4Addr) -> Packet {
    PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
        .ipv4(Ipv4Addr::new(10, 0, 0, 1), dst)
        .udp(5001, 9001)
        .build()
}

type HostLog = Rc<RefCell<Vec<(SimTime, Packet)>>>;

struct Net {
    sim: osnt_netsim::Sim,
    ctl_log: Rc<RefCell<Vec<(SimTime, Message, u32)>>>,
    host_got: Vec<HostLog>,
}

/// Build: controller + switch with 3 data ports, hosts on every data
/// port. Host 0 sends `host_script`; the controller sends `ctl_script`.
fn build(
    cfg: OfSwitchConfig,
    ctl_script: Vec<(SimTime, Message)>,
    host_script: Vec<(SimTime, Packet)>,
) -> Net {
    let mut b = SimBuilder::new();
    let switch = OpenFlowSwitch::new(cfg);
    let ctrl_port = switch.control_port();
    let kports = switch.kernel_ports();
    let sw = b.add_component("switch", Box::new(switch), kports);

    let ctl_log = Rc::new(RefCell::new(Vec::new()));
    let ctl = b.add_component(
        "ctl",
        Box::new(ScriptedController {
            script: ctl_script,
            log: ctl_log.clone(),
        }),
        1,
    );
    b.connect(ctl, 0, sw, ctrl_port, LinkSpec::one_gig());

    let mut host_got = Vec::new();
    for p in 0..3 {
        let got = Rc::new(RefCell::new(Vec::new()));
        let host = Host {
            script: if p == 0 { host_script.clone() } else { vec![] },
            got: got.clone(),
        };
        let h = b.add_component(&format!("h{p}"), Box::new(host), 1);
        b.connect(h, 0, sw, p, LinkSpec::ten_gig());
        host_got.push(got);
    }
    Net {
        sim: b.build(),
        ctl_log,
        host_got,
    }
}

fn out_port(p: u16) -> Vec<Action> {
    vec![Action::Output {
        port: p,
        max_len: 0,
    }]
}

#[test]
fn installed_rule_forwards_after_hw_delay_only() {
    let dst = Ipv4Addr::new(10, 1, 0, 1);
    // Probes every 100 µs from t=1ms; rule installed at t=5ms.
    let probes: Vec<(SimTime, Packet)> = (0..400)
        .map(|i| (SimTime::from_us(1_000 + i * 100), probe_to(dst)))
        .collect();
    let ctl = vec![
        // Drop-all first so misses don't flood packet_ins.
        (
            SimTime::ZERO,
            Message::FlowMod(FlowMod::add(OfMatch::any(), 0, vec![])),
        ),
        (
            SimTime::from_ms(5),
            Message::FlowMod(FlowMod::add(OfMatch::ipv4_dst(dst), 10, out_port(2))),
        ),
    ];
    let mut net = build(OfSwitchConfig::default(), ctl, probes);
    net.sim.run_until(SimTime::from_ms(60));
    let got = net.host_got[1].borrow(); // data port 1 = wire port 2
    assert!(!got.is_empty(), "rule must eventually forward");
    let first = got[0].0;
    // flow_mod reaches the switch ~µs after 5 ms, CPU 25 µs, hw 1 ms:
    // nothing before ~6 ms, something soon after.
    assert!(first >= SimTime::from_us(6_000), "first at {first}");
    assert!(first <= SimTime::from_us(6_300), "first at {first}");
}

#[test]
fn dishonest_barrier_replies_before_hw_commit() {
    let dst = Ipv4Addr::new(10, 1, 0, 1);
    let ctl = vec![
        (
            SimTime::from_ms(1),
            Message::FlowMod(FlowMod::add(OfMatch::ipv4_dst(dst), 10, out_port(2))),
        ),
        (SimTime::from_ms(1), Message::BarrierRequest),
    ];
    let mut net = build(OfSwitchConfig::default(), ctl, vec![]);
    net.sim.run_until(SimTime::from_ms(20));
    let log = net.ctl_log.borrow();
    let barrier = log
        .iter()
        .find(|(_, m, _)| matches!(m, Message::BarrierReply))
        .expect("barrier reply");
    // CPU time is 25 µs + 1 µs; the 1 ms hw install must NOT be waited
    // for.
    assert!(
        barrier.0 < SimTime::from_us(1_200),
        "barrier at {}",
        barrier.0
    );
}

#[test]
fn honest_barrier_waits_for_hw_commit() {
    let dst = Ipv4Addr::new(10, 1, 0, 1);
    let ctl = vec![
        (
            SimTime::from_ms(1),
            Message::FlowMod(FlowMod::add(OfMatch::ipv4_dst(dst), 10, out_port(2))),
        ),
        (SimTime::from_ms(1), Message::BarrierRequest),
    ];
    let cfg = OfSwitchConfig {
        honest_barrier: true,
        ..OfSwitchConfig::default()
    };
    let mut net = build(cfg, ctl, vec![]);
    net.sim.run_until(SimTime::from_ms(20));
    let log = net.ctl_log.borrow();
    let barrier = log
        .iter()
        .find(|(_, m, _)| matches!(m, Message::BarrierReply))
        .expect("barrier reply");
    assert!(
        barrier.0 >= SimTime::from_us(2_000),
        "barrier at {}",
        barrier.0
    );
}

#[test]
fn table_full_returns_openflow_error() {
    let cfg = OfSwitchConfig {
        table_capacity: 2,
        ..OfSwitchConfig::default()
    };
    let ctl = (0..4u8)
        .map(|i| {
            (
                SimTime::from_ms(1 + i as u64),
                Message::FlowMod(FlowMod::add(
                    OfMatch::ipv4_dst(Ipv4Addr::new(10, 1, 0, i + 1)),
                    10,
                    out_port(2),
                )),
            )
        })
        .collect();
    let mut net = build(cfg, ctl, vec![]);
    net.sim.run_until(SimTime::from_ms(30));
    let log = net.ctl_log.borrow();
    let errors: Vec<_> = log
        .iter()
        .filter(|(_, m, _)| {
            matches!(
                m,
                Message::Error {
                    err_type: 3,
                    code: 0,
                    ..
                }
            )
        })
        .collect();
    assert_eq!(errors.len(), 2, "third and fourth adds must be rejected");
}

#[test]
fn miss_generates_packet_in_with_truncated_payload() {
    let dst = Ipv4Addr::new(10, 9, 9, 9);
    let mut big = probe_to(dst);
    let orig_len = big.len();
    // Make it a 1518B frame to check truncation.
    let mut data = big.into_vec();
    data.resize(1514, 0xEE);
    big = Packet::from_vec(data);
    assert!(orig_len < 1514);
    let mut net = build(
        OfSwitchConfig::default(),
        vec![],
        vec![(SimTime::from_ms(1), big)],
    );
    net.sim.run_until(SimTime::from_ms(10));
    let log = net.ctl_log.borrow();
    let pi = log
        .iter()
        .find_map(|(_, m, _)| match m {
            Message::PacketIn(p) => Some(p.clone()),
            _ => None,
        })
        .expect("packet_in");
    assert_eq!(pi.in_port, 1);
    assert_eq!(pi.total_len, 1518);
    assert_eq!(pi.data.len(), 128, "miss_send_len truncation");
}

#[test]
fn packet_out_emits_on_requested_port() {
    let frame = probe_to(Ipv4Addr::new(1, 2, 3, 4));
    let ctl = vec![(
        SimTime::from_ms(1),
        Message::PacketOut(PacketOut {
            buffer_id: 0xffff_ffff,
            in_port: 0xfff8,
            actions: out_port(3),
            data: frame.data().to_vec(),
        }),
    )];
    let mut net = build(OfSwitchConfig::default(), ctl, vec![]);
    net.sim.run_until(SimTime::from_ms(10));
    assert_eq!(
        net.host_got[2].borrow().len(),
        1,
        "wire port 3 = data port 2"
    );
    assert_eq!(net.host_got[0].borrow().len(), 0);
    assert_eq!(net.host_got[1].borrow().len(), 0);
}

#[test]
fn flow_stats_report_match_counters() {
    let dst = Ipv4Addr::new(10, 1, 0, 1);
    let probes: Vec<(SimTime, Packet)> = (0..10)
        .map(|i| (SimTime::from_ms(10 + i), probe_to(dst)))
        .collect();
    let ctl = vec![
        (
            SimTime::from_ms(1),
            Message::FlowMod(FlowMod::add(OfMatch::ipv4_dst(dst), 10, out_port(2))),
        ),
        (
            SimTime::from_ms(40),
            Message::StatsRequest(StatsBody::FlowRequest {
                of_match: OfMatch::any(),
                table_id: 0xff,
            }),
        ),
    ];
    let mut net = build(OfSwitchConfig::default(), ctl, probes);
    net.sim.run_until(SimTime::from_ms(60));
    let log = net.ctl_log.borrow();
    let reply = log
        .iter()
        .find_map(|(_, m, _)| match m {
            Message::StatsReply(StatsBody::FlowReply(e)) => Some(e.clone()),
            _ => None,
        })
        .expect("flow stats reply");
    assert_eq!(reply.len(), 1);
    assert_eq!(reply[0].packet_count, 10);
    assert_eq!(reply[0].byte_count, 10 * 64);
    assert_eq!(reply[0].priority, 10);
}

#[test]
fn port_stats_reflect_forwarded_traffic() {
    let dst = Ipv4Addr::new(10, 1, 0, 1);
    let probes: Vec<(SimTime, Packet)> = (0..5)
        .map(|i| (SimTime::from_ms(10 + i), probe_to(dst)))
        .collect();
    let ctl = vec![
        (
            SimTime::from_ms(1),
            Message::FlowMod(FlowMod::add(OfMatch::ipv4_dst(dst), 10, out_port(2))),
        ),
        (
            SimTime::from_ms(40),
            Message::StatsRequest(StatsBody::PortRequest { port_no: 0xffff }),
        ),
    ];
    let mut net = build(OfSwitchConfig::default(), ctl, probes);
    net.sim.run_until(SimTime::from_ms(60));
    let log = net.ctl_log.borrow();
    let ports = log
        .iter()
        .find_map(|(_, m, _)| match m {
            Message::StatsReply(StatsBody::PortReply(p)) => Some(p.clone()),
            _ => None,
        })
        .expect("port stats reply");
    assert_eq!(ports.len(), 4, "default switch reports all four data ports");
    let p1 = ports.iter().find(|p| p.port_no == 1).unwrap();
    let p2 = ports.iter().find(|p| p.port_no == 2).unwrap();
    assert_eq!(p1.rx_packets, 5);
    assert_eq!(p2.tx_packets, 5);
}

#[test]
fn hard_timeout_sends_flow_removed_when_flagged() {
    let dst = Ipv4Addr::new(10, 1, 0, 1);
    let mut fm = FlowMod::add(OfMatch::ipv4_dst(dst), 10, out_port(2));
    fm.hard_timeout = 1; // one second
    fm.flags = 1; // OFPFF_SEND_FLOW_REM
    let ctl = vec![(SimTime::from_ms(1), Message::FlowMod(fm))];
    let mut net = build(OfSwitchConfig::default(), ctl, vec![]);
    net.sim.run_until(SimTime::from_ms(1_500));
    let log = net.ctl_log.borrow();
    let removed = log
        .iter()
        .find_map(|(t, m, _)| match m {
            Message::FlowRemoved(f) => Some((*t, f.clone())),
            _ => None,
        })
        .expect("flow removed");
    assert_eq!(removed.1.reason, 1, "hard timeout reason");
    assert!(removed.0 >= SimTime::from_secs(1));
    assert!(removed.0 < SimTime::from_ms(1_200), "sweep period bound");
}

#[test]
fn echo_queues_behind_flow_mods() {
    // 40 flow_mods then an echo: the echo reply is delayed by the CPU
    // drain (~40 × 25 µs), far beyond its own 10 µs cost.
    let mut ctl: Vec<(SimTime, Message)> = (0..40u8)
        .map(|i| {
            (
                SimTime::from_ms(1),
                Message::FlowMod(FlowMod::add(
                    OfMatch::ipv4_dst(Ipv4Addr::new(10, 1, 0, i + 1)),
                    10,
                    out_port(2),
                )),
            )
        })
        .collect();
    ctl.push((
        SimTime::from_ms(1),
        Message::EchoRequest(osnt_openflow::messages::EchoData(vec![1, 2, 3])),
    ));
    let mut net = build(OfSwitchConfig::default(), ctl, vec![]);
    net.sim.run_until(SimTime::from_ms(30));
    let log = net.ctl_log.borrow();
    let echo = log
        .iter()
        .find(|(_, m, _)| matches!(m, Message::EchoReply(_)))
        .expect("echo reply");
    assert!(
        echo.0 >= SimTime::from_ms(1) + SimDuration::from_us(1_000),
        "echo at {} should queue behind ~1 ms of flow_mod processing",
        echo.0
    );
}

/// A host that emits bursts of back-to-back frames through
/// `Kernel::transmit_batch`, so the switch receives whole
/// `DeliverBurst` events — the input the block-classified batch path
/// exists for.
struct BurstHost {
    /// (fire time, frames to send back-to-back).
    script: Vec<(SimTime, Vec<Packet>)>,
    got: Rc<RefCell<Vec<(SimTime, Packet)>>>,
}

impl Component for BurstHost {
    fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
        for (i, (t, _)) in self.script.iter().enumerate() {
            k.schedule_timer_at(me, *t, i as u64);
        }
    }
    fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
        let frames = self.script[tag as usize].1.clone();
        let mut it = frames.into_iter();
        let _ = k.transmit_batch(me, 0, &mut |_| it.next(), None);
    }
    fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, pkt: Packet) {
        self.got.borrow_mut().push((k.now(), pkt));
    }
}

/// Observable trace of one run: every host's arrivals (time + frame
/// bytes) and the controller log, fully ordered.
type RunTrace = (Vec<Vec<(u64, Vec<u8>)>>, Vec<(u64, String)>);

fn burst_run(cfg: OfSwitchConfig) -> RunTrace {
    let mut b = SimBuilder::new();
    let switch = OpenFlowSwitch::new(cfg);
    let ctrl_port = switch.control_port();
    let kports = switch.kernel_ports();
    let sw = b.add_component("switch", Box::new(switch), kports);

    let dst_a = Ipv4Addr::new(10, 1, 0, 1); // rule → wire port 2
    let dst_b = Ipv4Addr::new(10, 1, 0, 2); // rule → wire port 3
    let dst_miss = Ipv4Addr::new(10, 9, 9, 9); // no rule → punt
    let ctl_script = vec![
        (
            SimTime::ZERO,
            Message::FlowMod(FlowMod::add(OfMatch::ipv4_dst(dst_a), 10, out_port(2))),
        ),
        (
            SimTime::ZERO,
            Message::FlowMod(FlowMod::add(OfMatch::ipv4_dst(dst_b), 10, out_port(3))),
        ),
        // NORMAL forwarding for a distinctive UDP port, to exercise the
        // CAM inside batched windows.
        (
            SimTime::ZERO,
            Message::FlowMod(FlowMod::add(
                OfMatch::udp_dst_port(7777),
                20,
                vec![Action::Output {
                    port: osnt_openflow::actions::port_no::NORMAL,
                    max_len: 0,
                }],
            )),
        ),
        // A flow-stats request late in the run pins table counters
        // (per-entry packets/bytes/last_match) into the observable
        // trace.
        (
            SimTime::from_ms(8),
            Message::StatsRequest(StatsBody::FlowRequest {
                of_match: OfMatch::any(),
                table_id: 0xff,
            }),
        ),
    ];
    let ctl_log = Rc::new(RefCell::new(Vec::new()));
    let ctl = b.add_component(
        "ctl",
        Box::new(ScriptedController {
            script: ctl_script,
            log: ctl_log.clone(),
        }),
        1,
    );
    b.connect(ctl, 0, sw, ctrl_port, LinkSpec::one_gig());

    let frame_to = |dst: Ipv4Addr, len: usize| {
        PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), dst)
            .udp(5001, 9001)
            .pad_to_frame(len)
            .build()
    };
    // Bursts from t=2ms (rules are in hardware by ~1.1ms): mixed hits,
    // misses, and NORMAL-matched frames, at several frame sizes so some
    // inter-arrival gaps straddle the 900 ns batch window.
    let mut bursts = Vec::new();
    for i in 0..40u64 {
        let frames: Vec<Packet> = (0..8u64)
            .map(|j| match (i + j) % 5 {
                0 => frame_to(dst_a, 64),
                1 => frame_to(dst_b, 64),
                2 => frame_to(dst_a, 1000),
                3 if i % 8 == 0 => frame_to(dst_miss, 64),
                3 => frame_to(dst_a, 64),
                _ => PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(9))
                    .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 2, 0, 1))
                    .udp(5001, 7777)
                    .build(),
            })
            .collect();
        bursts.push((SimTime::from_us(2_000 + i * 40), frames));
    }
    let burst_got = Rc::new(RefCell::new(Vec::new()));
    let bh = b.add_component(
        "burst-host",
        Box::new(BurstHost {
            script: bursts,
            got: burst_got.clone(),
        }),
        1,
    );
    b.connect(bh, 0, sw, 0, LinkSpec::ten_gig());

    // A scalar host on port 1 replies toward MAC local(1), so NORMAL
    // entries resolve through the CAM both ways.
    let mut host_got = vec![burst_got];
    for p in 1..3 {
        let got = Rc::new(RefCell::new(Vec::new()));
        let script: Vec<(SimTime, Packet)> = if p == 1 {
            (0..20u64)
                .map(|i| {
                    (
                        SimTime::from_us(2_013 + i * 71),
                        PacketBuilder::ethernet(MacAddr::local(9), MacAddr::local(1))
                            .ipv4(Ipv4Addr::new(10, 2, 0, 1), Ipv4Addr::new(10, 0, 0, 1))
                            .udp(9001, 7777)
                            .build(),
                    )
                })
                .collect()
        } else {
            vec![]
        };
        let h = b.add_component(
            &format!("h{p}"),
            Box::new(Host {
                script,
                got: got.clone(),
            }),
            1,
        );
        b.connect(h, 0, sw, p, LinkSpec::ten_gig());
        host_got.push(got);
    }

    let mut sim = b.build();
    sim.run_until(SimTime::from_ms(12));

    let hosts = host_got
        .iter()
        .map(|g| {
            g.borrow()
                .iter()
                .map(|(t, p)| (t.as_ps(), p.data().to_vec()))
                .collect()
        })
        .collect();
    let ctl = ctl_log
        .borrow()
        .iter()
        .map(|(t, m, xid)| (t.as_ps(), format!("{m:?} xid={xid}")))
        .collect();
    (hosts, ctl)
}

/// The tentpole invariant: the block-classified batch path and the
/// compiled lookup are byte-identical to scalar interpreted dispatch —
/// same frames, same arrival instants, same punts, same flow counters.
#[test]
fn batched_block_dispatch_is_byte_identical_to_scalar() {
    let run = |batch: bool, compiled: bool| {
        burst_run(OfSwitchConfig {
            batch,
            compiled_lookup: compiled,
            ..OfSwitchConfig::default()
        })
    };
    let reference = run(false, false);
    // The reference run must actually exercise the interesting paths.
    let deliveries: usize = reference.0.iter().map(Vec::len).sum();
    assert!(deliveries > 300, "only {deliveries} deliveries");
    assert!(
        reference.1.iter().any(|(_, m)| m.contains("PacketIn")),
        "no punts exercised"
    );
    assert!(
        reference.1.iter().any(|(_, m)| m.contains("StatsReply")),
        "no stats snapshot"
    );
    for (batch, compiled) in [(true, true), (true, false), (false, true)] {
        let got = run(batch, compiled);
        assert_eq!(
            got, reference,
            "divergence with batch={batch} compiled={compiled}"
        );
    }
}
