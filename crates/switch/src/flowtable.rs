//! The OpenFlow switch's flow table.

use crate::compiled::CompiledOfMatch;
use osnt_openflow::match_field::wildcards;
use osnt_openflow::{Action, OfMatch};
use osnt_packet::{FlowKey, FlowKeyBlock, ParsedPacket, BLOCK_LANES};
use osnt_time::SimTime;

/// Returned when an ADD would exceed the table capacity
/// (`OFPET_FLOW_MOD_FAILED` / `ALL_TABLES_FULL` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl From<TableFull> for osnt_error::OsntError {
    /// Lift the wire-level rejection into the workspace taxonomy: one
    /// more entry was needed and none were available.
    fn from(_: TableFull) -> Self {
        osnt_error::OsntError::Capacity {
            what: "flow table",
            needed: 1,
            available: 0,
        }
    }
}

/// One installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// Match fields.
    pub of_match: OfMatch,
    /// Priority (higher wins among overlapping entries).
    pub priority: u16,
    /// Actions.
    pub actions: Vec<Action>,
    /// Controller cookie.
    pub cookie: u64,
    /// Flow-mod flag bits (bit 0 = send FLOW_REMOVED).
    pub flags: u16,
    /// Idle timeout, seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout, seconds (0 = none).
    pub hard_timeout: u16,
    /// Installation instant.
    pub installed_at: SimTime,
    /// Last instant the entry matched a packet.
    pub last_match: SimTime,
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
}

impl FlowEntry {
    /// A fresh entry installed at `now`.
    pub fn new(of_match: OfMatch, priority: u16, actions: Vec<Action>, now: SimTime) -> Self {
        FlowEntry {
            of_match,
            priority,
            actions,
            cookie: 0,
            flags: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            installed_at: now,
            last_match: now,
            packets: 0,
            bytes: 0,
        }
    }
}

/// Why an entry was removed (OpenFlow 1.0 `ofp_flow_removed_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalReason {
    /// Idle timeout elapsed.
    IdleTimeout,
    /// Hard timeout elapsed.
    HardTimeout,
    /// An explicit DELETE.
    Delete,
}

impl RemovalReason {
    /// The wire code.
    pub fn code(self) -> u8 {
        match self {
            RemovalReason::IdleTimeout => 0,
            RemovalReason::HardTimeout => 1,
            RemovalReason::Delete => 2,
        }
    }
}

/// One row of the compiled lookup cache: the entry's match lowered to
/// masked-word compares plus its precomputed tie-break rank.
///
/// Rows are kept **sorted by descending rank** (stable, so ties keep
/// installation order). That turns best-match search into first-match
/// search: the scan stops at the first row that matches, where the
/// interpreter must always walk the whole table to find the best rank.
#[derive(Debug, Clone, Copy)]
struct CompiledRow {
    m: CompiledOfMatch,
    /// `(priority, specificity)` — cached so winner selection doesn't
    /// recount wildcard bits, and the sort key of the compiled order.
    rank: (u16, u32),
    /// Index of the source row in `entries` (rank-sorting reorders the
    /// compiled rows but lookups must report entry indices).
    idx: usize,
}

/// A bounded, priority-ordered flow table.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    capacity: usize,
    /// Entries lowered for the key-word lookup path, parallel to
    /// `entries`. `None` means stale; rebuilt lazily on the next
    /// compiled lookup, so flow-mod trains pay one rebuild, not one per
    /// mod. MODIFY doesn't invalidate — it only rewrites actions.
    compiled: Option<Vec<CompiledRow>>,
}

impl FlowTable {
    /// A table holding at most `capacity` entries (a TCAM budget).
    pub fn new(capacity: usize) -> Self {
        FlowTable {
            entries: Vec::new(),
            capacity,
            compiled: None,
        }
    }

    /// Installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate over entries.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// ADD semantics: identical (match, priority) replaces in place;
    /// otherwise append, failing when full.
    pub fn add(&mut self, entry: FlowEntry) -> Result<(), TableFull> {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.of_match == entry.of_match && e.priority == entry.priority)
        {
            // Same (match, priority): the compiled row is unchanged.
            *existing = entry;
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            return Err(TableFull);
        }
        self.entries.push(entry);
        self.compiled = None;
        Ok(())
    }

    /// Best-match lookup for a frame arriving on `in_port`. Ties on
    /// priority break toward more exact-match bits, then earlier
    /// installation — deterministic, like a TCAM's fixed row order.
    pub fn lookup(&mut self, in_port: u16, packet: &ParsedPacket<'_>) -> Option<&mut FlowEntry> {
        self.lookup_idx(in_port, packet)
            .map(move |i| &mut self.entries[i])
    }

    /// Index form of [`FlowTable::lookup`], for callers that need to
    /// release the borrow between lookup and accounting.
    pub fn lookup_idx(&self, in_port: u16, packet: &ParsedPacket<'_>) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.of_match.matches(in_port, packet) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let cur = &self.entries[b];
                    let cand_key = (e.priority, e.of_match.specificity());
                    let cur_key = (cur.priority, cur.of_match.specificity());
                    if cand_key > cur_key {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// The entry at an index returned by [`FlowTable::lookup_idx`],
    /// [`FlowTable::lookup_key_idx`] or [`FlowTable::lookup_block_idx`].
    /// Indices are invalidated by any table mutation.
    pub fn entry_mut(&mut self, idx: usize) -> &mut FlowEntry {
        &mut self.entries[idx]
    }

    fn ensure_compiled(&mut self) -> &[CompiledRow] {
        if self.compiled.is_none() {
            let mut rows: Vec<CompiledRow> = self
                .entries
                .iter()
                .enumerate()
                .map(|(idx, e)| CompiledRow {
                    m: CompiledOfMatch::compile(&e.of_match),
                    rank: (e.priority, e.of_match.specificity()),
                    idx,
                })
                .collect();
            // Stable descending-rank sort: first match == best match,
            // and equal ranks keep installation order, reproducing the
            // interpreter's strict-greater tie-break exactly.
            rows.sort_by_key(|row| std::cmp::Reverse(row.rank));
            self.compiled = Some(rows);
        }
        self.compiled.as_deref().unwrap_or_default()
    }

    /// [`FlowTable::lookup_idx`] over a pre-extracted [`FlowKey`] using
    /// the compiled rows. Same result, same tie-break — rows are
    /// rank-sorted, so the first hit *is* the best match and the scan
    /// ends there, where the interpreter must walk the whole table.
    pub fn lookup_key_idx(&mut self, in_port: u16, key: &FlowKey) -> Option<usize> {
        self.ensure_compiled()
            .iter()
            .find(|row| row.m.matches(in_port, key))
            .map(|row| row.idx)
    }

    /// Look up every occupied lane of `block` (a burst that arrived on
    /// `in_port`) in one sweep: each compiled row's masked-word compare
    /// runs across all lanes before moving to the next row, so the
    /// per-row constants stay in registers. Rank-sorted rows make each
    /// lane's first hit final; the scan stops as soon as every lane is
    /// decided. Lane `i` of the result is what
    /// [`FlowTable::lookup_key_idx`] would return for key `i`.
    pub fn lookup_block_idx(
        &mut self,
        in_port: u16,
        block: &FlowKeyBlock,
    ) -> [Option<usize>; BLOCK_LANES] {
        let occupied: u8 = if block.len() >= BLOCK_LANES {
            u8::MAX
        } else {
            (1u8 << block.len()) - 1
        };
        let rows = self.ensure_compiled();
        let mut verdict: [Option<usize>; BLOCK_LANES] = [None; BLOCK_LANES];
        let mut undecided = occupied;
        for row in rows {
            let hits = row.m.matches_block(in_port, block) & undecided;
            let mut h = hits;
            while h != 0 {
                let lane = h.trailing_zeros() as usize;
                h &= h - 1;
                verdict[lane] = Some(row.idx);
            }
            undecided &= !hits;
            if undecided == 0 {
                break;
            }
        }
        verdict
    }

    /// Record that `entry_bytes` matched (updates counters and idle
    /// state). Call with the entry returned by [`FlowTable::lookup`].
    pub fn account(entry: &mut FlowEntry, now: SimTime, frame_bytes: usize) {
        entry.packets += 1;
        entry.bytes += frame_bytes as u64;
        entry.last_match = now;
    }

    /// MODIFY semantics: replace the actions of covered entries
    /// (strict: exact match + priority). Returns how many entries
    /// changed; OpenFlow adds a new entry when none matched — the caller
    /// handles that case.
    pub fn modify(
        &mut self,
        of_match: &OfMatch,
        priority: u16,
        strict: bool,
        actions: &[Action],
    ) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            let hit = if strict {
                e.of_match == *of_match && e.priority == priority
            } else {
                covers(of_match, &e.of_match)
            };
            if hit {
                e.actions = actions.to_vec();
                n += 1;
            }
        }
        n
    }

    /// DELETE semantics. Returns the removed entries.
    pub fn delete(&mut self, of_match: &OfMatch, priority: u16, strict: bool) -> Vec<FlowEntry> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let hit = if strict {
                e.of_match == *of_match && e.priority == priority
            } else {
                covers(of_match, &e.of_match)
            };
            if hit {
                removed.push(e.clone());
                false
            } else {
                true
            }
        });
        if !removed.is_empty() {
            self.compiled = None;
        }
        removed
    }

    /// Remove entries whose idle or hard timeout has elapsed at `now`.
    pub fn expire(&mut self, now: SimTime) -> Vec<(FlowEntry, RemovalReason)> {
        let mut out = Vec::new();
        self.entries.retain(|e| {
            if e.hard_timeout > 0 {
                let deadline =
                    e.installed_at + osnt_time::SimDuration::from_secs(e.hard_timeout as u64);
                if now >= deadline {
                    out.push((e.clone(), RemovalReason::HardTimeout));
                    return false;
                }
            }
            if e.idle_timeout > 0 {
                let deadline =
                    e.last_match + osnt_time::SimDuration::from_secs(e.idle_timeout as u64);
                if now >= deadline {
                    out.push((e.clone(), RemovalReason::IdleTimeout));
                    return false;
                }
            }
            true
        });
        if !out.is_empty() {
            self.compiled = None;
        }
        out
    }
}

/// Whether wildcard description `filter` covers `entry` (every packet the
/// entry can match is also matched by the filter) — the OpenFlow 1.0
/// non-strict MODIFY/DELETE rule.
pub fn covers(filter: &OfMatch, entry: &OfMatch) -> bool {
    // For each exact-match bit in the filter, the entry must also be
    // exact with the same value.
    type FieldGet = fn(&OfMatch) -> u64;
    let exact_bits: [(u32, FieldGet); 6] = [
        (wildcards::IN_PORT, |m| m.in_port as u64),
        (wildcards::DL_VLAN, |m| m.dl_vlan as u64),
        (wildcards::DL_TYPE, |m| m.dl_type as u64),
        (wildcards::NW_PROTO, |m| m.nw_proto as u64),
        (wildcards::TP_SRC, |m| m.tp_src as u64),
        (wildcards::TP_DST, |m| m.tp_dst as u64),
    ];
    for (bit, get) in exact_bits {
        let filter_exact = filter.wildcards & bit == 0;
        let entry_exact = entry.wildcards & bit == 0;
        if filter_exact && (!entry_exact || get(filter) != get(entry)) {
            return false;
        }
    }
    if filter.wildcards & wildcards::DL_SRC == 0
        && (entry.wildcards & wildcards::DL_SRC != 0 || filter.dl_src != entry.dl_src)
    {
        return false;
    }
    if filter.wildcards & wildcards::DL_DST == 0
        && (entry.wildcards & wildcards::DL_DST != 0 || filter.dl_dst != entry.dl_dst)
    {
        return false;
    }
    // IP prefixes: the filter prefix must contain the entry prefix.
    let prefix_covers = |f_addr: u32, f_shift: u32, e_addr: u32, e_shift: u32| {
        if f_shift >= 32 {
            return true; // filter fully wildcards the address
        }
        if e_shift > f_shift {
            return false; // entry is less specific than the filter
        }
        (f_addr ^ e_addr) >> f_shift == 0
    };
    let f_src_shift = (filter.wildcards >> wildcards::NW_SRC_SHIFT) & 0x3f;
    let e_src_shift = (entry.wildcards >> wildcards::NW_SRC_SHIFT) & 0x3f;
    if !prefix_covers(
        u32::from(filter.nw_src),
        f_src_shift,
        u32::from(entry.nw_src),
        e_src_shift,
    ) {
        return false;
    }
    let f_dst_shift = (filter.wildcards >> wildcards::NW_DST_SHIFT) & 0x3f;
    let e_dst_shift = (entry.wildcards >> wildcards::NW_DST_SHIFT) & 0x3f;
    prefix_covers(
        u32::from(filter.nw_dst),
        f_dst_shift,
        u32::from(entry.nw_dst),
        e_dst_shift,
    )
}

// Panic audit: every `unwrap()` below is test-only. The production API
// is fully `Result`/`Option`-typed — `add` returns `Err(TableFull)` (and
// lifts into `OsntError::Capacity` via `From`), `lookup` returns
// `Option` — so the unwraps assert *test fixtures* (tables sized to fit
// their inserts, lookups of entries the test just installed), never
// runtime input.
#[cfg(test)]
mod tests {
    use super::*;
    use osnt_openflow::actions::Action;
    use osnt_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn udp_frame(dst_ip: Ipv4Addr, dst_port: u16) -> osnt_packet::Packet {
        PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), dst_ip)
            .udp(1000, dst_port)
            .build()
    }

    fn out(port: u16) -> Vec<Action> {
        vec![Action::Output { port, max_len: 0 }]
    }

    #[test]
    fn add_and_lookup() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(
            OfMatch::ipv4_dst(Ipv4Addr::new(10, 1, 0, 1)),
            10,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        let hit = udp_frame(Ipv4Addr::new(10, 1, 0, 1), 5);
        let miss = udp_frame(Ipv4Addr::new(10, 1, 0, 2), 5);
        assert!(t.lookup(0, &hit.parse()).is_some());
        assert!(t.lookup(0, &miss.parse()).is_none());
    }

    #[test]
    fn higher_priority_wins() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
            .unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(9001),
            100,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 9001);
        let e = t.lookup(0, &pkt.parse()).unwrap();
        assert_eq!(e.actions, out(2));
        let other = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 80);
        let e = t.lookup(0, &other.parse()).unwrap();
        assert_eq!(e.actions, out(1));
    }

    #[test]
    fn equal_priority_breaks_by_specificity() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(OfMatch::any(), 5, out(1), SimTime::ZERO))
            .unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(9001),
            5,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 9001);
        assert_eq!(t.lookup(0, &pkt.parse()).unwrap().actions, out(2));
    }

    #[test]
    fn capacity_is_enforced_and_replace_is_free() {
        let mut t = FlowTable::new(2);
        let m1 = OfMatch::udp_dst_port(1);
        t.add(FlowEntry::new(m1, 1, out(1), SimTime::ZERO)).unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(2),
            1,
            out(1),
            SimTime::ZERO,
        ))
        .unwrap();
        assert_eq!(
            t.add(FlowEntry::new(
                OfMatch::udp_dst_port(3),
                1,
                out(1),
                SimTime::ZERO
            )),
            Err(TableFull)
        );
        // Same (match, priority) replaces without needing space.
        t.add(FlowEntry::new(m1, 1, out(9), SimTime::ZERO)).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn table_full_lifts_into_the_workspace_taxonomy() {
        let e: osnt_error::OsntError = TableFull.into();
        assert!(matches!(e, osnt_error::OsntError::Capacity { .. }));
        assert!(e.to_string().contains("flow table full"));
    }

    #[test]
    fn strict_delete_removes_only_exact() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(1),
            5,
            out(1),
            SimTime::ZERO,
        ))
        .unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(1),
            9,
            out(1),
            SimTime::ZERO,
        ))
        .unwrap();
        let removed = t.delete(&OfMatch::udp_dst_port(1), 5, true);
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn nonstrict_delete_uses_covering() {
        let mut t = FlowTable::new(10);
        for port in 1..=5 {
            t.add(FlowEntry::new(
                OfMatch::udp_dst_port(port),
                5,
                out(1),
                SimTime::ZERO,
            ))
            .unwrap();
        }
        // Delete-all (any covers everything).
        let removed = t.delete(&OfMatch::any(), 0, false);
        assert_eq!(removed.len(), 5);
        assert!(t.is_empty());
    }

    #[test]
    fn covering_respects_fields_and_prefixes() {
        let any = OfMatch::any();
        let port = OfMatch::udp_dst_port(80);
        assert!(covers(&any, &port));
        assert!(!covers(&port, &any));
        assert!(covers(&port, &port));

        let mut wide = OfMatch::any();
        wide.dl_type = 0x0800;
        wide.wildcards &= !wildcards::DL_TYPE;
        wide.nw_dst = Ipv4Addr::new(10, 0, 0, 0);
        wide.set_nw_dst_prefix(8);
        let narrow = OfMatch::ipv4_dst(Ipv4Addr::new(10, 3, 4, 5));
        assert!(covers(&wide, &narrow));
        assert!(!covers(&narrow, &wide));
        let outside = OfMatch::ipv4_dst(Ipv4Addr::new(11, 0, 0, 1));
        assert!(!covers(&wide, &outside));
    }

    #[test]
    fn modify_replaces_actions() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(1),
            5,
            out(1),
            SimTime::ZERO,
        ))
        .unwrap();
        let n = t.modify(&OfMatch::udp_dst_port(1), 5, true, &out(7));
        assert_eq!(n, 1);
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 1);
        assert_eq!(t.lookup(0, &pkt.parse()).unwrap().actions, out(7));
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new(10);
        let mut e = FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO);
        e.hard_timeout = 2;
        t.add(e).unwrap();
        assert!(t.expire(SimTime::from_secs(1)).is_empty());
        let gone = t.expire(SimTime::from_secs(2));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, RemovalReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_match() {
        let mut t = FlowTable::new(10);
        let mut e = FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO);
        e.idle_timeout = 2;
        t.add(e).unwrap();
        // A match at t=1.5s pushes the idle deadline to 3.5s.
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 1);
        {
            let entry = t.lookup(0, &pkt.parse()).unwrap();
            FlowTable::account(entry, SimTime::from_ms(1500), 64);
        }
        assert!(t.expire(SimTime::from_secs(3)).is_empty());
        let gone = t.expire(SimTime::from_ms(3600));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, RemovalReason::IdleTimeout);
    }

    #[test]
    fn compiled_lookup_matches_interpreted_including_ties() {
        use osnt_packet::FlowKey;
        let mut t = FlowTable::new(32);
        // Overlapping entries: wildcards, port matches, prefixes, an
        // exact-priority tie (two distinct matches, same priority and
        // specificity, both hitting port-9001 frames to 10.0.0.0/8 —
        // earliest row must win), and an in_port-constrained row.
        t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
            .unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(9001),
            5,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        let mut src8 = OfMatch::any();
        src8.nw_src = Ipv4Addr::new(10, 0, 0, 0);
        src8.set_nw_src_prefix(8);
        t.add(FlowEntry::new(src8, 5, out(3), SimTime::ZERO))
            .unwrap();
        let mut dst8 = OfMatch::any();
        dst8.nw_dst = Ipv4Addr::new(10, 0, 0, 0);
        dst8.set_nw_dst_prefix(8);
        t.add(FlowEntry::new(dst8, 5, out(4), SimTime::ZERO))
            .unwrap();
        let mut inport = OfMatch::any();
        inport.in_port = 2;
        inport.wildcards &= !wildcards::IN_PORT;
        t.add(FlowEntry::new(inport, 7, out(5), SimTime::ZERO))
            .unwrap();

        let frames: Vec<osnt_packet::Packet> = vec![
            udp_frame(Ipv4Addr::new(10, 1, 0, 1), 9001),
            udp_frame(Ipv4Addr::new(10, 1, 0, 1), 80),
            udp_frame(Ipv4Addr::new(192, 168, 0, 1), 9001),
            udp_frame(Ipv4Addr::new(192, 168, 0, 1), 80),
            PacketBuilder::ethernet(MacAddr::local(1), MacAddr::BROADCAST)
                .raw_ethertype(0x0806)
                .payload(&[0u8; 46])
                .build(),
        ];
        for in_port in [1u16, 2, 3] {
            let mut block = FlowKeyBlock::new();
            let mut expect = Vec::new();
            for frame in &frames {
                let parsed = frame.parse();
                let key = FlowKey::extract(&parsed);
                let interp = t.lookup_idx(in_port, &parsed);
                assert_eq!(t.lookup_key_idx(in_port, &key), interp);
                block.push(&key);
                expect.push(interp);
            }
            let lanes = t.lookup_block_idx(in_port, &block);
            assert_eq!(&lanes[..expect.len()], &expect[..]);
            for lane in lanes.iter().skip(expect.len()) {
                assert_eq!(*lane, None);
            }
        }
    }

    #[test]
    fn compiled_cache_invalidates_on_mutation() {
        use osnt_packet::FlowKey;
        let mut t = FlowTable::new(8);
        let frame = udp_frame(Ipv4Addr::new(10, 1, 0, 1), 9001);
        let key = FlowKey::extract(&frame.parse());
        assert_eq!(t.lookup_key_idx(0, &key), None);
        t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
            .unwrap();
        assert_eq!(t.lookup_key_idx(0, &key), Some(0));
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(9001),
            5,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        assert_eq!(t.lookup_key_idx(0, &key), Some(1));
        t.delete(&OfMatch::udp_dst_port(9001), 5, true);
        assert_eq!(t.lookup_key_idx(0, &key), Some(0));
        // Expiry invalidates too.
        let mut short = FlowEntry::new(OfMatch::udp_dst_port(9001), 5, out(2), SimTime::ZERO);
        short.hard_timeout = 1;
        t.add(short).unwrap();
        assert_eq!(t.lookup_key_idx(0, &key), Some(1));
        t.expire(SimTime::from_secs(2));
        assert_eq!(t.lookup_key_idx(0, &key), Some(0));
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
            .unwrap();
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 1);
        for i in 0..5 {
            let e = t.lookup(0, &pkt.parse()).unwrap();
            FlowTable::account(e, SimTime::from_us(i), 64);
        }
        let e = t.iter().next().unwrap();
        assert_eq!(e.packets, 5);
        assert_eq!(e.bytes, 320);
    }
}
