//! The OpenFlow switch's flow table.
//!
//! Storage is a dense vector with `swap_remove` deletion, indexed two
//! ways: a strict `(match, priority)` map makes strict flow_mods O(1),
//! and a selectable **classifier** resolves packet lookups — either the
//! rank-sorted compiled linear scan (the reference) or the
//! [`TupleSpace`] engine (sublinear: probes per distinct wildcard mask,
//! not per rule). Both produce byte-identical verdicts, including the
//! priority/specificity/insertion-order tie-break, which installation
//! sequence numbers keep exact even after `swap_remove` disturbs the
//! vector order.

use crate::compiled::CompiledOfMatch;
use crate::tuple_space::{Rank, TupleSpace};
use osnt_openflow::match_field::wildcards;
use osnt_openflow::{Action, OfMatch};
use osnt_packet::{FlowKey, FlowKeyBlock, FxBuildHasher, ParsedPacket, BLOCK_LANES};
use osnt_time::SimTime;
use std::collections::HashMap;

/// Returned when an ADD would exceed the table capacity
/// (`OFPET_FLOW_MOD_FAILED` / `ALL_TABLES_FULL` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl From<TableFull> for osnt_error::OsntError {
    /// Lift the wire-level rejection into the workspace taxonomy: one
    /// more entry was needed and none were available.
    fn from(_: TableFull) -> Self {
        osnt_error::OsntError::Capacity {
            what: "flow table",
            needed: 1,
            available: 0,
        }
    }
}

/// Which classification structure resolves compiled lookups.
///
/// The interpreter path ([`FlowTable::lookup_idx`]) is always the
/// semantic reference; this only selects how the key-word fast path is
/// implemented. Both choices return identical verdicts — the tuple
/// engine exists so verdict cost scales with mask diversity instead of
/// rule count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Classifier {
    /// Rank-sorted compiled rows, scanned first-hit. O(rules) per
    /// lookup, O(rules) per strict flow_mod rebuild. The reference.
    Linear,
    /// Tuple-space search: hash probe per distinct wildcard mask with
    /// rank pruning. O(masks) per lookup, O(1) per flow_mod.
    #[default]
    TupleSpace,
}

impl Classifier {
    /// Resolve from the `OSNT_CLASSIFIER` environment variable:
    /// `linear` selects the reference scan, anything else (including
    /// unset) the tuple-space engine.
    pub fn from_env() -> Self {
        match std::env::var("OSNT_CLASSIFIER") {
            Ok(v) if v.eq_ignore_ascii_case("linear") => Classifier::Linear,
            _ => Classifier::TupleSpace,
        }
    }
}

/// One installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// Match fields.
    pub of_match: OfMatch,
    /// Priority (higher wins among overlapping entries).
    pub priority: u16,
    /// Actions.
    pub actions: Vec<Action>,
    /// Controller cookie.
    pub cookie: u64,
    /// Flow-mod flag bits (bit 0 = send FLOW_REMOVED).
    pub flags: u16,
    /// Idle timeout, seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout, seconds (0 = none).
    pub hard_timeout: u16,
    /// Installation instant.
    pub installed_at: SimTime,
    /// Last instant the entry matched a packet.
    pub last_match: SimTime,
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
}

impl FlowEntry {
    /// A fresh entry installed at `now`.
    pub fn new(of_match: OfMatch, priority: u16, actions: Vec<Action>, now: SimTime) -> Self {
        FlowEntry {
            of_match,
            priority,
            actions,
            cookie: 0,
            flags: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            installed_at: now,
            last_match: now,
            packets: 0,
            bytes: 0,
        }
    }

    /// The entry's tie-break rank: `(priority, specificity)`.
    fn rank(&self) -> Rank {
        (self.priority, self.of_match.specificity())
    }
}

/// Why an entry was removed (OpenFlow 1.0 `ofp_flow_removed_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalReason {
    /// Idle timeout elapsed.
    IdleTimeout,
    /// Hard timeout elapsed.
    HardTimeout,
    /// An explicit DELETE.
    Delete,
}

impl RemovalReason {
    /// The wire code.
    pub fn code(self) -> u8 {
        match self {
            RemovalReason::IdleTimeout => 0,
            RemovalReason::HardTimeout => 1,
            RemovalReason::Delete => 2,
        }
    }
}

/// One row of the linear engine's compiled cache: the entry's match
/// lowered to masked-word compares plus its precomputed tie-break rank.
///
/// Rows are kept sorted by **descending rank, ascending seq**. That
/// turns best-match search into first-match search: the scan stops at
/// the first row that matches, where the interpreter must always walk
/// the whole table to find the best rank.
#[derive(Debug, Clone, Copy)]
struct CompiledRow {
    m: CompiledOfMatch,
    /// `(priority, specificity)` — cached so winner selection doesn't
    /// recount wildcard bits, and the primary sort key.
    rank: Rank,
    /// Installation sequence — the tie-break sort key, since
    /// `swap_remove` storage means vector order is *not* install order.
    seq: u64,
    /// Index of the source row in `entries` (rank-sorting reorders the
    /// compiled rows but lookups must report entry indices).
    idx: usize,
}

/// The selected classification structure. The linear engine compiles
/// lazily (flow-mod trains pay one rebuild); the tuple engine is
/// maintained incrementally (that's the point — flow_mods are hash
/// ops, not rebuilds).
#[derive(Debug, Clone)]
enum Engine {
    Linear {
        /// `None` means stale; rebuilt on the next compiled lookup.
        compiled: Option<Vec<CompiledRow>>,
    },
    Tuple(TupleSpace),
}

impl Default for Engine {
    fn default() -> Self {
        Engine::Tuple(TupleSpace::default())
    }
}

/// A bounded, priority-ordered flow table.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    /// Installation sequence numbers, parallel to `entries`. The
    /// tie-break authority: equal-rank overlaps resolve to the lowest
    /// seq (earliest install), independent of vector position.
    seqs: Vec<u64>,
    next_seq: u64,
    capacity: usize,
    /// `(match, priority)` → entry index. ADD-replace semantics keep
    /// the pairs unique, so strict flow_mods are single hash probes.
    strict: HashMap<(OfMatch, u16), usize, FxBuildHasher>,
    engine: Engine,
}

impl FlowTable {
    /// A table holding at most `capacity` entries (a TCAM budget),
    /// classified by the default engine ([`Classifier::TupleSpace`]).
    pub fn new(capacity: usize) -> Self {
        Self::with_classifier(capacity, Classifier::default())
    }

    /// A table with an explicit classifier choice.
    pub fn with_classifier(capacity: usize, classifier: Classifier) -> Self {
        FlowTable {
            entries: Vec::new(),
            seqs: Vec::new(),
            next_seq: 0,
            capacity,
            strict: HashMap::default(),
            engine: match classifier {
                Classifier::Linear => Engine::Linear { compiled: None },
                Classifier::TupleSpace => Engine::Tuple(TupleSpace::new()),
            },
        }
    }

    /// The active classifier.
    pub fn classifier(&self) -> Classifier {
        match self.engine {
            Engine::Linear { .. } => Classifier::Linear,
            Engine::Tuple(_) => Classifier::TupleSpace,
        }
    }

    /// Switch classifier, rebuilding the new engine's index over the
    /// installed entries. A no-op when `classifier` is already active.
    pub fn set_classifier(&mut self, classifier: Classifier) {
        if self.classifier() == classifier {
            return;
        }
        self.engine = match classifier {
            Classifier::Linear => Engine::Linear { compiled: None },
            Classifier::TupleSpace => {
                let mut space = TupleSpace::new();
                for (i, e) in self.entries.iter().enumerate() {
                    space.insert(
                        i as u32,
                        self.seqs[i],
                        e.rank(),
                        &CompiledOfMatch::compile(&e.of_match),
                    );
                }
                Engine::Tuple(space)
            }
        };
    }

    /// Installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate over entries.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// The units of simulated work a lookup costs: rules scanned on the
    /// linear engine, distinct tuples probed on the tuple engine. Pure
    /// function of table state, so both datapath legs of a parity pair
    /// charge identically.
    pub fn lookup_cost_units(&self) -> usize {
        match &self.engine {
            Engine::Linear { .. } => self.entries.len(),
            Engine::Tuple(space) => space.active_tuples(),
        }
    }

    /// ADD semantics: identical (match, priority) replaces in place;
    /// otherwise append, failing when full.
    pub fn add(&mut self, entry: FlowEntry) -> Result<(), TableFull> {
        let key = (entry.of_match, entry.priority);
        if let Some(&i) = self.strict.get(&key) {
            // Same (match, priority): rank, seq, and the compiled form
            // are all unchanged, so both engines stay valid.
            self.entries[i] = entry;
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            return Err(TableFull);
        }
        let id = self.entries.len();
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.engine {
            Engine::Linear { compiled } => *compiled = None,
            Engine::Tuple(space) => space.insert(
                id as u32,
                seq,
                entry.rank(),
                &CompiledOfMatch::compile(&entry.of_match),
            ),
        }
        self.strict.insert(key, id);
        self.entries.push(entry);
        self.seqs.push(seq);
        Ok(())
    }

    /// Remove the entry at `idx` (`swap_remove`: the tail entry slides
    /// into the hole) and fix both indexes — O(1) in table size.
    fn remove_at(&mut self, idx: usize) -> FlowEntry {
        let last = self.entries.len() - 1;
        let victim = &self.entries[idx];
        self.strict.remove(&(victim.of_match, victim.priority));
        match &mut self.engine {
            Engine::Linear { compiled } => *compiled = None,
            Engine::Tuple(space) => {
                space.remove(idx as u32, &CompiledOfMatch::compile(&victim.of_match));
                if idx < last {
                    space.relocate(
                        last as u32,
                        idx as u32,
                        &CompiledOfMatch::compile(&self.entries[last].of_match),
                    );
                }
            }
        }
        let gone = self.entries.swap_remove(idx);
        self.seqs.swap_remove(idx);
        if idx < self.entries.len() {
            let moved = &self.entries[idx];
            self.strict.insert((moved.of_match, moved.priority), idx);
        }
        gone
    }

    /// Best-match lookup for a frame arriving on `in_port`. Ties on
    /// priority break toward more exact-match bits, then earlier
    /// installation — deterministic, like a TCAM's fixed row order.
    pub fn lookup(&mut self, in_port: u16, packet: &ParsedPacket<'_>) -> Option<&mut FlowEntry> {
        self.lookup_idx(in_port, packet)
            .map(move |i| &mut self.entries[i])
    }

    /// Index form of [`FlowTable::lookup`], for callers that need to
    /// release the borrow between lookup and accounting. This is the
    /// interpreter — the semantic reference every classifier must
    /// reproduce byte-for-byte.
    pub fn lookup_idx(&self, in_port: u16, packet: &ParsedPacket<'_>) -> Option<usize> {
        let mut best: Option<(Rank, u64, usize)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.of_match.matches(in_port, packet) {
                continue;
            }
            let (rank, seq) = (e.rank(), self.seqs[i]);
            let wins = match &best {
                None => true,
                Some((br, bs, _)) => rank > *br || (rank == *br && seq < *bs),
            };
            if wins {
                best = Some((rank, seq, i));
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// The entry at an index returned by [`FlowTable::lookup_idx`],
    /// [`FlowTable::lookup_key_idx`] or [`FlowTable::lookup_block_idx`].
    /// Indices are invalidated by any table mutation.
    pub fn entry_mut(&mut self, idx: usize) -> &mut FlowEntry {
        &mut self.entries[idx]
    }

    fn ensure_compiled(&mut self) -> &[CompiledRow] {
        let Engine::Linear { compiled } = &mut self.engine else {
            unreachable!("compiled row cache exists only on the linear engine");
        };
        if compiled.is_none() {
            let mut rows: Vec<CompiledRow> = self
                .entries
                .iter()
                .enumerate()
                .map(|(idx, e)| CompiledRow {
                    m: CompiledOfMatch::compile(&e.of_match),
                    rank: e.rank(),
                    seq: self.seqs[idx],
                    idx,
                })
                .collect();
            // Descending rank, ascending seq within a rank: first match
            // == best match, and equal ranks resolve to the earliest
            // install, reproducing the interpreter's tie-break exactly.
            rows.sort_by_key(|row| (std::cmp::Reverse(row.rank), row.seq));
            *compiled = Some(rows);
        }
        compiled.as_deref().unwrap_or_default()
    }

    /// [`FlowTable::lookup_idx`] over a pre-extracted [`FlowKey`] using
    /// the active classifier. Same result, same tie-break; only the
    /// probe cost differs — O(rules) linear, O(masks) tuple-space.
    pub fn lookup_key_idx(&mut self, in_port: u16, key: &FlowKey) -> Option<usize> {
        if let Engine::Tuple(space) = &mut self.engine {
            return space.lookup(in_port, key);
        }
        self.ensure_compiled()
            .iter()
            .find(|row| row.m.matches(in_port, key))
            .map(|row| row.idx)
    }

    /// Look up every occupied lane of `block` (a burst that arrived on
    /// `in_port`) in one sweep. On the linear engine each compiled
    /// row's masked-word compare runs across all lanes before moving to
    /// the next row; on the tuple engine each tuple is probed for all
    /// still-undecided lanes before moving to the next tuple. Lane `i`
    /// of the result is what [`FlowTable::lookup_key_idx`] would return
    /// for key `i`.
    pub fn lookup_block_idx(
        &mut self,
        in_port: u16,
        block: &FlowKeyBlock,
    ) -> [Option<usize>; BLOCK_LANES] {
        if let Engine::Tuple(space) = &mut self.engine {
            return space.lookup_block(in_port, block);
        }
        let occupied: u8 = if block.len() >= BLOCK_LANES {
            u8::MAX
        } else {
            (1u8 << block.len()) - 1
        };
        let rows = self.ensure_compiled();
        let mut verdict: [Option<usize>; BLOCK_LANES] = [None; BLOCK_LANES];
        let mut undecided = occupied;
        for row in rows {
            let hits = row.m.matches_block(in_port, block) & undecided;
            let mut h = hits;
            while h != 0 {
                let lane = h.trailing_zeros() as usize;
                h &= h - 1;
                verdict[lane] = Some(row.idx);
            }
            undecided &= !hits;
            if undecided == 0 {
                break;
            }
        }
        verdict
    }

    /// Record that `entry_bytes` matched (updates counters and idle
    /// state). Call with the entry returned by [`FlowTable::lookup`].
    pub fn account(entry: &mut FlowEntry, now: SimTime, frame_bytes: usize) {
        entry.packets += 1;
        entry.bytes += frame_bytes as u64;
        entry.last_match = now;
    }

    /// MODIFY semantics: replace the actions of covered entries
    /// (strict: exact match + priority, resolved by one hash probe).
    /// Returns how many entries changed; OpenFlow adds a new entry when
    /// none matched — the caller handles that case. Actions don't
    /// participate in classification, so no engine state is touched.
    pub fn modify(
        &mut self,
        of_match: &OfMatch,
        priority: u16,
        strict: bool,
        actions: &[Action],
    ) -> usize {
        if strict {
            return match self.strict.get(&(*of_match, priority)) {
                Some(&i) => {
                    self.entries[i].actions = actions.to_vec();
                    1
                }
                None => 0,
            };
        }
        let mut n = 0;
        for e in &mut self.entries {
            if covers(of_match, &e.of_match) {
                e.actions = actions.to_vec();
                n += 1;
            }
        }
        n
    }

    /// DELETE semantics. Returns the removed entries in table-scan
    /// order. Strict deletes are one hash probe; non-strict deletes
    /// scan for covering (inherently a wildcard-containment question).
    pub fn delete(&mut self, of_match: &OfMatch, priority: u16, strict: bool) -> Vec<FlowEntry> {
        if strict {
            return match self.strict.get(&(*of_match, priority)).copied() {
                Some(i) => vec![self.remove_at(i)],
                None => Vec::new(),
            };
        }
        let hits: Vec<usize> = (0..self.entries.len())
            .filter(|&i| covers(of_match, &self.entries[i].of_match))
            .collect();
        self.remove_all(&hits)
    }

    /// Remove the entries at ascending positions `hits`, reporting them
    /// in that order. Removal walks the positions *descending* so each
    /// `swap_remove` only ever moves a non-victim tail entry.
    fn remove_all(&mut self, hits: &[usize]) -> Vec<FlowEntry> {
        let mut out: Vec<FlowEntry> = hits.iter().rev().map(|&i| self.remove_at(i)).collect();
        out.reverse();
        out
    }

    /// Remove entries whose idle or hard timeout has elapsed at `now`.
    pub fn expire(&mut self, now: SimTime) -> Vec<(FlowEntry, RemovalReason)> {
        let mut hits: Vec<(usize, RemovalReason)> = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if e.hard_timeout > 0 {
                let deadline =
                    e.installed_at + osnt_time::SimDuration::from_secs(e.hard_timeout as u64);
                if now >= deadline {
                    hits.push((i, RemovalReason::HardTimeout));
                    continue;
                }
            }
            if e.idle_timeout > 0 {
                let deadline =
                    e.last_match + osnt_time::SimDuration::from_secs(e.idle_timeout as u64);
                if now >= deadline {
                    hits.push((i, RemovalReason::IdleTimeout));
                }
            }
        }
        let mut out: Vec<(FlowEntry, RemovalReason)> = hits
            .iter()
            .rev()
            .map(|&(i, reason)| (self.remove_at(i), reason))
            .collect();
        out.reverse();
        out
    }
}

/// Whether wildcard description `filter` covers `entry` (every packet the
/// entry can match is also matched by the filter) — the OpenFlow 1.0
/// non-strict MODIFY/DELETE rule.
pub fn covers(filter: &OfMatch, entry: &OfMatch) -> bool {
    // For each exact-match bit in the filter, the entry must also be
    // exact with the same value.
    type FieldGet = fn(&OfMatch) -> u64;
    let exact_bits: [(u32, FieldGet); 6] = [
        (wildcards::IN_PORT, |m| m.in_port as u64),
        (wildcards::DL_VLAN, |m| m.dl_vlan as u64),
        (wildcards::DL_TYPE, |m| m.dl_type as u64),
        (wildcards::NW_PROTO, |m| m.nw_proto as u64),
        (wildcards::TP_SRC, |m| m.tp_src as u64),
        (wildcards::TP_DST, |m| m.tp_dst as u64),
    ];
    for (bit, get) in exact_bits {
        let filter_exact = filter.wildcards & bit == 0;
        let entry_exact = entry.wildcards & bit == 0;
        if filter_exact && (!entry_exact || get(filter) != get(entry)) {
            return false;
        }
    }
    if filter.wildcards & wildcards::DL_SRC == 0
        && (entry.wildcards & wildcards::DL_SRC != 0 || filter.dl_src != entry.dl_src)
    {
        return false;
    }
    if filter.wildcards & wildcards::DL_DST == 0
        && (entry.wildcards & wildcards::DL_DST != 0 || filter.dl_dst != entry.dl_dst)
    {
        return false;
    }
    // IP prefixes: the filter prefix must contain the entry prefix.
    let prefix_covers = |f_addr: u32, f_shift: u32, e_addr: u32, e_shift: u32| {
        if f_shift >= 32 {
            return true; // filter fully wildcards the address
        }
        if e_shift > f_shift {
            return false; // entry is less specific than the filter
        }
        (f_addr ^ e_addr) >> f_shift == 0
    };
    let f_src_shift = (filter.wildcards >> wildcards::NW_SRC_SHIFT) & 0x3f;
    let e_src_shift = (entry.wildcards >> wildcards::NW_SRC_SHIFT) & 0x3f;
    if !prefix_covers(
        u32::from(filter.nw_src),
        f_src_shift,
        u32::from(entry.nw_src),
        e_src_shift,
    ) {
        return false;
    }
    let f_dst_shift = (filter.wildcards >> wildcards::NW_DST_SHIFT) & 0x3f;
    let e_dst_shift = (entry.wildcards >> wildcards::NW_DST_SHIFT) & 0x3f;
    prefix_covers(
        u32::from(filter.nw_dst),
        f_dst_shift,
        u32::from(entry.nw_dst),
        e_dst_shift,
    )
}

// Panic audit: every `unwrap()` below is test-only. The production API
// is fully `Result`/`Option`-typed — `add` returns `Err(TableFull)` (and
// lifts into `OsntError::Capacity` via `From`), `lookup` returns
// `Option` — so the unwraps assert *test fixtures* (tables sized to fit
// their inserts, lookups of entries the test just installed), never
// runtime input.
#[cfg(test)]
mod tests {
    use super::*;
    use osnt_openflow::actions::Action;
    use osnt_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    const BOTH: [Classifier; 2] = [Classifier::Linear, Classifier::TupleSpace];

    fn udp_frame(dst_ip: Ipv4Addr, dst_port: u16) -> osnt_packet::Packet {
        PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), dst_ip)
            .udp(1000, dst_port)
            .build()
    }

    fn out(port: u16) -> Vec<Action> {
        vec![Action::Output { port, max_len: 0 }]
    }

    #[test]
    fn add_and_lookup() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(
            OfMatch::ipv4_dst(Ipv4Addr::new(10, 1, 0, 1)),
            10,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        let hit = udp_frame(Ipv4Addr::new(10, 1, 0, 1), 5);
        let miss = udp_frame(Ipv4Addr::new(10, 1, 0, 2), 5);
        assert!(t.lookup(0, &hit.parse()).is_some());
        assert!(t.lookup(0, &miss.parse()).is_none());
    }

    #[test]
    fn higher_priority_wins() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
            .unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(9001),
            100,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 9001);
        let e = t.lookup(0, &pkt.parse()).unwrap();
        assert_eq!(e.actions, out(2));
        let other = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 80);
        let e = t.lookup(0, &other.parse()).unwrap();
        assert_eq!(e.actions, out(1));
    }

    #[test]
    fn equal_priority_breaks_by_specificity() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(OfMatch::any(), 5, out(1), SimTime::ZERO))
            .unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(9001),
            5,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 9001);
        assert_eq!(t.lookup(0, &pkt.parse()).unwrap().actions, out(2));
    }

    #[test]
    fn capacity_is_enforced_and_replace_is_free() {
        let mut t = FlowTable::new(2);
        let m1 = OfMatch::udp_dst_port(1);
        t.add(FlowEntry::new(m1, 1, out(1), SimTime::ZERO)).unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(2),
            1,
            out(1),
            SimTime::ZERO,
        ))
        .unwrap();
        assert_eq!(
            t.add(FlowEntry::new(
                OfMatch::udp_dst_port(3),
                1,
                out(1),
                SimTime::ZERO
            )),
            Err(TableFull)
        );
        // Same (match, priority) replaces without needing space.
        t.add(FlowEntry::new(m1, 1, out(9), SimTime::ZERO)).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn table_full_lifts_into_the_workspace_taxonomy() {
        let e: osnt_error::OsntError = TableFull.into();
        assert!(matches!(e, osnt_error::OsntError::Capacity { .. }));
        assert!(e.to_string().contains("flow table full"));
    }

    #[test]
    fn strict_delete_removes_only_exact() {
        for c in BOTH {
            let mut t = FlowTable::with_classifier(10, c);
            t.add(FlowEntry::new(
                OfMatch::udp_dst_port(1),
                5,
                out(1),
                SimTime::ZERO,
            ))
            .unwrap();
            t.add(FlowEntry::new(
                OfMatch::udp_dst_port(1),
                9,
                out(1),
                SimTime::ZERO,
            ))
            .unwrap();
            let removed = t.delete(&OfMatch::udp_dst_port(1), 5, true);
            assert_eq!(removed.len(), 1);
            assert_eq!(removed[0].priority, 5);
            assert_eq!(t.len(), 1);
            // The survivor stays findable through every path.
            let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 1);
            assert_eq!(t.lookup(0, &pkt.parse()).unwrap().priority, 9);
            assert!(t.delete(&OfMatch::udp_dst_port(1), 5, true).is_empty());
        }
    }

    #[test]
    fn nonstrict_delete_uses_covering() {
        for c in BOTH {
            let mut t = FlowTable::with_classifier(10, c);
            for port in 1..=5 {
                t.add(FlowEntry::new(
                    OfMatch::udp_dst_port(port),
                    5,
                    out(1),
                    SimTime::ZERO,
                ))
                .unwrap();
            }
            // Delete-all (any covers everything), reported in scan order.
            let removed = t.delete(&OfMatch::any(), 0, false);
            assert_eq!(removed.len(), 5);
            let ports: Vec<u16> = removed.iter().map(|e| e.of_match.tp_dst).collect();
            assert_eq!(ports, vec![1, 2, 3, 4, 5]);
            assert!(t.is_empty());
        }
    }

    #[test]
    fn covering_respects_fields_and_prefixes() {
        let any = OfMatch::any();
        let port = OfMatch::udp_dst_port(80);
        assert!(covers(&any, &port));
        assert!(!covers(&port, &any));
        assert!(covers(&port, &port));

        let mut wide = OfMatch::any();
        wide.dl_type = 0x0800;
        wide.wildcards &= !wildcards::DL_TYPE;
        wide.nw_dst = Ipv4Addr::new(10, 0, 0, 0);
        wide.set_nw_dst_prefix(8);
        let narrow = OfMatch::ipv4_dst(Ipv4Addr::new(10, 3, 4, 5));
        assert!(covers(&wide, &narrow));
        assert!(!covers(&narrow, &wide));
        let outside = OfMatch::ipv4_dst(Ipv4Addr::new(11, 0, 0, 1));
        assert!(!covers(&wide, &outside));
    }

    #[test]
    fn modify_replaces_actions() {
        for c in BOTH {
            let mut t = FlowTable::with_classifier(10, c);
            t.add(FlowEntry::new(
                OfMatch::udp_dst_port(1),
                5,
                out(1),
                SimTime::ZERO,
            ))
            .unwrap();
            let n = t.modify(&OfMatch::udp_dst_port(1), 5, true, &out(7));
            assert_eq!(n, 1);
            let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 1);
            assert_eq!(t.lookup(0, &pkt.parse()).unwrap().actions, out(7));
            // Strict modify of an absent pair changes nothing.
            assert_eq!(t.modify(&OfMatch::udp_dst_port(1), 6, true, &out(8)), 0);
        }
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new(10);
        let mut e = FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO);
        e.hard_timeout = 2;
        t.add(e).unwrap();
        assert!(t.expire(SimTime::from_secs(1)).is_empty());
        let gone = t.expire(SimTime::from_secs(2));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, RemovalReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_match() {
        let mut t = FlowTable::new(10);
        let mut e = FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO);
        e.idle_timeout = 2;
        t.add(e).unwrap();
        // A match at t=1.5s pushes the idle deadline to 3.5s.
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 1);
        {
            let entry = t.lookup(0, &pkt.parse()).unwrap();
            FlowTable::account(entry, SimTime::from_ms(1500), 64);
        }
        assert!(t.expire(SimTime::from_secs(3)).is_empty());
        let gone = t.expire(SimTime::from_ms(3600));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, RemovalReason::IdleTimeout);
    }

    #[test]
    fn compiled_lookup_matches_interpreted_including_ties() {
        use osnt_packet::FlowKey;
        for c in BOTH {
            let mut t = FlowTable::with_classifier(32, c);
            // Overlapping entries: wildcards, port matches, prefixes, an
            // exact-priority tie (two distinct matches, same priority and
            // specificity, both hitting port-9001 frames to 10.0.0.0/8 —
            // earliest row must win), and an in_port-constrained row.
            t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
                .unwrap();
            t.add(FlowEntry::new(
                OfMatch::udp_dst_port(9001),
                5,
                out(2),
                SimTime::ZERO,
            ))
            .unwrap();
            let mut src8 = OfMatch::any();
            src8.nw_src = Ipv4Addr::new(10, 0, 0, 0);
            src8.set_nw_src_prefix(8);
            t.add(FlowEntry::new(src8, 5, out(3), SimTime::ZERO))
                .unwrap();
            let mut dst8 = OfMatch::any();
            dst8.nw_dst = Ipv4Addr::new(10, 0, 0, 0);
            dst8.set_nw_dst_prefix(8);
            t.add(FlowEntry::new(dst8, 5, out(4), SimTime::ZERO))
                .unwrap();
            let mut inport = OfMatch::any();
            inport.in_port = 2;
            inport.wildcards &= !wildcards::IN_PORT;
            t.add(FlowEntry::new(inport, 7, out(5), SimTime::ZERO))
                .unwrap();

            let frames: Vec<osnt_packet::Packet> = vec![
                udp_frame(Ipv4Addr::new(10, 1, 0, 1), 9001),
                udp_frame(Ipv4Addr::new(10, 1, 0, 1), 80),
                udp_frame(Ipv4Addr::new(192, 168, 0, 1), 9001),
                udp_frame(Ipv4Addr::new(192, 168, 0, 1), 80),
                PacketBuilder::ethernet(MacAddr::local(1), MacAddr::BROADCAST)
                    .raw_ethertype(0x0806)
                    .payload(&[0u8; 46])
                    .build(),
            ];
            for in_port in [1u16, 2, 3] {
                let mut block = FlowKeyBlock::new();
                let mut expect = Vec::new();
                for frame in &frames {
                    let parsed = frame.parse();
                    let key = FlowKey::extract(&parsed);
                    let interp = t.lookup_idx(in_port, &parsed);
                    assert_eq!(t.lookup_key_idx(in_port, &key), interp, "{c:?}");
                    block.push(&key);
                    expect.push(interp);
                }
                let lanes = t.lookup_block_idx(in_port, &block);
                assert_eq!(&lanes[..expect.len()], &expect[..], "{c:?}");
                for lane in lanes.iter().skip(expect.len()) {
                    assert_eq!(*lane, None);
                }
            }
        }
    }

    #[test]
    fn compiled_cache_invalidates_on_mutation() {
        use osnt_packet::FlowKey;
        for c in BOTH {
            let mut t = FlowTable::with_classifier(8, c);
            let frame = udp_frame(Ipv4Addr::new(10, 1, 0, 1), 9001);
            let key = FlowKey::extract(&frame.parse());
            assert_eq!(t.lookup_key_idx(0, &key), None);
            t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
                .unwrap();
            assert_eq!(t.lookup_key_idx(0, &key), Some(0));
            t.add(FlowEntry::new(
                OfMatch::udp_dst_port(9001),
                5,
                out(2),
                SimTime::ZERO,
            ))
            .unwrap();
            assert_eq!(t.lookup_key_idx(0, &key), Some(1));
            t.delete(&OfMatch::udp_dst_port(9001), 5, true);
            assert_eq!(t.lookup_key_idx(0, &key), Some(0));
            // Expiry invalidates too.
            let mut short = FlowEntry::new(OfMatch::udp_dst_port(9001), 5, out(2), SimTime::ZERO);
            short.hard_timeout = 1;
            t.add(short).unwrap();
            assert_eq!(t.lookup_key_idx(0, &key), Some(1));
            t.expire(SimTime::from_secs(2));
            assert_eq!(t.lookup_key_idx(0, &key), Some(0));
        }
    }

    #[test]
    fn swap_remove_keeps_seq_tie_break_and_indices_coherent() {
        // Install three equal-rank overlapping entries, delete the
        // first: the vector reorders (tail slides into slot 0) but the
        // tie-break must still pick the *earliest surviving install*,
        // on every lookup path, under both classifiers.
        for c in BOTH {
            let mut t = FlowTable::with_classifier(8, c);
            // Three overlapping matches of strictly increasing
            // specificity at one priority.
            let mut m1 = OfMatch::any();
            m1.tp_src = 1000;
            m1.wildcards &= !wildcards::TP_SRC;
            let mut m2 = m1;
            m2.dl_type = 0x0800;
            m2.wildcards &= !wildcards::DL_TYPE;
            let mut m3 = m2;
            m3.nw_proto = 17;
            m3.wildcards &= !wildcards::NW_PROTO;
            t.add(FlowEntry::new(m1, 5, out(1), SimTime::ZERO)).unwrap();
            t.add(FlowEntry::new(m2, 5, out(2), SimTime::ZERO)).unwrap();
            t.add(FlowEntry::new(m3, 5, out(3), SimTime::ZERO)).unwrap();
            let pkt = udp_frame(Ipv4Addr::new(9, 9, 9, 9), 7);
            // m3 is most specific → wins; delete it, m2 wins; delete
            // m2 (slot churn from swap_remove), m1 wins.
            let parsed = pkt.parse();
            let key = osnt_packet::FlowKey::extract(&parsed);
            for (victim, expect_port) in [(None, 3u16), (Some(m3), 2), (Some(m2), 1)] {
                if let Some(v) = victim {
                    assert_eq!(t.delete(&v, 5, true).len(), 1);
                }
                let i = t.lookup_idx(0, &parsed).unwrap();
                assert_eq!(t.entry_mut(i).actions, out(expect_port), "{c:?}");
                let j = t.lookup_key_idx(0, &key).unwrap();
                assert_eq!(j, i, "{c:?}");
            }
        }
    }

    #[test]
    fn set_classifier_rebuilds_in_place() {
        let mut t = FlowTable::new(8);
        assert_eq!(t.classifier(), Classifier::TupleSpace);
        t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
            .unwrap();
        t.add(FlowEntry::new(
            OfMatch::udp_dst_port(9001),
            5,
            out(2),
            SimTime::ZERO,
        ))
        .unwrap();
        let frame = udp_frame(Ipv4Addr::new(10, 1, 0, 1), 9001);
        let key = osnt_packet::FlowKey::extract(&frame.parse());
        assert_eq!(t.lookup_key_idx(0, &key), Some(1));
        t.set_classifier(Classifier::Linear);
        assert_eq!(t.classifier(), Classifier::Linear);
        assert_eq!(t.lookup_key_idx(0, &key), Some(1));
        t.set_classifier(Classifier::TupleSpace);
        assert_eq!(t.lookup_key_idx(0, &key), Some(1));
    }

    #[test]
    fn lookup_cost_units_track_the_engine() {
        let mut linear = FlowTable::with_classifier(64, Classifier::Linear);
        let mut tuple = FlowTable::with_classifier(64, Classifier::TupleSpace);
        // 32 rules, 2 distinct masks.
        for p in 0..16u16 {
            for t in [&mut linear, &mut tuple] {
                t.add(FlowEntry::new(
                    OfMatch::udp_dst_port(p),
                    5,
                    out(1),
                    SimTime::ZERO,
                ))
                .unwrap();
                t.add(FlowEntry::new(
                    OfMatch::ipv4_dst(Ipv4Addr::new(10, 0, 0, p as u8)),
                    5,
                    out(1),
                    SimTime::ZERO,
                ))
                .unwrap();
            }
        }
        assert_eq!(linear.lookup_cost_units(), 32);
        assert_eq!(tuple.lookup_cost_units(), 2);
    }

    #[test]
    fn classifier_env_knob_parses() {
        // Pure parsing check (no env mutation: tests run in parallel).
        assert_eq!(Classifier::default(), Classifier::TupleSpace);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new(10);
        t.add(FlowEntry::new(OfMatch::any(), 1, out(1), SimTime::ZERO))
            .unwrap();
        let pkt = udp_frame(Ipv4Addr::new(1, 1, 1, 1), 1);
        for i in 0..5 {
            let e = t.lookup(0, &pkt.parse()).unwrap();
            FlowTable::account(e, SimTime::from_us(i), 64);
        }
        let e = t.iter().next().unwrap();
        assert_eq!(e.packets, 5);
        assert_eq!(e.bytes, 320);
    }
}
