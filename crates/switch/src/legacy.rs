//! A legacy store-and-forward L2 learning switch — the device under test
//! of demo Part I.

use crate::fabric::{ForwardingPipeline, TIMER_FORWARD};
use osnt_netsim::{Component, ComponentId, Kernel};
use osnt_packet::{MacAddr, Packet};
use osnt_time::SimDuration;
use std::collections::HashMap;

/// Forwarding architecture of the switch fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingMode {
    /// Receive the whole frame, then look up and forward. Latency grows
    /// with frame size (the frame is serialised twice end to end).
    StoreAndForward,
    /// Start forwarding once the header (first 64 bytes) has arrived.
    ///
    /// The simulator's kernel delivers complete frames, so cut-through
    /// is modelled by *crediting back* the tail of the reception time:
    /// the fabric delay becomes `lookup_latency − (frame_time −
    /// header_time)`, clamped at the lookup latency floor of 100 ns.
    /// This reproduces the architecture's observable signature — latency
    /// (nearly) independent of frame size — which is what the ablation
    /// measures.
    CutThrough,
}

/// Legacy switch parameters.
#[derive(Debug, Clone)]
pub struct LegacyConfig {
    /// Number of ports.
    pub n_ports: usize,
    /// Fixed fabric latency (header lookup + pipeline), applied to every
    /// frame after full reception. ~800 ns is typical of a
    /// store-and-forward ToR of the era.
    pub lookup_latency: SimDuration,
    /// Output queue capacity per port, bytes. Finite, so overload shows
    /// up first as queueing delay and then as loss — the shape demo
    /// Part I measures.
    pub output_buffer_bytes: usize,
    /// Store-and-forward (default) or cut-through fabric.
    pub forwarding_mode: ForwardingMode,
}

impl Default for LegacyConfig {
    fn default() -> Self {
        LegacyConfig {
            n_ports: 4,
            lookup_latency: SimDuration::from_ns(800),
            output_buffer_bytes: 512 * 1024,
            forwarding_mode: ForwardingMode::StoreAndForward,
        }
    }
}

impl LegacyConfig {
    /// A cut-through variant of the default configuration.
    pub fn cut_through() -> Self {
        LegacyConfig {
            forwarding_mode: ForwardingMode::CutThrough,
            ..LegacyConfig::default()
        }
    }
}

/// The switch component.
pub struct LegacySwitch {
    config: LegacyConfig,
    /// MAC learning table: station → port.
    cam: HashMap<MacAddr, usize>,
    pipeline: ForwardingPipeline,
    /// Frames received.
    pub rx_frames: u64,
    /// Frames flooded (unknown destination or broadcast/multicast).
    pub flooded: u64,
}

impl LegacySwitch {
    /// A switch with the given configuration.
    pub fn new(config: LegacyConfig) -> Self {
        LegacySwitch {
            config,
            cam: HashMap::new(),
            pipeline: ForwardingPipeline::new(),
            rx_frames: 0,
            flooded: 0,
        }
    }

    /// Number of learned stations.
    pub fn cam_size(&self) -> usize {
        self.cam.len()
    }

    /// Frames lost at full output queues so far.
    pub fn output_drops(&self) -> u64 {
        self.pipeline.output_drops
    }

    /// The configured number of ports.
    pub fn n_ports(&self) -> usize {
        self.config.n_ports
    }

    /// Fabric delay for a frame of `frame_len` conventional bytes under
    /// the configured forwarding mode (10 GbE port timing).
    fn fabric_delay(&self, frame_len: usize) -> SimDuration {
        match self.config.forwarding_mode {
            ForwardingMode::StoreAndForward => self.config.lookup_latency,
            ForwardingMode::CutThrough => {
                // Credit back the reception tail beyond the 64-byte
                // header: (frame − 64) bytes × 800 ps at 10 Gb/s.
                let tail_ps = frame_len.saturating_sub(64) as u64 * 800;
                let floor = SimDuration::from_ns(100);
                let base = self.config.lookup_latency.as_ps();
                SimDuration::from_ps(base.saturating_sub(tail_ps).max(floor.as_ps()))
            }
        }
    }
}

impl Component for LegacySwitch {
    fn on_start(&mut self, kernel: &mut Kernel, me: ComponentId) {
        for p in 0..self.config.n_ports {
            kernel.set_tx_buffer(me, p, Some(self.config.output_buffer_bytes));
        }
    }

    fn on_packet(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, packet: Packet) {
        self.rx_frames += 1;
        let parsed = packet.parse();
        let (src, dst) = match (parsed.src_mac(), parsed.dst_mac()) {
            (Some(s), Some(d)) => (s, d),
            _ => return, // runt/undecodable — drop silently like hardware
        };
        // Learn the source station.
        if src.is_unicast() {
            self.cam.insert(src, port);
        }
        // Forward: known unicast out its port, everything else flooded.
        let delay = self.fabric_delay(packet.frame_len());
        match self.cam.get(&dst) {
            Some(&out) if dst.is_unicast() => {
                if out != port {
                    self.pipeline.submit(kernel, me, delay, out, packet);
                }
                // dst on the ingress port: filter (drop).
            }
            _ => {
                self.flooded += 1;
                for out in 0..self.config.n_ports {
                    if out != port {
                        self.pipeline.submit(kernel, me, delay, out, packet.clone());
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, kernel: &mut Kernel, me: ComponentId, tag: u64) {
        debug_assert_eq!(tag, TIMER_FORWARD);
        self.pipeline.on_timer(kernel, me);
    }

    fn name(&self) -> &str {
        "legacy-switch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osnt_netsim::{LinkSpec, SimBuilder};
    use osnt_packet::PacketBuilder;
    use osnt_time::SimTime;
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    type HostLog = Rc<RefCell<Vec<(SimTime, Packet)>>>;

    /// Host that sends a scripted list of (time, frame) and records
    /// arrivals.
    struct Host {
        script: Vec<(SimTime, Packet)>,
        got: HostLog,
    }
    impl Host {
        fn new(script: Vec<(SimTime, Packet)>) -> (Self, HostLog) {
            let got = Rc::new(RefCell::new(Vec::new()));
            (
                Host {
                    script,
                    got: got.clone(),
                },
                got,
            )
        }
    }
    impl Component for Host {
        fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
            for (i, (t, _)) in self.script.iter().enumerate() {
                k.schedule_timer_at(me, *t, i as u64);
            }
        }
        fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
            let pkt = self.script[tag as usize].1.clone();
            let _ = k.transmit(me, 0, pkt);
        }
        fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, pkt: Packet) {
            self.got.borrow_mut().push((k.now(), pkt));
        }
    }

    fn frame(src: u8, dst: u8) -> Packet {
        PacketBuilder::ethernet(MacAddr::local(src), MacAddr::local(dst))
            .ipv4(Ipv4Addr::new(10, 0, 0, src), Ipv4Addr::new(10, 0, 0, dst))
            .udp(1, 2)
            .build()
    }

    /// Three hosts on ports 0–2 of a legacy switch.
    fn three_host_net(scripts: [Vec<(SimTime, Packet)>; 3]) -> (osnt_netsim::Sim, [HostLog; 3]) {
        let mut b = SimBuilder::new();
        let sw = b.add_component(
            "switch",
            Box::new(LegacySwitch::new(LegacyConfig::default())),
            4,
        );
        let mut handles = Vec::new();
        let mut ids = Vec::new();
        for (i, script) in scripts.into_iter().enumerate() {
            let (host, got) = Host::new(script);
            let id = b.add_component(&format!("h{i}"), Box::new(host), 1);
            handles.push(got);
            ids.push(id);
        }
        for (i, id) in ids.iter().enumerate() {
            b.connect(*id, 0, sw, i, LinkSpec::ten_gig());
        }
        (b.build(), handles.try_into().unwrap())
    }

    #[test]
    fn unknown_destination_is_flooded_then_learned() {
        // h0 sends to h1 (unknown → flood to 1 and 2);
        // then h1 replies (h0 now learned → unicast only to 0).
        let (mut sim, got) = three_host_net([
            vec![(SimTime::ZERO, frame(1, 2))],
            vec![(SimTime::from_us(100), frame(2, 1))],
            vec![],
        ]);
        sim.run_until(SimTime::from_ms(1));
        assert_eq!(got[1].borrow().len(), 1, "h1 gets the first frame");
        assert_eq!(got[2].borrow().len(), 1, "h2 sees the flooded copy");
        assert_eq!(got[0].borrow().len(), 1, "reply is unicast to h0");
        // If the reply had been flooded, h2 would have 2 frames.
        assert_eq!(got[2].borrow().len(), 1);
    }

    #[test]
    fn broadcast_goes_everywhere_except_ingress() {
        let bcast = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::BROADCAST)
            .ipv4(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(255, 255, 255, 255),
            )
            .udp(68, 67)
            .build();
        let (mut sim, got) = three_host_net([vec![(SimTime::ZERO, bcast)], vec![], vec![]]);
        sim.run_until(SimTime::from_ms(1));
        assert_eq!(got[0].borrow().len(), 0);
        assert_eq!(got[1].borrow().len(), 1);
        assert_eq!(got[2].borrow().len(), 1);
    }

    #[test]
    fn store_and_forward_latency_is_size_dependent() {
        // One-way latency through the switch = serialisation in +
        // propagation + lookup + serialisation out + propagation. A
        // bigger frame pays serialisation twice.
        let run = |len: usize| {
            let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                .udp(1, 2)
                .pad_to_frame(len)
                .build();
            let (mut sim, got) = three_host_net([vec![(SimTime::ZERO, pkt)], vec![], vec![]]);
            sim.run_until(SimTime::from_ms(1));
            let times = got[1].borrow();
            times[0].0
        };
        let small = run(64);
        let large = run(1518);
        // Expected: 2 × (wire_len-12)×800ps + 2×10ns + 800ns.
        let expect = |len: u64| 2 * ((len + 8) * 800) + 20_000 + 800_000;
        assert_eq!(small.as_ps(), expect(64));
        assert_eq!(large.as_ps(), expect(1518));
        assert!(large > small);
    }

    #[test]
    fn cut_through_latency_is_frame_size_independent() {
        let run = |cfg: LegacyConfig, len: usize| {
            let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                .udp(1, 2)
                .pad_to_frame(len)
                .build();
            let mut b = SimBuilder::new();
            let sw = b.add_component("switch", Box::new(LegacySwitch::new(cfg)), 4);
            let (h0, _got0) = Host::new(vec![(SimTime::ZERO, pkt)]);
            let (h1, got1) = Host::new(vec![]);
            let a = b.add_component("h0", Box::new(h0), 1);
            let c = b.add_component("h1", Box::new(h1), 1);
            b.connect(a, 0, sw, 0, LinkSpec::ten_gig());
            b.connect(c, 0, sw, 1, LinkSpec::ten_gig());
            let mut sim = b.build();
            sim.run_until(SimTime::from_ms(1));
            let t = got1.borrow()[0].0;
            t.as_ps()
        };
        // Store-and-forward: latency grows with frame size.
        let sf_small = run(LegacyConfig::default(), 64);
        let sf_large = run(LegacyConfig::default(), 1518);
        assert!(
            sf_large > sf_small + 2_000_000,
            "S&F grows: {sf_small} -> {sf_large}"
        );
        // Cut-through: the fabric credit cancels one serialisation, so
        // end-to-end latency is (nearly) frame-size independent once the
        // floor is reached.
        let ct_small = run(LegacyConfig::cut_through(), 64);
        let ct_large = run(LegacyConfig::cut_through(), 1518);
        let spread = ct_large as i64 - ct_small as i64;
        // The credit cancels up to `lookup_latency − floor` (700 ns) of
        // the ingress serialisation, so the size dependence shrinks
        // toward the single remaining egress serialisation. With an
        // 800 ns lookup the observable spread is ~70% of S&F's; a true
        // cut-through (unbounded credit) would reach 50%.
        assert!(
            spread < (sf_large - sf_small) as i64 * 3 / 4,
            "cut-through spread {spread} should be well below S&F's {}",
            sf_large - sf_small
        );
        assert!(ct_large < sf_large, "cut-through beats S&F for big frames");
        assert!(ct_small < sf_small + 1_000, "small frames pay no penalty");
    }

    #[test]
    fn filter_to_same_port_drops_frame() {
        // h0 sends to a station the switch has learned on port 0 itself:
        // first teach the switch that MAC 9 lives on port 0, then send
        // p0→MAC9: the frame must not be forwarded anywhere.
        let teach = frame(9, 1); // src MAC 9 enters on port 0
        let to_self = frame(1, 9);
        let (mut sim, got) = three_host_net([
            vec![(SimTime::ZERO, teach), (SimTime::from_us(10), to_self)],
            vec![],
            vec![],
        ]);
        sim.run_until(SimTime::from_ms(1));
        // The teach frame (dst MAC 1, unknown) floods to h1 and h2; the
        // to_self frame goes nowhere.
        assert_eq!(got[1].borrow().len(), 1);
        assert_eq!(got[2].borrow().len(), 1);
        assert_eq!(got[0].borrow().len(), 0);
    }
}
