//! Tuple-space search: sublinear wildcard classification.
//!
//! The interpreter ([`crate::flowtable::FlowTable::lookup_idx`]) and the
//! compiled linear scan both walk O(n) rows per packet, and a strict
//! `flow_mod` walks O(n) rows to find its victim — hopeless at the 10^6
//! wildcard entries the ROADMAP demands. This module is the classical
//! fix (Srinivasan/Suri/Varghese's tuple-space search, the same engine
//! Open vSwitch ships): group rules by their wildcard **mask signature**
//! (a "tuple"), so every rule inside a tuple masks the same key bits.
//! Within one tuple a wildcard match degenerates to an *exact* match on
//! the masked key words — a hash probe — because the lowering invariant
//! (`value & !mask == 0`, see [`osnt_packet::KeyMatch::mask_words`])
//! makes `rule.matches(key)` ⇔ `key & mask == value`.
//!
//! A lookup probes each distinct tuple once: mask the key, hash, compare.
//! Rule count stops mattering; only *mask diversity* does, and real rule
//! sets have tens of masks for millions of rules. Two refinements keep
//! the probe loop short and the verdict byte-identical to the linear
//! reference:
//!
//! * **Rank pruning** — tuples are visited in descending order of their
//!   best `(priority, specificity)` rank. Once the best hit so far
//!   *strictly* outranks everything a tuple can hold, the loop exits.
//!   The exit must be strict: an equal-rank entry in a later tuple can
//!   still win the tie-break by earlier installation (lower seq).
//! * **Seq tie-break** — every entry carries its installation sequence
//!   number, so equal `(priority, specificity)` collisions resolve to
//!   the earliest install, exactly like the interpreter's first-wins
//!   scan.
//!
//! `flow_mod` becomes a hash operation on one tuple: ADD inserts into
//! the signature's bucket map, strict MODIFY/DELETE recompile the match
//! to find the tuple and bucket directly. The per-tuple rank multiset
//! (a `BTreeMap` counter) keeps the pruning bound exact under churn.

use crate::compiled::CompiledOfMatch;
use osnt_packet::{FlowKey, FlowKeyBlock, FxBuildHasher, BLOCK_LANES, KEY_WORDS};
use std::collections::{BTreeMap, HashMap};

/// A classification rank: `(priority, specificity)`, compared
/// lexicographically, higher wins. Ties break toward the lower
/// installation sequence number.
pub type Rank = (u16, u32);

/// A tuple's mask signature: the masked key words plus whether the rule
/// constrains the ingress port (which lives beside the key words).
type Signature = ([u64; KEY_WORDS], bool);

/// Hash-bucket key inside one tuple: the key words under the tuple's
/// mask, plus the ingress port when the tuple constrains it (0
/// otherwise, so port-wildcarding tuples collapse all ports into one
/// bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BucketKey {
    words: [u64; KEY_WORDS],
    port: u16,
}

/// One rule's residence inside a bucket. Self-contained — lookups never
/// touch the flow-entry storage.
#[derive(Debug, Clone, Copy)]
struct Resident {
    rank: Rank,
    /// Installation sequence (tie-break: lowest wins among equal rank).
    seq: u64,
    /// The owning [`crate::flowtable::FlowTable`] entry index.
    id: u32,
}

/// All rules sharing one wildcard mask signature.
#[derive(Debug, Clone, Default)]
struct Tuple {
    mask: [u64; KEY_WORDS],
    port_masked: bool,
    /// Masked-key-words → residents. Multiple residents per bucket are
    /// possible (same lowered match at different priorities).
    buckets: HashMap<BucketKey, Vec<Resident>, FxBuildHasher>,
    /// Multiset of resident ranks; `last_key_value` is the pruning
    /// bound. Kept exact under churn so the bound never goes stale.
    ranks: BTreeMap<Rank, u32>,
    len: usize,
}

impl Tuple {
    /// The best rank any resident holds, or `None` when empty.
    #[inline]
    fn max_rank(&self) -> Option<Rank> {
        self.ranks.last_key_value().map(|(r, _)| *r)
    }

    fn bucket_key(&self, compiled: &CompiledOfMatch) -> BucketKey {
        BucketKey {
            words: *compiled.key_match().value_words(),
            port: compiled.in_port_req().unwrap_or(0),
        }
    }

    fn probe_key(&self, in_port: u16, key: &FlowKey) -> BucketKey {
        BucketKey {
            words: key.masked(&self.mask),
            port: if self.port_masked { in_port } else { 0 },
        }
    }
}

/// Winner of a probe: `(rank, Reverse-able seq, entry id)`. Candidate
/// `a` beats `b` when `a.rank > b.rank`, or ranks tie and `a.seq <
/// b.seq`.
#[derive(Debug, Clone, Copy)]
struct Best {
    rank: Rank,
    seq: u64,
    id: u32,
}

impl Best {
    #[inline]
    fn beats(&self, other: &Option<Best>) -> bool {
        match other {
            None => true,
            Some(o) => self.rank > o.rank || (self.rank == o.rank && self.seq < o.seq),
        }
    }
}

/// The tuple-space search engine. Owns no flow entries — it indexes the
/// [`crate::flowtable::FlowTable`]'s dense entry vector by id and is
/// kept in lock-step by the table's mutation paths.
#[derive(Debug, Clone, Default)]
pub struct TupleSpace {
    tuples: Vec<Tuple>,
    by_sig: HashMap<Signature, usize, FxBuildHasher>,
    /// Tuple indices in descending `max_rank` order — the probe order
    /// that makes rank pruning sound. Rebuilt lazily: mask diversity is
    /// tiny next to rule count, so a rebuild is cheap and rare.
    order: Vec<usize>,
    order_dirty: bool,
    len: usize,
    /// Non-empty tuple count — the simulated cost model charges per
    /// tuple probed, so this is the "units of work" a lookup costs.
    active: usize,
}

impl TupleSpace {
    /// An empty engine.
    pub fn new() -> Self {
        TupleSpace::default()
    }

    /// Indexed rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rules are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Distinct non-empty mask signatures — the number of hash probes a
    /// worst-case lookup performs (pruning can only shorten it).
    pub fn active_tuples(&self) -> usize {
        self.active
    }

    fn signature(compiled: &CompiledOfMatch) -> Signature {
        (
            *compiled.key_match().mask_words(),
            compiled.in_port_req().is_some(),
        )
    }

    /// Index entry `id` (installed with sequence `seq` at `rank`) under
    /// its compiled match.
    pub fn insert(&mut self, id: u32, seq: u64, rank: Rank, compiled: &CompiledOfMatch) {
        let sig = Self::signature(compiled);
        let ti = *self.by_sig.entry(sig).or_insert_with(|| {
            self.tuples.push(Tuple {
                mask: sig.0,
                port_masked: sig.1,
                ..Tuple::default()
            });
            self.order_dirty = true;
            self.tuples.len() - 1
        });
        let t = &mut self.tuples[ti];
        let before = t.max_rank();
        let key = t.bucket_key(compiled);
        t.buckets
            .entry(key)
            .or_default()
            .push(Resident { rank, seq, id });
        *t.ranks.entry(rank).or_insert(0) += 1;
        if t.len == 0 {
            self.active += 1;
        }
        t.len += 1;
        self.len += 1;
        if t.max_rank() != before {
            self.order_dirty = true;
        }
    }

    /// Un-index entry `id`. The caller supplies the entry's compiled
    /// match so the owning tuple and bucket are found by hashing, never
    /// by scanning.
    pub fn remove(&mut self, id: u32, compiled: &CompiledOfMatch) {
        let sig = Self::signature(compiled);
        let ti = *self
            .by_sig
            .get(&sig)
            .expect("tuple-space remove: unknown mask signature");
        let t = &mut self.tuples[ti];
        let before = t.max_rank();
        let key = t.bucket_key(compiled);
        let bucket = t
            .buckets
            .get_mut(&key)
            .expect("tuple-space remove: unknown bucket");
        let pos = bucket
            .iter()
            .position(|r| r.id == id)
            .expect("tuple-space remove: id not resident");
        let gone = bucket.swap_remove(pos);
        if bucket.is_empty() {
            t.buckets.remove(&key);
        }
        match t.ranks.get_mut(&gone.rank) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                t.ranks.remove(&gone.rank);
            }
        }
        t.len -= 1;
        self.len -= 1;
        if t.len == 0 {
            self.active -= 1;
        }
        if t.max_rank() != before {
            self.order_dirty = true;
        }
    }

    /// Rewrite the entry id of an already-indexed rule — the table's
    /// `swap_remove` storage moves the tail entry into the vacated slot,
    /// and its residence here must follow. O(bucket) via hashing.
    pub fn relocate(&mut self, old_id: u32, new_id: u32, compiled: &CompiledOfMatch) {
        let sig = Self::signature(compiled);
        let ti = *self
            .by_sig
            .get(&sig)
            .expect("tuple-space relocate: unknown mask signature");
        let t = &mut self.tuples[ti];
        let key = t.bucket_key(compiled);
        let bucket = t
            .buckets
            .get_mut(&key)
            .expect("tuple-space relocate: unknown bucket");
        let r = bucket
            .iter_mut()
            .find(|r| r.id == old_id)
            .expect("tuple-space relocate: id not resident");
        r.id = new_id;
    }

    /// Probe order: tuple indices, descending `max_rank`, empties
    /// dropped. Deterministic — ties sort by tuple creation index.
    fn ensure_order(&mut self) {
        if self.order_dirty {
            let tuples = &self.tuples;
            self.order = (0..tuples.len()).filter(|&i| tuples[i].len > 0).collect();
            self.order
                .sort_by_key(|&i| std::cmp::Reverse((tuples[i].max_rank(), std::cmp::Reverse(i))));
            self.order_dirty = false;
        }
    }

    /// Best-match lookup: probe tuples in descending max-rank order,
    /// early-exit once the best hit strictly outranks every remaining
    /// tuple. Returns the winning entry id.
    pub fn lookup(&mut self, in_port: u16, key: &FlowKey) -> Option<usize> {
        self.ensure_order();
        let mut best: Option<Best> = None;
        for &ti in &self.order {
            let t = &self.tuples[ti];
            if t.len == 0 {
                continue;
            }
            let bound = t.max_rank().expect("non-empty tuple has a max rank");
            if let Some(b) = &best {
                // Strict: an equal-rank resident can still win by seq.
                if b.rank > bound {
                    break;
                }
            }
            if let Some(bucket) = t.buckets.get(&t.probe_key(in_port, key)) {
                for r in bucket {
                    let cand = Best {
                        rank: r.rank,
                        seq: r.seq,
                        id: r.id,
                    };
                    if cand.beats(&best) {
                        best = Some(cand);
                    }
                }
            }
        }
        best.map(|b| b.id as usize)
    }

    /// Block lookup: classify every occupied lane of `block` tuple by
    /// tuple, with per-lane undecided masking — a lane leaves the probe
    /// set as soon as its best hit strictly outranks the current tuple's
    /// bound (tuples only get worse from there). Lane `i` of the result
    /// equals [`TupleSpace::lookup`] on key `i`.
    pub fn lookup_block(
        &mut self,
        in_port: u16,
        block: &FlowKeyBlock,
    ) -> [Option<usize>; BLOCK_LANES] {
        let occupied: u8 = if block.len() >= BLOCK_LANES {
            u8::MAX
        } else {
            (1u8 << block.len()) - 1
        };
        self.ensure_order();
        let mut best: [Option<Best>; BLOCK_LANES] = [None; BLOCK_LANES];
        let mut undecided = occupied;
        for &ti in &self.order {
            if undecided == 0 {
                break;
            }
            let t = &self.tuples[ti];
            if t.len == 0 {
                continue;
            }
            let bound = t.max_rank().expect("non-empty tuple has a max rank");
            let mut lanes = undecided;
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                if let Some(b) = &best[lane] {
                    if b.rank > bound {
                        undecided &= !(1u8 << lane);
                        continue;
                    }
                }
                let probe = BucketKey {
                    words: block.masked_lane(lane, &t.mask),
                    port: if t.port_masked { in_port } else { 0 },
                };
                if let Some(bucket) = t.buckets.get(&probe) {
                    for r in bucket {
                        let cand = Best {
                            rank: r.rank,
                            seq: r.seq,
                            id: r.id,
                        };
                        if cand.beats(&best[lane]) {
                            best[lane] = Some(cand);
                        }
                    }
                }
            }
        }
        let mut out = [None; BLOCK_LANES];
        for (o, b) in out.iter_mut().zip(best) {
            *o = b.map(|b| b.id as usize);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osnt_openflow::OfMatch;
    use osnt_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn key_of(dst_ip: Ipv4Addr, dst_port: u16) -> FlowKey {
        let p = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), dst_ip)
            .udp(1000, dst_port)
            .build();
        FlowKey::extract(&p.parse())
    }

    fn rank_of(m: &OfMatch, priority: u16) -> Rank {
        (priority, m.specificity())
    }

    #[test]
    fn exact_probe_and_rank_order() {
        let mut ts = TupleSpace::new();
        let any = OfMatch::any();
        let porty = OfMatch::udp_dst_port(9001);
        ts.insert(0, 0, rank_of(&any, 1), &CompiledOfMatch::compile(&any));
        ts.insert(1, 1, rank_of(&porty, 5), &CompiledOfMatch::compile(&porty));
        assert_eq!(ts.active_tuples(), 2);
        assert_eq!(
            ts.lookup(0, &key_of(Ipv4Addr::new(1, 1, 1, 1), 9001)),
            Some(1)
        );
        assert_eq!(
            ts.lookup(0, &key_of(Ipv4Addr::new(1, 1, 1, 1), 80)),
            Some(0)
        );
    }

    #[test]
    fn equal_rank_breaks_by_seq_across_tuples() {
        // Two rules, equal (priority, specificity), different masks —
        // so they live in different tuples. The earlier install must
        // win, which is exactly why pruning can't exit on rank equality.
        let mut src = OfMatch::any();
        src.nw_src = Ipv4Addr::new(10, 0, 0, 0);
        src.set_nw_src_prefix(8);
        let mut dst = OfMatch::any();
        dst.nw_dst = Ipv4Addr::new(10, 0, 0, 0);
        dst.set_nw_dst_prefix(8);
        assert_eq!(src.specificity(), dst.specificity());

        // Install in both orders; the winner must follow seq, not
        // tuple-creation order.
        for flip in [false, true] {
            let mut ts = TupleSpace::new();
            let (first, second) = if flip { (&dst, &src) } else { (&src, &dst) };
            ts.insert(0, 0, rank_of(first, 5), &CompiledOfMatch::compile(first));
            ts.insert(1, 1, rank_of(second, 5), &CompiledOfMatch::compile(second));
            // 10.0.0.1 -> 10.9.9.9 hits both prefixes.
            let k = key_of(Ipv4Addr::new(10, 9, 9, 9), 80);
            assert_eq!(ts.lookup(0, &k), Some(0), "flip={flip}");
        }
    }

    #[test]
    fn remove_and_relocate_keep_the_index_exact() {
        let mut ts = TupleSpace::new();
        let any = OfMatch::any();
        let porty = OfMatch::udp_dst_port(9001);
        let c_any = CompiledOfMatch::compile(&any);
        let c_porty = CompiledOfMatch::compile(&porty);
        ts.insert(0, 0, rank_of(&any, 1), &c_any);
        ts.insert(1, 1, rank_of(&porty, 5), &c_porty);
        let k = key_of(Ipv4Addr::new(1, 1, 1, 1), 9001);
        assert_eq!(ts.lookup(0, &k), Some(1));
        ts.remove(1, &c_porty);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.active_tuples(), 1);
        assert_eq!(ts.lookup(0, &k), Some(0));
        // Simulate a swap_remove: entry 0 becomes entry 5.
        ts.relocate(0, 5, &c_any);
        assert_eq!(ts.lookup(0, &k), Some(5));
    }

    #[test]
    fn block_lookup_equals_scalar() {
        let mut ts = TupleSpace::new();
        let any = OfMatch::any();
        let porty = OfMatch::udp_dst_port(9001);
        let exact = OfMatch::ipv4_dst(Ipv4Addr::new(10, 1, 0, 1));
        for (id, m, prio) in [(0u32, &any, 1u16), (1, &porty, 5), (2, &exact, 5)] {
            ts.insert(
                id,
                id as u64,
                rank_of(m, prio),
                &CompiledOfMatch::compile(m),
            );
        }
        let keys = [
            key_of(Ipv4Addr::new(10, 1, 0, 1), 9001),
            key_of(Ipv4Addr::new(10, 1, 0, 1), 80),
            key_of(Ipv4Addr::new(192, 168, 0, 1), 9001),
            key_of(Ipv4Addr::new(192, 168, 0, 1), 80),
        ];
        let mut block = FlowKeyBlock::new();
        for k in &keys {
            block.push(k);
        }
        let lanes = ts.lookup_block(3, &block);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(lanes[i], ts.lookup(3, k), "lane {i}");
        }
        for lane in &lanes[keys.len()..] {
            assert_eq!(*lane, None);
        }
    }
}
