#![warn(missing_docs)]
//! # osnt-switch — devices under test
//!
//! The demo evaluates OSNT against real switches; this crate provides
//! their simulated stand-ins:
//!
//! * [`LegacySwitch`] — a store-and-forward L2 learning switch with a
//!   configurable lookup latency and bounded output queues. Its
//!   latency-vs-load behaviour (flat, then queueing, then loss) is what
//!   demo Part I measures (experiment E5).
//! * [`OpenFlowSwitch`] — an OpenFlow 1.0 switch with a genuine wire
//!   protocol control channel, a priority/wildcard flow table, and a
//!   deliberately *realistic* control plane: flow_mods are processed
//!   serially by a slow management CPU and take additional time to reach
//!   the hardware table; by default the switch (like many production
//!   switches OFLOPS measured) answers barriers from the CPU **before**
//!   the hardware is updated. OFLOPS-turbo exists to expose exactly this
//!   gap (experiments E6/E7).
//!
//! Both switches expose SNMP-style counters ([`snmp`]).

pub mod compiled;
pub mod control;
pub mod fabric;
pub mod flowtable;
pub mod legacy;
pub mod openflow_switch;
pub mod snmp;
pub mod tuple_space;

pub use compiled::CompiledOfMatch;
pub use control::{decap_control, encap_control, CONTROL_ETHERTYPE};
pub use fabric::ForwardingPipeline;
pub use flowtable::{Classifier, FlowEntry, FlowTable, TableFull};
pub use legacy::{ForwardingMode, LegacyConfig, LegacySwitch};
pub use openflow_switch::{OfSwitchConfig, OpenFlowSwitch};
pub use tuple_space::TupleSpace;
