//! The shared store-and-forward fabric pipeline.
//!
//! Both switch models forward the same way: a frame is fully received
//! (store), spends a fixed pipeline/lookup latency in the fabric, then is
//! offered to the output port's (bounded) MAC queue. The pipeline keeps
//! FIFO order because the latency is constant.

use osnt_netsim::{ComponentId, Kernel, TxResult};
use osnt_packet::Packet;
use osnt_time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Timer tag used by the pipeline. Components using it must route this
/// tag's timer events to [`ForwardingPipeline::on_timer`].
pub const TIMER_FORWARD: u64 = 0x0f0f_0001;

/// Pending frames inside the switching fabric.
#[derive(Debug, Default)]
pub struct ForwardingPipeline {
    pending: VecDeque<(usize, Packet)>,
    /// Frames forwarded to an output MAC.
    pub forwarded: u64,
    /// Frames lost at a full output queue.
    pub output_drops: u64,
}

impl ForwardingPipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        ForwardingPipeline::default()
    }

    /// Submit a frame for transmission out of `out_port` after `latency`.
    pub fn submit(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        latency: SimDuration,
        out_port: usize,
        packet: Packet,
    ) {
        let release_at = kernel.now() + latency;
        self.submit_at(kernel, me, release_at, out_port, packet);
    }

    /// [`ForwardingPipeline::submit`] with an absolute release instant.
    /// Batched callers use this to anchor the fabric latency at each
    /// frame's own arrival time rather than at the (later) instant the
    /// batch handler runs. `release_at` must not precede any already
    /// pending frame's release — the pipeline pops FIFO.
    pub fn submit_at(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        release_at: SimTime,
        out_port: usize,
        packet: Packet,
    ) {
        self.pending.push_back((out_port, packet));
        kernel.schedule_timer_at(me, release_at, TIMER_FORWARD);
    }

    /// Handle the pipeline timer: emit the oldest pending frame.
    pub fn on_timer(&mut self, kernel: &mut Kernel, me: ComponentId) {
        let (port, packet) = self
            .pending
            .pop_front()
            .expect("pipeline timer with no pending frame");
        match kernel.transmit(me, port, packet) {
            TxResult::Transmitted { .. } => self.forwarded += 1,
            TxResult::Dropped => self.output_drops += 1,
            TxResult::NotConnected => {
                // Forwarding out of an unwired port loses the frame, like
                // a link-down port.
                self.output_drops += 1;
            }
        }
    }

    /// Frames currently inside the fabric.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osnt_netsim::{Component, LinkSpec, SimBuilder};
    use osnt_time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A 2-port repeater built on the pipeline: everything from port 0
    /// exits port 1 after 1 µs.
    struct Repeater {
        pipe: ForwardingPipeline,
    }
    impl Component for Repeater {
        fn on_packet(&mut self, k: &mut Kernel, me: ComponentId, port: usize, pkt: Packet) {
            if port == 0 {
                self.pipe.submit(k, me, SimDuration::from_us(1), 1, pkt);
            }
        }
        fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, tag: u64) {
            assert_eq!(tag, TIMER_FORWARD);
            self.pipe.on_timer(k, me);
        }
    }

    struct Probe {
        sent_at: SimTime,
        got: Rc<RefCell<Vec<SimTime>>>,
    }
    impl Component for Probe {
        fn on_start(&mut self, k: &mut Kernel, me: ComponentId) {
            k.schedule_timer_at(me, self.sent_at, 1);
        }
        fn on_timer(&mut self, k: &mut Kernel, me: ComponentId, _tag: u64) {
            let _ = k.transmit(me, 0, Packet::zeroed(64));
        }
        fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, _: Packet) {
            self.got.borrow_mut().push(k.now());
        }
    }

    struct Sink {
        got: Rc<RefCell<Vec<SimTime>>>,
    }
    impl Component for Sink {
        fn on_packet(&mut self, k: &mut Kernel, _: ComponentId, _: usize, _: Packet) {
            self.got.borrow_mut().push(k.now());
        }
    }

    #[test]
    fn pipeline_adds_fixed_latency() {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        let probe = b.add_component(
            "probe",
            Box::new(Probe {
                sent_at: SimTime::ZERO,
                got: Rc::new(RefCell::new(Vec::new())),
            }),
            1,
        );
        let rep = b.add_component(
            "repeater",
            Box::new(Repeater {
                pipe: ForwardingPipeline::new(),
            }),
            2,
        );
        let sink = b.add_component("sink", Box::new(Sink { got: got.clone() }), 1);
        b.connect(probe, 0, rep, 0, LinkSpec::ten_gig());
        b.connect(rep, 1, sink, 0, LinkSpec::ten_gig());
        let mut sim = b.build();
        sim.run_until(SimTime::from_ms(1));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        // Wire to switch (57.6 + 10 ns) + 1 µs fabric + wire to sink.
        assert_eq!(got[0].as_ps(), 67_600 + 1_000_000 + 67_600);
    }
}
