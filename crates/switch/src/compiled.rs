//! OpenFlow 1.0 matches lowered onto `osnt_packet` flow-key words.
//!
//! [`crate::flowtable::FlowTable::lookup`] walks every entry's
//! [`OfMatch::matches`] per packet — a branchy re-walk of the parse for
//! each TCAM row. This module lowers an `ofp_match` onto the same
//! [`KeyMatch`] value/mask substrate the monitor's compiled filters use,
//! so a hardware-table lookup becomes masked-word compares against a
//! pre-extracted [`FlowKey`] — and, through
//! [`CompiledOfMatch::matches_block`], against a whole
//! [`FlowKeyBlock`] of burst arrivals at once.
//!
//! The lowering is exact: `compiled.matches(in_port, &key) ==
//! of_match.matches(in_port, &parsed)` for every frame and ingress port
//! (pinned by the corpus test below). Two `ofp_match` quirks need care:
//!
//! * `dl_vlan == 0xffff` (`OFP_VLAN_NONE`) means "untagged", which
//!   lowers to *forbidding* the VLAN presence flag rather than matching
//!   a vid value;
//! * `in_port` is ingress metadata, not a header field, so it lives
//!   beside the key words and is checked separately (once per block on
//!   the block path, since every member of a burst shares one port).

use osnt_openflow::match_field::wildcards;
use osnt_openflow::OfMatch;
use osnt_packet::{FlowKey, FlowKeyBlock, IpPrefix, KeyMatch};
use std::net::IpAddr;

/// An [`OfMatch`] lowered to masked-word compares over a [`FlowKey`],
/// plus the out-of-band ingress-port requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledOfMatch {
    key: KeyMatch,
    in_port: Option<u16>,
}

impl CompiledOfMatch {
    /// Lower `m`. Exact: matches the same `(in_port, frame)` pairs as
    /// [`OfMatch::matches`]. (`dl_vlan_pcp` and `nw_tos` wildcard bits
    /// are ignored, exactly as the interpreter ignores those fields.)
    pub fn compile(m: &OfMatch) -> CompiledOfMatch {
        let w = m.wildcards;
        let mut key = KeyMatch::new();
        if w & wildcards::DL_SRC == 0 {
            key.require_src_mac(m.dl_src);
        }
        if w & wildcards::DL_DST == 0 {
            key.require_dst_mac(m.dl_dst);
        }
        if w & wildcards::DL_VLAN == 0 {
            if m.dl_vlan == 0xffff {
                key.forbid_vlan();
            } else {
                key.require_vlan(m.dl_vlan);
            }
        }
        if w & wildcards::DL_TYPE == 0 {
            key.require_ethertype(m.dl_type);
        }
        if w & wildcards::NW_PROTO == 0 {
            key.require_ip_protocol(m.nw_proto);
        }
        let src_shift = (w >> wildcards::NW_SRC_SHIFT) & 0x3f;
        if src_shift < 32 {
            key.require_src_ip(IpPrefix::new(IpAddr::V4(m.nw_src), (32 - src_shift) as u8));
        }
        let dst_shift = (w >> wildcards::NW_DST_SHIFT) & 0x3f;
        if dst_shift < 32 {
            key.require_dst_ip(IpPrefix::new(IpAddr::V4(m.nw_dst), (32 - dst_shift) as u8));
        }
        if w & wildcards::TP_SRC == 0 {
            key.require_src_port(m.tp_src);
        }
        if w & wildcards::TP_DST == 0 {
            key.require_dst_port(m.tp_dst);
        }
        let in_port = (w & wildcards::IN_PORT == 0).then_some(m.in_port);
        CompiledOfMatch { key, in_port }
    }

    /// The lowered value/mask requirement over the key words. Exposed
    /// so classification structures (the tuple-space engine) can group
    /// rows by mask signature and hash their value words.
    #[inline]
    pub fn key_match(&self) -> &KeyMatch {
        &self.key
    }

    /// The out-of-band ingress-port requirement (`None` = any port).
    #[inline]
    pub fn in_port_req(&self) -> Option<u16> {
        self.in_port
    }

    /// Whether a frame with `key` arriving on `in_port` satisfies the
    /// match.
    #[inline]
    pub fn matches(&self, in_port: u16, key: &FlowKey) -> bool {
        match self.in_port {
            Some(p) if p != in_port => false,
            _ => self.key.matches(key),
        }
    }

    /// Match every occupied lane of `block` (all arrived on `in_port`)
    /// at once; bit `i` of the returned mask is set when lane `i`
    /// matches. Exactly equivalent to per-lane [`CompiledOfMatch::matches`].
    #[inline]
    pub fn matches_block(&self, in_port: u16, block: &FlowKeyBlock) -> u8 {
        match self.in_port {
            Some(p) if p != in_port => 0,
            _ => self.key.matches_block(block),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osnt_packet::{MacAddr, Packet, PacketBuilder};
    use std::net::Ipv4Addr;

    /// Frames covering every header shape an `ofp_match` can
    /// discriminate on: plain/tagged, IPv4/IPv6/ARP/raw, porty and
    /// portless transports, plus a runt.
    fn corpus() -> Vec<Packet> {
        let mut frames = vec![
            PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(192, 168, 1, 2))
                .udp(5000, 9000)
                .build(),
            PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 2))
                .udp(0, 0)
                .build(),
            PacketBuilder::ethernet(MacAddr::local(3), MacAddr::local(4))
                .vlan(42)
                .ipv4(Ipv4Addr::new(10, 0, 0, 7), Ipv4Addr::new(10, 0, 0, 2))
                .udp(53, 53)
                .build(),
            PacketBuilder::ethernet(MacAddr::local(3), MacAddr::local(4))
                .vlan(7)
                .ipv4(Ipv4Addr::new(172, 16, 0, 1), Ipv4Addr::new(172, 16, 0, 2))
                .udp(80, 443)
                .build(),
            PacketBuilder::ethernet(MacAddr::local(9), MacAddr::BROADCAST)
                .raw_ethertype(0x0806)
                .payload(&[0u8; 46])
                .build(),
            PacketBuilder::ethernet(MacAddr::local(5), MacAddr::local(6))
                .ipv6(
                    "2001:db8::1".parse().unwrap(),
                    "2001:db8::2".parse().unwrap(),
                )
                .udp(5000, 9000)
                .build(),
            Packet::zeroed(64),
            Packet::from_vec(vec![0u8; 5]),
        ];
        // Non-IP experimental ethertype.
        frames.push(
            PacketBuilder::ethernet(MacAddr::local(9), MacAddr::local(1))
                .raw_ethertype(0x88B5)
                .payload(&[0u8; 50])
                .build(),
        );
        frames
    }

    fn matches_shapes() -> Vec<OfMatch> {
        let mut out = vec![OfMatch::any()];
        out.push(OfMatch::ipv4_dst(Ipv4Addr::new(192, 168, 1, 2)));
        out.push(OfMatch::udp_dst_port(9000));
        out.push(OfMatch::udp_dst_port(0));
        // Exact in_port.
        let mut m = OfMatch::any();
        m.in_port = 2;
        m.wildcards &= !wildcards::IN_PORT;
        out.push(m);
        // Exact MACs (including the all-zero aliasing trap).
        for mac in [MacAddr::local(1), MacAddr([0; 6])] {
            let mut m = OfMatch::any();
            m.dl_src = mac;
            m.wildcards &= !wildcards::DL_SRC;
            out.push(m);
            let mut m = OfMatch::any();
            m.dl_dst = mac;
            m.wildcards &= !wildcards::DL_DST;
            out.push(m);
        }
        // VLAN: tagged vids, vid 0, and OFP_VLAN_NONE (untagged).
        for vid in [42u16, 7, 0, 0xffff] {
            let mut m = OfMatch::any();
            m.dl_vlan = vid;
            m.wildcards &= !wildcards::DL_VLAN;
            out.push(m);
        }
        // EtherTypes (IPv4, ARP, zero).
        for t in [0x0800u16, 0x0806, 0x86dd, 0] {
            let mut m = OfMatch::any();
            m.dl_type = t;
            m.wildcards &= !wildcards::DL_TYPE;
            out.push(m);
        }
        // nw_proto (UDP, zero).
        for p in [17u8, 0] {
            let mut m = OfMatch::any();
            m.nw_proto = p;
            m.wildcards &= !wildcards::NW_PROTO;
            out.push(m);
        }
        // Source/dest prefixes at several lengths (0 is the family-only
        // degenerate, 32 is exact).
        for plen in [0u8, 8, 16, 24, 32] {
            let mut m = OfMatch::any();
            m.nw_src = Ipv4Addr::new(10, 0, 0, 1);
            m.set_nw_src_prefix(plen);
            out.push(m);
            let mut m = OfMatch::any();
            m.nw_dst = Ipv4Addr::new(192, 168, 1, 2);
            m.set_nw_dst_prefix(plen);
            out.push(m);
        }
        // Transport ports, including zero.
        for port in [5000u16, 9000, 0] {
            let mut m = OfMatch::any();
            m.tp_src = port;
            m.wildcards &= !wildcards::TP_SRC;
            out.push(m);
            let mut m = OfMatch::any();
            m.tp_dst = port;
            m.wildcards &= !wildcards::TP_DST;
            out.push(m);
        }
        // A kitchen-sink conjunction.
        let mut m = OfMatch::udp_dst_port(9000);
        m.dl_src = MacAddr::local(1);
        m.wildcards &= !wildcards::DL_SRC;
        m.nw_src = Ipv4Addr::new(10, 0, 0, 0);
        m.set_nw_src_prefix(24);
        m.in_port = 1;
        m.wildcards &= !wildcards::IN_PORT;
        out.push(m);
        out
    }

    #[test]
    fn compiled_of_match_equals_interpreted() {
        for m in matches_shapes() {
            let compiled = CompiledOfMatch::compile(&m);
            for frame in corpus() {
                let parsed = frame.parse();
                let key = FlowKey::extract(&parsed);
                for in_port in [0u16, 1, 2, 3] {
                    assert_eq!(
                        compiled.matches(in_port, &key),
                        m.matches(in_port, &parsed),
                        "divergence: {m:?} on port {in_port}, frame {:02x?}",
                        frame.data()
                    );
                }
            }
        }
    }

    #[test]
    fn block_matching_equals_per_lane() {
        let frames = corpus();
        for m in matches_shapes() {
            let compiled = CompiledOfMatch::compile(&m);
            for in_port in [0u16, 2] {
                let mut block = FlowKeyBlock::new();
                let mut expect = 0u8;
                for (lane, frame) in frames.iter().take(8).enumerate() {
                    let key = FlowKey::extract(&frame.parse());
                    block.push(&key);
                    expect |= u8::from(compiled.matches(in_port, &key)) << lane;
                    assert_eq!(
                        compiled.matches_block(in_port, &block),
                        expect,
                        "{m:?} port {in_port} fill {}",
                        block.len()
                    );
                }
            }
        }
    }
}
