//! Control-channel encapsulation.
//!
//! The OpenFlow control channel is carried over the simulated network as
//! Ethernet frames with a dedicated EtherType, one OpenFlow message per
//! frame. The link's bandwidth and propagation apply, so control-plane
//! latency is a real, measurable quantity.

use osnt_openflow::{Message, WireError};
use osnt_packet::ethernet::EthernetHeader;
use osnt_packet::{MacAddr, Packet};

/// EtherType used for encapsulated OpenFlow control messages
/// (IEEE local experimental 2).
pub const CONTROL_ETHERTYPE: u16 = 0x88B6;

/// Wrap one OpenFlow message in a control frame.
pub fn encap_control(msg: &Message, xid: u32) -> Packet {
    let mut bytes = Vec::new();
    EthernetHeader {
        dst: MacAddr::local(0xC0),
        src: MacAddr::local(0xC1),
        ethertype: CONTROL_ETHERTYPE,
    }
    .write_to(&mut bytes);
    bytes.extend_from_slice(&msg.encode(xid));
    // Respect the Ethernet minimum so timing stays realistic.
    if bytes.len() < 60 {
        bytes.resize(60, 0);
    }
    Packet::from_vec(bytes)
}

/// Unwrap a control frame. Returns `None` for frames that are not
/// control-channel frames; `Some(Err(..))` for malformed OpenFlow inside
/// a control frame.
pub fn decap_control(packet: &Packet) -> Option<Result<(Message, u32), WireError>> {
    let parsed = packet.parse();
    if parsed.effective_ethertype() != Some(CONTROL_ETHERTYPE) {
        return None;
    }
    let body = &packet.data()[osnt_packet::ethernet::HEADER_LEN..];
    Some(Message::decode(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use osnt_openflow::messages::EchoData;

    #[test]
    fn round_trip() {
        let msg = Message::EchoRequest(EchoData(vec![1, 2, 3]));
        let frame = encap_control(&msg, 42);
        let (back, xid) = decap_control(&frame).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(xid, 42);
    }

    #[test]
    fn minimum_frame_is_respected() {
        let frame = encap_control(&Message::Hello, 1);
        assert!(frame.frame_len() >= 64);
        // Padding must not confuse the decoder (OF length field governs).
        assert!(decap_control(&frame).unwrap().is_ok());
    }

    #[test]
    fn non_control_frames_are_ignored() {
        let data = Packet::zeroed(64);
        assert!(decap_control(&data).is_none());
    }

    #[test]
    fn large_message_survives() {
        let msg = Message::EchoRequest(EchoData(vec![7; 5000]));
        let frame = encap_control(&msg, 9);
        let (back, _) = decap_control(&frame).unwrap().unwrap();
        assert_eq!(back, msg);
    }
}
