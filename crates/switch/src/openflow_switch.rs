//! An OpenFlow 1.0 switch model with a realistic (slow, serial) control
//! plane.
//!
//! The architecture mirrors the switches OFLOPS measured:
//!
//! * The **dataplane** (hardware table + fabric) forwards at line rate
//!   with a fixed lookup latency.
//! * The **management CPU** processes control messages *serially*: each
//!   `FLOW_MOD`, echo, stats request or punted packet occupies the CPU
//!   for a configurable time. Bursts of flow_mods therefore delay
//!   everything behind them — including the echo probes OFLOPS uses to
//!   watch control-plane health.
//! * A committed flow_mod still needs [`OfSwitchConfig::hw_install_delay`]
//!   before the **hardware** table actually changes. By default the
//!   switch answers `BARRIER_REQUEST` from the CPU **without** waiting
//!   for hardware (`honest_barrier = false`), reproducing the
//!   control-plane/data-plane gap that OFLOPS-turbo exposes (E6) and the
//!   transient misforwarding during large updates (E7).

use crate::control::{decap_control, encap_control};
use crate::fabric::{ForwardingPipeline, TIMER_FORWARD};
use crate::flowtable::{Classifier, FlowEntry, FlowTable, RemovalReason};
use osnt_netsim::{Component, ComponentId, Kernel};
use osnt_openflow::actions::port_no;
use osnt_openflow::messages::{
    EchoData, FeaturesReply, FlowMod, FlowModCommand, FlowRemoved, FlowStatsEntry, Message,
    PacketIn, PacketInReason, PacketOut, PhyPort, PortStats, StatsBody,
};
use osnt_openflow::{Action, OfMatch};
use osnt_packet::{FlowKey, FlowKeyBlock, MacAddr, Packet};
use osnt_time::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

const TAG_CPU: u64 = 2;
const TAG_HW: u64 = 3;
const TAG_BARRIER: u64 = 4;
const TAG_EXPIRE: u64 = 5;

/// OpenFlow switch parameters.
#[derive(Debug, Clone)]
pub struct OfSwitchConfig {
    /// Number of data ports (the control channel gets one extra kernel
    /// port).
    pub n_ports: usize,
    /// Datapath id reported in FEATURES_REPLY.
    pub datapath_id: u64,
    /// Hardware flow-table capacity (TCAM rows).
    pub table_capacity: usize,
    /// Management-CPU time per FLOW_MOD.
    pub flowmod_proc: SimDuration,
    /// Extra delay between the CPU committing a flow_mod and the
    /// hardware table actually changing.
    pub hw_install_delay: SimDuration,
    /// When true the switch delays BARRIER_REPLY until every prior
    /// flow_mod has reached hardware (the honest behaviour); when false
    /// it replies straight from the CPU (what OFLOPS found in practice).
    pub honest_barrier: bool,
    /// CPU time per echo request.
    pub echo_proc: SimDuration,
    /// CPU time per features request.
    pub features_proc: SimDuration,
    /// CPU time to start a stats reply…
    pub stats_proc_base: SimDuration,
    /// …plus this much per flow entry scanned.
    pub stats_proc_per_entry: SimDuration,
    /// CPU time per PACKET_OUT.
    pub packet_out_proc: SimDuration,
    /// CPU time per punted packet (PACKET_IN generation).
    pub packet_in_proc: SimDuration,
    /// Dataplane fabric/lookup latency (the fixed part).
    pub lookup_latency: SimDuration,
    /// Additional dataplane latency per *unit of classification work*:
    /// rules scanned on the linear classifier, distinct tuples probed on
    /// the tuple-space classifier ([`FlowTable::lookup_cost_units`]).
    /// This makes simulated DUT latency track the classification
    /// structure — a million-rule table with ten masks costs ten units,
    /// not a million. Zero (the default) keeps the flat-latency model.
    pub lookup_per_unit: SimDuration,
    /// Which classification engine backs the hardware table. Defaults
    /// from the `OSNT_CLASSIFIER` env knob (`linear` | `tuple`); both
    /// produce byte-identical forwarding.
    pub classifier: Classifier,
    /// Output buffer per data port, bytes.
    pub output_buffer_bytes: usize,
    /// Bytes of a punted frame included in PACKET_IN.
    pub miss_send_len: usize,
    /// Use the compiled flow-table lookup (masked-word compares against
    /// pre-extracted flow keys) instead of interpreting each entry's
    /// `ofp_match` per packet. Results are identical; this only trades
    /// a lazy compile per table change for cheaper per-packet matching.
    pub compiled_lookup: bool,
    /// Classify coalesced data-port arrivals in [`osnt_packet::FlowKeyBlock`]
    /// groups (one masked-word sweep per table row across up to 8
    /// frames). Byte-identical to scalar dispatch: the coalescing window
    /// is bounded by the switch's minimum side-effect delay (see
    /// `Component::batch_window`), and each member's forwarding is
    /// anchored at its own arrival instant. The control channel always
    /// stays on the scalar path.
    pub batch: bool,
}

impl Default for OfSwitchConfig {
    fn default() -> Self {
        OfSwitchConfig {
            n_ports: 4,
            datapath_id: 0x00_0000_0000_0042,
            table_capacity: 1500,
            flowmod_proc: SimDuration::from_us(25),
            hw_install_delay: SimDuration::from_ms(1),
            honest_barrier: false,
            echo_proc: SimDuration::from_us(10),
            features_proc: SimDuration::from_us(50),
            stats_proc_base: SimDuration::from_us(100),
            stats_proc_per_entry: SimDuration::from_us(2),
            packet_out_proc: SimDuration::from_us(15),
            packet_in_proc: SimDuration::from_us(20),
            lookup_latency: SimDuration::from_ns(900),
            lookup_per_unit: SimDuration::ZERO,
            classifier: Classifier::from_env(),
            output_buffer_bytes: 512 * 1024,
            miss_send_len: 128,
            compiled_lookup: true,
            batch: true,
        }
    }
}

/// Work items for the serial management CPU.
#[derive(Debug)]
enum CpuJob {
    FlowMod(FlowMod, u32),
    Barrier(u32),
    Echo(EchoData, u32),
    Features(u32),
    StatsFlow(OfMatch, u32),
    StatsPort(u16, u32),
    PacketOut(PacketOut),
    Punt {
        in_port: u16,
        reason: PacketInReason,
        data: Vec<u8>,
        total_len: u16,
    },
}

/// Hardware-table commits in flight between CPU and TCAM.
#[derive(Debug)]
struct HwCommit {
    flow_mod: FlowMod,
}

/// The switch component. Kernel port layout: `0..n_ports` are data
/// ports, `n_ports` is the control channel.
pub struct OpenFlowSwitch {
    config: OfSwitchConfig,
    table: FlowTable,
    cam: HashMap<MacAddr, usize>,
    pipeline: ForwardingPipeline,
    cpu_fifo: VecDeque<CpuJob>,
    cpu_busy_until: SimTime,
    hw_fifo: VecDeque<HwCommit>,
    last_hw_commit: SimTime,
    barrier_fifo: VecDeque<u32>,
    /// Logical table occupancy as the CPU sees it (hardware length plus
    /// in-flight adds minus deletes) — used for the table-full check.
    logical_len: usize,
    next_xid: u32,
    /// PACKET_INs sent.
    pub packet_ins: u64,
    /// FLOW_MODs accepted by the CPU.
    pub flow_mods_accepted: u64,
    /// FLOW_MODs rejected (table full).
    pub flow_mods_rejected: u64,
}

impl OpenFlowSwitch {
    /// A switch with the given configuration.
    pub fn new(config: OfSwitchConfig) -> Self {
        OpenFlowSwitch {
            table: FlowTable::with_classifier(config.table_capacity, config.classifier),
            cam: HashMap::new(),
            pipeline: ForwardingPipeline::new(),
            cpu_fifo: VecDeque::new(),
            cpu_busy_until: SimTime::ZERO,
            hw_fifo: VecDeque::new(),
            last_hw_commit: SimTime::ZERO,
            barrier_fifo: VecDeque::new(),
            logical_len: 0,
            next_xid: 1,
            packet_ins: 0,
            flow_mods_accepted: 0,
            flow_mods_rejected: 0,
            config,
        }
    }

    /// The kernel port index of the control channel.
    pub fn control_port(&self) -> usize {
        self.config.n_ports
    }

    /// Total kernel ports this component needs.
    pub fn kernel_ports(&self) -> usize {
        self.config.n_ports + 1
    }

    /// Current hardware-table occupancy.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Frames lost at full output queues so far.
    pub fn output_drops(&self) -> u64 {
        self.pipeline.output_drops
    }

    fn send_control(&mut self, kernel: &mut Kernel, me: ComponentId, msg: Message, xid: u32) {
        let frame = encap_control(&msg, xid);
        let ctrl = self.control_port();
        let _ = kernel.transmit(me, ctrl, frame);
    }

    /// Queue a job on the serial management CPU as of instant `at` (the
    /// triggering frame's arrival). Batched data-path callers pass each
    /// member's own arrival time so CPU occupancy accrues exactly as in
    /// scalar dispatch; scalar callers pass `kernel.now()`.
    fn enqueue_cpu(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        at: SimTime,
        job: CpuJob,
        proc: SimDuration,
    ) {
        let start = at.max(self.cpu_busy_until);
        let done = start + proc;
        self.cpu_busy_until = done;
        self.cpu_fifo.push_back(job);
        kernel.schedule_timer_at(me, done, TAG_CPU);
    }

    fn on_control_frame(&mut self, kernel: &mut Kernel, me: ComponentId, packet: &Packet) {
        let Some(Ok((msg, xid))) = decap_control(packet) else {
            return; // not a control frame / malformed: ignore
        };
        match msg {
            Message::Hello => {
                self.send_control(kernel, me, Message::Hello, xid);
            }
            Message::EchoRequest(data) => {
                let proc = self.config.echo_proc;
                self.enqueue_cpu(kernel, me, kernel.now(), CpuJob::Echo(data, xid), proc);
            }
            Message::FeaturesRequest => {
                let proc = self.config.features_proc;
                self.enqueue_cpu(kernel, me, kernel.now(), CpuJob::Features(xid), proc);
            }
            Message::FlowMod(fm) => {
                let proc = self.config.flowmod_proc;
                self.enqueue_cpu(kernel, me, kernel.now(), CpuJob::FlowMod(fm, xid), proc);
            }
            Message::BarrierRequest => {
                // The barrier itself is cheap; ordering is the point.
                let proc = SimDuration::from_us(1);
                self.enqueue_cpu(kernel, me, kernel.now(), CpuJob::Barrier(xid), proc);
            }
            Message::StatsRequest(StatsBody::FlowRequest { of_match, .. }) => {
                let proc = self.config.stats_proc_base
                    + self
                        .config
                        .stats_proc_per_entry
                        .saturating_mul(self.table.len() as u64);
                self.enqueue_cpu(
                    kernel,
                    me,
                    kernel.now(),
                    CpuJob::StatsFlow(of_match, xid),
                    proc,
                );
            }
            Message::StatsRequest(StatsBody::PortRequest { port_no }) => {
                let proc = self.config.stats_proc_base;
                self.enqueue_cpu(
                    kernel,
                    me,
                    kernel.now(),
                    CpuJob::StatsPort(port_no, xid),
                    proc,
                );
            }
            Message::PacketOut(po) => {
                let proc = self.config.packet_out_proc;
                self.enqueue_cpu(kernel, me, kernel.now(), CpuJob::PacketOut(po), proc);
            }
            // Replies/asynchronous messages are never valid *to* a switch.
            _ => {}
        }
    }

    fn run_cpu_job(&mut self, kernel: &mut Kernel, me: ComponentId) {
        let job = self.cpu_fifo.pop_front().expect("CPU timer without job");
        match job {
            CpuJob::Echo(data, xid) => {
                self.send_control(kernel, me, Message::EchoReply(data), xid);
            }
            CpuJob::Features(xid) => {
                let ports = (1..=self.config.n_ports as u16)
                    .map(|p| PhyPort {
                        port_no: p,
                        hw_addr: MacAddr::local(0x10 + p as u8),
                        name: format!("of{p}"),
                    })
                    .collect();
                let reply = Message::FeaturesReply(FeaturesReply {
                    datapath_id: self.config.datapath_id,
                    n_buffers: 256,
                    n_tables: 1,
                    capabilities: 0x07, // flow stats, table stats, port stats
                    actions: 0x0b,      // output, set_vlan_vid, strip_vlan
                    ports,
                });
                self.send_control(kernel, me, reply, xid);
            }
            CpuJob::FlowMod(fm, xid) => {
                // Table-full is detected by the CPU against its logical
                // view (hardware length + in-flight deltas).
                match fm.command {
                    FlowModCommand::Add => {
                        if self.logical_len >= self.config.table_capacity {
                            self.flow_mods_rejected += 1;
                            self.send_control(
                                kernel,
                                me,
                                Message::Error {
                                    err_type: 3, // OFPET_FLOW_MOD_FAILED
                                    code: 0,     // OFPFMFC_ALL_TABLES_FULL
                                    data: fm.of_match.specificity().to_be_bytes().to_vec(),
                                },
                                xid,
                            );
                            return;
                        }
                        self.logical_len += 1;
                    }
                    FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                        // Deletes free logical space when they land; the
                        // CPU can't know how many rows will match, so it
                        // reconciles at commit time (see below).
                    }
                    _ => {}
                }
                self.flow_mods_accepted += 1;
                let commit_at = kernel.now() + self.config.hw_install_delay;
                self.last_hw_commit = self.last_hw_commit.max(commit_at);
                self.hw_fifo.push_back(HwCommit { flow_mod: fm });
                kernel.schedule_timer_at(me, commit_at, TAG_HW);
            }
            CpuJob::Barrier(xid) => {
                if self.config.honest_barrier {
                    let reply_at = kernel.now().max(self.last_hw_commit);
                    self.barrier_fifo.push_back(xid);
                    kernel.schedule_timer_at(me, reply_at, TAG_BARRIER);
                } else {
                    self.send_control(kernel, me, Message::BarrierReply, xid);
                }
            }
            CpuJob::StatsFlow(filter, xid) => {
                let now = kernel.now();
                let entries: Vec<FlowStatsEntry> = self
                    .table
                    .iter()
                    .filter(|e| crate::flowtable::covers(&filter, &e.of_match))
                    .map(|e| FlowStatsEntry {
                        table_id: 0,
                        of_match: e.of_match,
                        duration_sec: (now - e.installed_at).as_ps() as u32
                            / 1_000_000_000_000u64 as u32,
                        duration_nsec: ((now - e.installed_at).as_ns() % 1_000_000_000) as u32,
                        priority: e.priority,
                        cookie: e.cookie,
                        packet_count: e.packets,
                        byte_count: e.bytes,
                        actions: e.actions.clone(),
                    })
                    .collect();
                self.send_control(
                    kernel,
                    me,
                    Message::StatsReply(StatsBody::FlowReply(entries)),
                    xid,
                );
            }
            CpuJob::StatsPort(which, xid) => {
                let mut entries = Vec::new();
                for p in 0..self.config.n_ports {
                    let wire_no = (p + 1) as u16;
                    if which != 0xffff && which != wire_no {
                        continue;
                    }
                    let c = kernel.counters(me, p);
                    entries.push(PortStats {
                        port_no: wire_no,
                        rx_packets: c.rx_frames,
                        tx_packets: c.tx_frames,
                        rx_bytes: c.rx_bytes,
                        tx_bytes: c.tx_bytes,
                        rx_dropped: 0,
                        tx_dropped: c.tx_drops,
                    });
                }
                self.send_control(
                    kernel,
                    me,
                    Message::StatsReply(StatsBody::PortReply(entries)),
                    xid,
                );
            }
            CpuJob::PacketOut(po) => {
                let pkt = Packet::from_vec(po.data);
                let in_port = po.in_port;
                for a in po.actions.clone() {
                    self.execute_action(kernel, me, kernel.now(), &a, in_port, &pkt);
                }
            }
            CpuJob::Punt {
                in_port,
                reason,
                data,
                total_len,
            } => {
                self.packet_ins += 1;
                let xid = self.next_xid;
                self.next_xid += 1;
                self.send_control(
                    kernel,
                    me,
                    Message::PacketIn(PacketIn {
                        buffer_id: 0xffff_ffff,
                        total_len,
                        in_port,
                        reason,
                        data,
                    }),
                    xid,
                );
            }
        }
    }

    fn commit_hw(&mut self, kernel: &mut Kernel, me: ComponentId) {
        let HwCommit { flow_mod: fm } = self.hw_fifo.pop_front().expect("HW timer without commit");
        let now = kernel.now();
        match fm.command {
            FlowModCommand::Add => {
                let mut e = FlowEntry::new(fm.of_match, fm.priority, fm.actions, now);
                e.cookie = fm.cookie;
                e.flags = fm.flags;
                e.idle_timeout = fm.idle_timeout;
                e.hard_timeout = fm.hard_timeout;
                let before = self.table.len();
                if self.table.add(e).is_err() {
                    // The CPU's logical view raced a concurrent delete the
                    // other way; drop the add on the floor like real
                    // firmware (counted as rejected).
                    self.flow_mods_rejected += 1;
                    self.logical_len = self.table.len();
                } else if self.table.len() == before {
                    // Replaced in place: logical view overcounted.
                    self.logical_len = self.logical_len.saturating_sub(1).max(self.table.len());
                }
            }
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict = fm.command == FlowModCommand::ModifyStrict;
                let n = self
                    .table
                    .modify(&fm.of_match, fm.priority, strict, &fm.actions);
                if n == 0 {
                    // Per OpenFlow 1.0: a modify with no match behaves
                    // like an add.
                    let e = FlowEntry::new(fm.of_match, fm.priority, fm.actions, now);
                    if self.table.add(e).is_ok() {
                        self.logical_len = self.logical_len.max(self.table.len());
                    }
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = fm.command == FlowModCommand::DeleteStrict;
                let removed = self.table.delete(&fm.of_match, fm.priority, strict);
                self.logical_len = self
                    .logical_len
                    .saturating_sub(removed.len())
                    .max(self.table.len());
                for e in removed {
                    if e.flags & 1 != 0 {
                        self.send_flow_removed(kernel, me, &e, RemovalReason::Delete);
                    }
                }
            }
        }
    }

    fn send_flow_removed(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        e: &FlowEntry,
        reason: RemovalReason,
    ) {
        let now = kernel.now();
        let dur = now - e.installed_at;
        let xid = self.next_xid;
        self.next_xid += 1;
        self.send_control(
            kernel,
            me,
            Message::FlowRemoved(FlowRemoved {
                of_match: e.of_match,
                cookie: e.cookie,
                priority: e.priority,
                reason: reason.code(),
                duration_sec: (dur.as_ps() / 1_000_000_000_000) as u32,
                duration_nsec: (dur.as_ns() % 1_000_000_000) as u32,
                packet_count: e.packets,
                byte_count: e.bytes,
            }),
            xid,
        );
    }

    /// The full dataplane lookup delay for the current table state:
    /// fixed fabric latency plus the per-unit charge for the active
    /// classifier's work ([`FlowTable::lookup_cost_units`] — rules
    /// scanned linear, tuples probed tuple-space). A pure function of
    /// config and table contents, so scalar and batched dispatch of the
    /// same arrivals charge identically.
    pub fn lookup_delay(&self) -> SimDuration {
        self.config.lookup_latency
            + self
                .config
                .lookup_per_unit
                .saturating_mul(self.table.lookup_cost_units() as u64)
    }

    /// Execute one action for a frame that arrived at `at`. Fabric
    /// submissions and punts are anchored at `at`, so batched members
    /// behave exactly as if each had been dispatched at its own arrival
    /// instant; scalar callers pass `kernel.now()`.
    fn execute_action(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        at: SimTime,
        action: &Action,
        in_port_wire: u16,
        packet: &Packet,
    ) {
        let release_at = at + self.lookup_delay();
        match action {
            Action::Output { port, .. } => match *port {
                port_no::CONTROLLER => {
                    self.punt(kernel, me, at, in_port_wire, PacketInReason::Action, packet);
                }
                port_no::FLOOD | port_no::ALL => {
                    let ingress = in_port_wire as usize;
                    for p in 1..=self.config.n_ports {
                        if p != ingress {
                            self.pipeline
                                .submit_at(kernel, me, release_at, p - 1, packet.clone());
                        }
                    }
                }
                port_no::NORMAL => {
                    self.forward_normal(kernel, me, at, in_port_wire, packet);
                }
                wire_port => {
                    let idx = wire_port as usize;
                    if idx >= 1 && idx <= self.config.n_ports {
                        self.pipeline
                            .submit_at(kernel, me, release_at, idx - 1, packet.clone());
                    }
                }
            },
            Action::SetVlanVid(vid) => {
                // VLAN mutation then continue: in this model mutations
                // are applied inline by rebuilding the frame; the
                // mutated frame replaces `packet` for *subsequent*
                // actions, which the caller handles by pre-applying
                // mutations (see forward_with_actions).
                let _ = vid;
            }
            Action::StripVlan => {}
        }
    }

    fn forward_with_actions(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        at: SimTime,
        actions: &[Action],
        in_port_wire: u16,
        packet: Packet,
    ) {
        // Apply header rewrites first (they precede outputs in practice),
        // then execute outputs on the rewritten frame.
        let mut frame = packet;
        for a in actions {
            match a {
                Action::SetVlanVid(vid) => frame = set_vlan_vid(frame, *vid),
                Action::StripVlan => frame = strip_vlan(frame),
                Action::Output { .. } => {}
            }
        }
        for a in actions {
            if matches!(a, Action::Output { .. }) {
                self.execute_action(kernel, me, at, a, in_port_wire, &frame);
            }
        }
    }

    fn forward_normal(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        at: SimTime,
        in_port_wire: u16,
        packet: &Packet,
    ) {
        let release_at = at + self.lookup_delay();
        let parsed = packet.parse();
        let Some(dst) = parsed.dst_mac() else { return };
        match self.cam.get(&dst) {
            Some(&out) if dst.is_unicast() => {
                if out + 1 != in_port_wire as usize {
                    self.pipeline
                        .submit_at(kernel, me, release_at, out, packet.clone());
                }
            }
            _ => {
                for p in 1..=self.config.n_ports {
                    if p != in_port_wire as usize {
                        self.pipeline
                            .submit_at(kernel, me, release_at, p - 1, packet.clone());
                    }
                }
            }
        }
    }

    fn punt(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        at: SimTime,
        in_port_wire: u16,
        reason: PacketInReason,
        packet: &Packet,
    ) {
        let keep = packet.len().min(self.config.miss_send_len);
        let job = CpuJob::Punt {
            in_port: in_port_wire,
            reason,
            data: packet.data()[..keep].to_vec(),
            total_len: packet.frame_len() as u16,
        };
        let proc = self.config.packet_in_proc;
        self.enqueue_cpu(kernel, me, at, job, proc);
    }

    /// The dataplane path for one frame that arrived on data port
    /// `port` at instant `at`: CAM learn, table lookup, forward or
    /// punt. Used by scalar dispatch (`at == kernel.now()`) and by the
    /// non-block batch fallback.
    fn data_frame_at(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        at: SimTime,
        port: usize,
        packet: Packet,
    ) {
        let in_port_wire = (port + 1) as u16;
        let parsed = packet.parse();
        if let Some(src) = parsed.src_mac() {
            if src.is_unicast() {
                self.cam.insert(src, port);
            }
        }
        let frame_len = packet.frame_len();
        let idx = if self.config.compiled_lookup {
            self.table
                .lookup_key_idx(in_port_wire, &FlowKey::extract(&parsed))
        } else {
            self.table.lookup_idx(in_port_wire, &parsed)
        };
        match idx {
            Some(i) => {
                let entry = self.table.entry_mut(i);
                FlowTable::account(entry, at, frame_len);
                let actions = entry.actions.clone();
                self.forward_with_actions(kernel, me, at, &actions, in_port_wire, packet);
            }
            None => {
                self.punt(
                    kernel,
                    me,
                    at,
                    in_port_wire,
                    PacketInReason::NoMatch,
                    &packet,
                );
            }
        }
    }

    /// Forward one block's worth of staged arrivals: one classification
    /// sweep for the whole block, then each member's forwarding at its
    /// own arrival instant, in arrival order.
    fn flush_block(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        in_port_wire: u16,
        block: &FlowKeyBlock,
        staged: &mut Vec<(SimTime, Packet, FlowKey)>,
    ) {
        let verdicts = self.table.lookup_block_idx(in_port_wire, block);
        for (lane, (at, packet, key)) in staged.drain(..).enumerate() {
            // CAM learning stays in member order — a later member's
            // NORMAL forwarding may depend on this member's learn. The
            // lookup itself is learn-independent, so classifying the
            // block before learning is exact.
            if let Some(src) = key.src_mac() {
                if src.is_unicast() {
                    self.cam.insert(src, (in_port_wire - 1) as usize);
                }
            }
            match verdicts[lane] {
                Some(i) => {
                    let entry = self.table.entry_mut(i);
                    FlowTable::account(entry, at, packet.frame_len());
                    let actions = entry.actions.clone();
                    self.forward_with_actions(kernel, me, at, &actions, in_port_wire, packet);
                }
                None => {
                    self.punt(
                        kernel,
                        me,
                        at,
                        in_port_wire,
                        PacketInReason::NoMatch,
                        &packet,
                    );
                }
            }
        }
    }
}

/// Rewrite (or insert) the 802.1Q tag of a frame.
fn set_vlan_vid(packet: Packet, vid: u16) -> Packet {
    let mut data = packet.into_vec();
    if data.len() >= 14 {
        let ethertype = u16::from_be_bytes([data[12], data[13]]);
        if ethertype == 0x8100 {
            // Rewrite the vid bits in the existing TCI.
            let tci = u16::from_be_bytes([data[14], data[15]]);
            let new = (tci & 0xf000) | (vid & 0x0fff);
            data[14..16].copy_from_slice(&new.to_be_bytes());
        } else {
            // Insert a tag after the MAC addresses.
            let mut tag = Vec::with_capacity(4);
            tag.extend_from_slice(&0x8100u16.to_be_bytes());
            tag.extend_from_slice(&(vid & 0x0fff).to_be_bytes());
            // tag currently holds TPID + TCI; splice TPID at 12 and keep
            // the original ethertype after the TCI.
            data.splice(12..12, tag);
        }
    }
    Packet::from_vec(data)
}

/// Remove a frame's 802.1Q tag if present.
fn strip_vlan(packet: Packet) -> Packet {
    let mut data = packet.into_vec();
    if data.len() >= 18 {
        let ethertype = u16::from_be_bytes([data[12], data[13]]);
        if ethertype == 0x8100 {
            data.drain(12..16);
        }
    }
    Packet::from_vec(data)
}

impl Component for OpenFlowSwitch {
    fn on_start(&mut self, kernel: &mut Kernel, me: ComponentId) {
        for p in 0..self.config.n_ports {
            kernel.set_tx_buffer(me, p, Some(self.config.output_buffer_bytes));
        }
        kernel.schedule_timer(me, SimDuration::from_ms(100), TAG_EXPIRE);
    }

    fn on_packet(&mut self, kernel: &mut Kernel, me: ComponentId, port: usize, packet: Packet) {
        if port == self.control_port() {
            self.on_control_frame(kernel, me, &packet);
            return;
        }
        self.data_frame_at(kernel, me, kernel.now(), port, packet);
    }

    fn wants_packet_batches(&self) -> bool {
        self.config.batch
    }

    fn wants_packet_batches_on(&self, port: usize) -> bool {
        // The control channel stays scalar: its handler sends immediate
        // Hello replies, which need per-frame `now`.
        self.config.batch && port != self.control_port()
    }

    fn batch_window(&self) -> Option<SimDuration> {
        // Everything the data path schedules is at least this far after
        // the triggering arrival: fabric submissions release at
        // `lookup_delay()` (≥ `lookup_latency` — the per-unit charge
        // only adds), punts occupy the CPU for `packet_in_proc`.
        // Capping coalescing at this window keeps batch dispatch
        // byte-identical to scalar (see `Component::batch_window`).
        Some(self.config.lookup_latency.min(self.config.packet_in_proc))
    }

    fn on_packet_batch(
        &mut self,
        kernel: &mut Kernel,
        me: ComponentId,
        port: usize,
        batch: &mut Vec<(SimTime, Packet)>,
    ) {
        debug_assert_ne!(port, self.control_port());
        if !self.config.compiled_lookup {
            for (t, packet) in batch.drain(..) {
                self.data_frame_at(kernel, me, t, port, packet);
            }
            return;
        }
        // Block path: stage up to a block's worth of arrivals, classify
        // them against the whole table in one masked-word sweep per row,
        // then forward each at its own arrival instant.
        let in_port_wire = (port + 1) as u16;
        let mut block = FlowKeyBlock::new();
        let mut staged: Vec<(SimTime, Packet, FlowKey)> = Vec::with_capacity(batch.len());
        for (t, packet) in batch.drain(..) {
            let key = FlowKey::extract(&packet.parse());
            block.push(&key);
            staged.push((t, packet, key));
            if block.is_full() {
                self.flush_block(kernel, me, in_port_wire, &block, &mut staged);
                block.clear();
            }
        }
        if !staged.is_empty() {
            self.flush_block(kernel, me, in_port_wire, &block, &mut staged);
        }
    }

    fn on_timer(&mut self, kernel: &mut Kernel, me: ComponentId, tag: u64) {
        match tag {
            TIMER_FORWARD => self.pipeline.on_timer(kernel, me),
            TAG_CPU => self.run_cpu_job(kernel, me),
            TAG_HW => self.commit_hw(kernel, me),
            TAG_BARRIER => {
                let xid = self.barrier_fifo.pop_front().expect("barrier timer");
                self.send_control(kernel, me, Message::BarrierReply, xid);
            }
            TAG_EXPIRE => {
                let expired = self.table.expire(kernel.now());
                self.logical_len = self.table.len();
                for (e, reason) in expired {
                    if e.flags & 1 != 0 {
                        self.send_flow_removed(kernel, me, &e, reason);
                    }
                }
                kernel.schedule_timer(me, SimDuration::from_ms(100), TAG_EXPIRE);
            }
            other => panic!("unknown timer tag {other}"),
        }
    }

    fn name(&self) -> &str {
        "openflow-switch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlan_set_on_untagged_inserts_tag() {
        let pkt = Packet::from_vec(vec![
            1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 0x08, 0x00, 0x45, 0, 0, 0,
        ]);
        let tagged = set_vlan_vid(pkt, 42);
        let d = tagged.data();
        assert_eq!(u16::from_be_bytes([d[12], d[13]]), 0x8100);
        assert_eq!(u16::from_be_bytes([d[14], d[15]]) & 0x0fff, 42);
        assert_eq!(u16::from_be_bytes([d[16], d[17]]), 0x0800);
    }

    #[test]
    fn vlan_set_on_tagged_rewrites_vid() {
        let pkt = Packet::from_vec(vec![
            1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 0x81, 0x00, 0xa0, 0x07, 0x08, 0x00, 0x45, 0,
        ]);
        let out = set_vlan_vid(pkt, 99);
        let d = out.data();
        let tci = u16::from_be_bytes([d[14], d[15]]);
        assert_eq!(tci & 0x0fff, 99);
        assert_eq!(tci & 0xf000, 0xa000, "pcp/dei preserved");
        assert_eq!(d.len(), 20, "no growth");
    }

    #[test]
    fn strip_vlan_removes_tag() {
        let pkt = Packet::from_vec(vec![
            1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 0x81, 0x00, 0x00, 0x07, 0x08, 0x00, 0x45, 0,
        ]);
        let out = strip_vlan(pkt);
        let d = out.data();
        assert_eq!(u16::from_be_bytes([d[12], d[13]]), 0x0800);
        assert_eq!(d.len(), 16);
        // Stripping an untagged frame is a no-op.
        let out2 = strip_vlan(out.clone());
        assert_eq!(out2, out);
    }

    #[test]
    fn lookup_delay_tracks_the_classifier() {
        use osnt_openflow::OfMatch;
        let base = SimDuration::from_ns(900);
        let per_unit = SimDuration::from_ns(10);
        for (classifier, want_units) in [(Classifier::Linear, 32u64), (Classifier::TupleSpace, 2)] {
            let mut sw = OpenFlowSwitch::new(OfSwitchConfig {
                lookup_per_unit: per_unit,
                classifier,
                table_capacity: 64,
                ..OfSwitchConfig::default()
            });
            // 32 rules over 2 distinct wildcard masks: the linear
            // engine charges per rule, the tuple engine per mask.
            for p in 0..16u16 {
                sw.table
                    .add(FlowEntry::new(
                        OfMatch::udp_dst_port(p),
                        5,
                        vec![],
                        SimTime::ZERO,
                    ))
                    .unwrap();
                sw.table
                    .add(FlowEntry::new(
                        OfMatch::ipv4_dst(std::net::Ipv4Addr::new(10, 0, 0, p as u8)),
                        5,
                        vec![],
                        SimTime::ZERO,
                    ))
                    .unwrap();
            }
            assert_eq!(
                sw.lookup_delay(),
                base + per_unit.saturating_mul(want_units)
            );
        }
    }

    #[test]
    fn default_per_unit_charge_is_zero() {
        // The seed model (flat lookup latency) must survive the cost
        // model unchanged unless a config opts in.
        let sw = OpenFlowSwitch::new(OfSwitchConfig::default());
        assert_eq!(sw.lookup_delay(), sw.config.lookup_latency);
    }

    // Full switch behaviour (control channel, barriers, install delay,
    // packet_in) is exercised end-to-end from the oflops-turbo crate and
    // the workspace integration tests.
}
