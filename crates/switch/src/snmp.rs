//! SNMP-style counter polling.
//!
//! OFLOPS measurement modules "access information from multiple
//! measurement channels (data and control plane and SNMP)". In OSNT-rs
//! the SNMP channel is a poll of interface counters — the same
//! frame/byte/drop counters the kernel keeps per port — packaged like
//! `ifTable` rows. Polls are modelled as instantaneous management reads;
//! the interesting SNMP property OFLOPS relies on (coarse, delayed, but
//! ground-truth-ish counters) is preserved.

use osnt_netsim::{ComponentId, Kernel, PortCounters};

/// One `ifTable`-style row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfRow {
    /// Interface index (port number).
    pub if_index: usize,
    /// `ifInUcastPkts`.
    pub in_packets: u64,
    /// `ifInOctets`.
    pub in_octets: u64,
    /// `ifOutUcastPkts`.
    pub out_packets: u64,
    /// `ifOutOctets`.
    pub out_octets: u64,
    /// `ifOutDiscards`.
    pub out_discards: u64,
}

impl IfRow {
    /// Build a row from kernel counters.
    pub fn from_counters(if_index: usize, c: PortCounters) -> Self {
        IfRow {
            if_index,
            in_packets: c.rx_frames,
            in_octets: c.rx_bytes,
            out_packets: c.tx_frames,
            out_octets: c.tx_bytes,
            out_discards: c.tx_drops,
        }
    }
}

/// Poll every port of a device, like an `ifTable` walk.
pub fn walk_if_table(kernel: &Kernel, device: ComponentId, n_ports: usize) -> Vec<IfRow> {
    (0..n_ports)
        .map(|p| IfRow::from_counters(p, kernel.counters(device, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_maps_counters() {
        let c = PortCounters {
            tx_frames: 5,
            tx_bytes: 320,
            tx_drops: 1,
            rx_frames: 7,
            rx_bytes: 448,
        };
        let row = IfRow::from_counters(3, c);
        assert_eq!(row.if_index, 3);
        assert_eq!(row.in_packets, 7);
        assert_eq!(row.out_packets, 5);
        assert_eq!(row.out_discards, 1);
    }
}
