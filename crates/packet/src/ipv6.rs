//! IPv6 headers (RFC 8200). Extension headers are not modelled — the OSNT
//! hardware filter datapath matches on the fixed header only.

use crate::parser::ParseError;
use core::net::Ipv6Addr;

/// Length of the fixed IPv6 header.
pub const HEADER_LEN: usize = 40;

/// An IPv6 fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Payload length (bytes after this header).
    pub payload_len: u16,
    /// Next header (same numbering as the IPv4 protocol field).
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Sensible defaults for a generated packet.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload_len: usize) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: payload_len as u16,
            next_header,
            hop_limit: 64,
            src,
            dst,
        }
    }

    /// Parse from the start of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "ipv6",
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[0] >> 4 != 6 {
            return Err(ParseError::Unsupported {
                layer: "ipv6",
                what: "version field is not 6",
            });
        }
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&bytes[8..24]);
        dst.copy_from_slice(&bytes[24..40]);
        Ok(Ipv6Header {
            traffic_class: ((bytes[0] & 0x0f) << 4) | (bytes[1] >> 4),
            flow_label: (((bytes[1] & 0x0f) as u32) << 16)
                | ((bytes[2] as u32) << 8)
                | bytes[3] as u32,
            payload_len: u16::from_be_bytes([bytes[4], bytes[5]]),
            next_header: bytes[6],
            hop_limit: bytes[7],
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
        })
    }

    /// Append the serialised header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        debug_assert!(self.flow_label < (1 << 20), "flow label is 20 bits");
        out.push(0x60 | (self.traffic_class >> 4));
        out.push(((self.traffic_class & 0x0f) << 4) | ((self.flow_label >> 16) as u8 & 0x0f));
        out.push((self.flow_label >> 8) as u8);
        out.push(self.flow_label as u8);
        out.extend_from_slice(&self.payload_len.to_be_bytes());
        out.push(self.next_header);
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        Ipv6Header {
            traffic_class: 0xa5,
            flow_label: 0xfedcb,
            payload_len: 512,
            next_header: 17,
            hop_limit: 64,
            src: Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1),
            dst: Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 2),
        }
    }

    #[test]
    fn round_trip_all_fields() {
        let h = sample();
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(Ipv6Header::parse(&buf).unwrap(), h);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf);
        buf[0] = 0x45;
        assert!(Ipv6Header::parse(&buf).is_err());
    }

    #[test]
    fn truncated() {
        assert!(Ipv6Header::parse(&[0x60; 39]).is_err());
    }
}
