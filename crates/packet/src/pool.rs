//! Recycling packet-buffer pool — the zero-copy allocation substrate of
//! the fast path.
//!
//! MoonGen-style line-rate generators live and die by two properties the
//! naive representation lacks: **no per-frame heap allocation** and **no
//! per-frame copy on fan-out**. [`crate::Packet`] provides the second
//! (cheap reference-counted clones with copy-on-write); this module
//! provides the first: a [`PacketPool`] keeps retired frame buffers on a
//! free list and hands them back out, so a steady-state generate →
//! deliver → drop cycle touches the allocator zero times per frame.
//!
//! The pool is deliberately single-threaded (`Rc`, like the simulator
//! itself) and attaches to buffers by a weak back-reference: a buffer
//! whose pool has been dropped simply frees normally, and the pool never
//! keeps packets alive.

use crate::Packet;
use std::cell::{Cell, RefCell};
use std::rc::{Rc, Weak};

/// Default cap on buffers parked on the free list. Beyond this, retired
/// buffers are released to the allocator instead (bounds worst-case
/// memory when a burst of frames dies at once).
pub const DEFAULT_MAX_FREE: usize = 4096;

/// Counters describing pool effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created fresh from the allocator.
    pub fresh_allocs: u64,
    /// Buffers served from the free list (allocation avoided).
    pub reuses: u64,
    /// Buffers returned to the free list at packet death.
    pub recycled: u64,
    /// Buffers dropped at packet death because the free list was full.
    pub discarded: u64,
}

pub(crate) struct PoolInner {
    free: RefCell<Vec<Vec<u8>>>,
    max_free: usize,
    fresh_allocs: Cell<u64>,
    reuses: Cell<u64>,
    recycled: Cell<u64>,
    discarded: Cell<u64>,
}

impl PoolInner {
    /// Take a buffer from the free list, or allocate one.
    pub(crate) fn take_buf(&self, capacity_hint: usize) -> Vec<u8> {
        match self.free.borrow_mut().pop() {
            Some(mut v) => {
                self.reuses.set(self.reuses.get() + 1);
                v.clear();
                v
            }
            None => {
                self.fresh_allocs.set(self.fresh_allocs.get() + 1);
                Vec::with_capacity(capacity_hint)
            }
        }
    }

    /// Park a retired buffer for reuse. Zero-capacity buffers (stolen by
    /// `into_vec`) carry no storage and are not worth keeping.
    pub(crate) fn recycle(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.borrow_mut();
        if free.len() < self.max_free {
            self.recycled.set(self.recycled.get() + 1);
            free.push(buf);
        } else {
            self.discarded.set(self.discarded.get() + 1);
        }
    }
}

/// The shared storage behind a [`Packet`]: the frame bytes plus a weak
/// back-reference to the pool the buffer should return to when the last
/// `Rc` owner drops. Packets over an unpooled buffer carry a dangling
/// `Weak` (from `Weak::new()`, allocation-free) and free normally.
pub(crate) struct PoolBuf {
    pub(crate) data: Vec<u8>,
    pub(crate) home: Weak<PoolInner>,
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.home.upgrade() {
            pool.recycle(std::mem::take(&mut self.data));
        }
    }
}

/// A single-threaded recycling buffer pool for [`Packet`]s.
///
/// Cloning the pool handle is cheap and shares the same free list, so a
/// generator, the components its frames traverse, and the harness can
/// all hold one.
///
/// ```
/// use osnt_packet::pool::PacketPool;
///
/// let pool = PacketPool::new();
/// let a = pool.zeroed(64);
/// let b = a.clone();          // refcount bump, no copy
/// drop(a);
/// drop(b);                    // last owner: buffer parks on the free list
/// let c = pool.zeroed(1518);  // served from the free list
/// assert_eq!(pool.stats().recycled, 1);
/// assert_eq!(pool.stats().reuses, 1);
/// assert_eq!(c.frame_len(), 1518);
/// ```
#[derive(Clone)]
pub struct PacketPool {
    inner: Rc<PoolInner>,
}

impl PacketPool {
    /// A pool with the default free-list cap.
    pub fn new() -> Self {
        PacketPool::with_max_free(DEFAULT_MAX_FREE)
    }

    /// A pool keeping at most `max_free` retired buffers.
    pub fn with_max_free(max_free: usize) -> Self {
        PacketPool {
            inner: Rc::new(PoolInner {
                free: RefCell::new(Vec::new()),
                max_free,
                fresh_allocs: Cell::new(0),
                reuses: Cell::new(0),
                recycled: Cell::new(0),
                discarded: Cell::new(0),
            }),
        }
    }

    pub(crate) fn handle(&self) -> Weak<PoolInner> {
        Rc::downgrade(&self.inner)
    }

    /// A pooled all-zero frame of conventional length `frame_len`
    /// (including FCS), like [`Packet::zeroed`].
    pub fn zeroed(&self, frame_len: usize) -> Packet {
        assert!(frame_len >= crate::ethernet::HEADER_LEN + crate::FCS_LEN);
        let store = frame_len - crate::FCS_LEN;
        let mut buf = self.inner.take_buf(store);
        buf.resize(store, 0);
        Packet::from_pool_parts(buf, self.handle())
    }

    /// A pooled copy of `bytes` (L2 header .. payload, no FCS).
    pub fn from_slice(&self, bytes: &[u8]) -> Packet {
        let mut buf = self.inner.take_buf(bytes.len());
        buf.extend_from_slice(bytes);
        Packet::from_pool_parts(buf, self.handle())
    }

    /// Rehome `packet`'s bytes into this pool, so the returned packet —
    /// and every copy-on-write descendant of it — recycles through the
    /// free list. Copies once.
    pub fn adopt(&self, packet: &Packet) -> Packet {
        self.from_slice(packet.data())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh_allocs: self.inner.fresh_allocs.get(),
            reuses: self.inner.reuses.get(),
            recycled: self.inner.recycled.get(),
            discarded: self.inner.discarded.get(),
        }
    }

    /// Buffers currently parked on the free list.
    pub fn free_buffers(&self) -> usize {
        self.inner.free.borrow().len()
    }
}

impl Default for PacketPool {
    fn default() -> Self {
        PacketPool::new()
    }
}

impl std::fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketPool")
            .field("free_buffers", &self.free_buffers())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_cycle_stops_allocating() {
        let pool = PacketPool::new();
        // Prime: one fresh alloc.
        drop(pool.zeroed(1518));
        let before = pool.stats().fresh_allocs;
        for _ in 0..1000 {
            let p = pool.zeroed(1518);
            assert_eq!(p.frame_len(), 1518);
            drop(p);
        }
        let s = pool.stats();
        assert_eq!(s.fresh_allocs, before, "steady state must not allocate");
        assert!(s.reuses >= 1000);
    }

    #[test]
    fn shared_buffer_recycles_only_after_last_owner() {
        let pool = PacketPool::new();
        let a = pool.from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]);
        let b = a.clone();
        drop(a);
        assert_eq!(pool.free_buffers(), 0, "still referenced by b");
        drop(b);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = PacketPool::with_max_free(2);
        let packets: Vec<_> = (0..5).map(|_| pool.zeroed(64)).collect();
        drop(packets);
        assert_eq!(pool.free_buffers(), 2);
        assert_eq!(pool.stats().discarded, 3);
    }

    #[test]
    fn pool_death_leaves_packets_usable() {
        let pool = PacketPool::new();
        let p = pool.zeroed(64);
        drop(pool);
        assert_eq!(p.frame_len(), 64);
        let q = p.clone();
        assert_eq!(q, p);
        drop(p);
        drop(q); // buffer frees normally, no pool to return to
    }

    #[test]
    fn adopt_copies_content() {
        let pool = PacketPool::new();
        let orig = Packet::from_vec(vec![9u8; 100]);
        let adopted = pool.adopt(&orig);
        assert_eq!(adopted, orig);
        drop(adopted);
        assert_eq!(pool.free_buffers(), 1);
    }
}
