//! Wildcard packet-match rules.
//!
//! OSNT's monitoring path implements "wildcard-enabled packet filters" in
//! hardware: each rule names a subset of header fields, every unnamed
//! field is a wildcard, and a packet matches if all named fields agree.
//! The same structure (with priorities added by the consumer) backs the
//! OpenFlow switch model's flow table.

use crate::mac::MacAddr;
use crate::parser::ParsedPacket;
use core::fmt;
use core::net::IpAddr;

/// An IP prefix (address + prefix length) for longest-prefix-style
/// wildcard matching of addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpPrefix {
    /// Base address.
    pub addr: IpAddr,
    /// Number of leading significant bits.
    pub prefix_len: u8,
}

impl IpPrefix {
    /// A host (exact) prefix.
    pub fn host(addr: IpAddr) -> Self {
        let prefix_len = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        IpPrefix { addr, prefix_len }
    }

    /// A prefix of the given length. Panics if `prefix_len` exceeds the
    /// address width.
    pub fn new(addr: IpAddr, prefix_len: u8) -> Self {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        assert!(prefix_len <= max, "prefix length {prefix_len} > {max}");
        IpPrefix { addr, prefix_len }
    }

    /// Whether `addr` falls inside this prefix. Addresses of the other
    /// family never match.
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self.addr, addr) {
            (IpAddr::V4(base), IpAddr::V4(a)) => {
                let bits = u32::from(base) ^ u32::from(a);
                self.prefix_len == 0 || bits >> (32 - self.prefix_len.min(32) as u32) == 0
            }
            (IpAddr::V6(base), IpAddr::V6(a)) => {
                let bits = u128::from(base) ^ u128::from(a);
                self.prefix_len == 0 || bits >> (128 - self.prefix_len.min(128) as u32) == 0
            }
            _ => false,
        }
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

/// A wildcard match rule: `None` fields match anything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WildcardRule {
    /// Match the source MAC exactly.
    pub src_mac: Option<MacAddr>,
    /// Match the destination MAC exactly.
    pub dst_mac: Option<MacAddr>,
    /// Match the effective (post-VLAN) EtherType.
    pub ethertype: Option<u16>,
    /// Match the VLAN id; `Some(None)` would be meaningless, so this
    /// matches only tagged packets with the given vid.
    pub vlan: Option<u16>,
    /// Match the source IP against a prefix.
    pub src_ip: Option<IpPrefix>,
    /// Match the destination IP against a prefix.
    pub dst_ip: Option<IpPrefix>,
    /// Match the IP protocol / next header.
    pub ip_protocol: Option<u8>,
    /// Match the transport source port exactly.
    pub src_port: Option<u16>,
    /// Match the transport destination port exactly.
    pub dst_port: Option<u16>,
}

impl WildcardRule {
    /// The all-wildcard rule (matches every packet).
    pub fn any() -> Self {
        WildcardRule::default()
    }

    /// Require the source MAC.
    pub fn with_src_mac(mut self, m: MacAddr) -> Self {
        self.src_mac = Some(m);
        self
    }
    /// Require the destination MAC.
    pub fn with_dst_mac(mut self, m: MacAddr) -> Self {
        self.dst_mac = Some(m);
        self
    }
    /// Require the effective EtherType.
    pub fn with_ethertype(mut self, t: u16) -> Self {
        self.ethertype = Some(t);
        self
    }
    /// Require a VLAN tag with this vid.
    pub fn with_vlan(mut self, vid: u16) -> Self {
        self.vlan = Some(vid);
        self
    }
    /// Require the source IP to fall in `p`.
    pub fn with_src_ip(mut self, p: IpPrefix) -> Self {
        self.src_ip = Some(p);
        self
    }
    /// Require the destination IP to fall in `p`.
    pub fn with_dst_ip(mut self, p: IpPrefix) -> Self {
        self.dst_ip = Some(p);
        self
    }
    /// Require the IP protocol.
    pub fn with_ip_protocol(mut self, p: u8) -> Self {
        self.ip_protocol = Some(p);
        self
    }
    /// Require the transport source port.
    pub fn with_src_port(mut self, p: u16) -> Self {
        self.src_port = Some(p);
        self
    }
    /// Require the transport destination port.
    pub fn with_dst_port(mut self, p: u16) -> Self {
        self.dst_port = Some(p);
        self
    }

    /// Number of named (non-wildcard) fields — a natural priority for
    /// most-specific-first ordering.
    pub fn specificity(&self) -> u32 {
        self.src_mac.is_some() as u32
            + self.dst_mac.is_some() as u32
            + self.ethertype.is_some() as u32
            + self.vlan.is_some() as u32
            + self.src_ip.is_some() as u32
            + self.dst_ip.is_some() as u32
            + self.ip_protocol.is_some() as u32
            + self.src_port.is_some() as u32
            + self.dst_port.is_some() as u32
    }

    /// Whether the parsed packet satisfies every named field.
    pub fn matches(&self, p: &ParsedPacket<'_>) -> bool {
        if let Some(m) = self.src_mac {
            if p.src_mac() != Some(m) {
                return false;
            }
        }
        if let Some(m) = self.dst_mac {
            if p.dst_mac() != Some(m) {
                return false;
            }
        }
        if let Some(t) = self.ethertype {
            if p.effective_ethertype() != Some(t) {
                return false;
            }
        }
        if let Some(vid) = self.vlan {
            if p.vlan.map(|v| v.vid) != Some(vid) {
                return false;
            }
        }
        if let Some(prefix) = self.src_ip {
            match p.src_ip() {
                Some(ip) if prefix.contains(ip) => {}
                _ => return false,
            }
        }
        if let Some(prefix) = self.dst_ip {
            match p.dst_ip() {
                Some(ip) if prefix.contains(ip) => {}
                _ => return false,
            }
        }
        if let Some(proto) = self.ip_protocol {
            if p.ip_protocol() != Some(proto) {
                return false;
            }
        }
        if let Some(port) = self.src_port {
            if p.l4.map(|l| l.src_port) != Some(port) {
                return false;
            }
        }
        if let Some(port) = self.dst_port {
            if p.l4.map(|l| l.dst_port) != Some(port) {
                return false;
            }
        }
        true
    }

    /// Convenience: match against raw frame bytes.
    pub fn matches_bytes(&self, bytes: &[u8]) -> bool {
        self.matches(&ParsedPacket::parse(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ipv4::protocol;
    use core::net::Ipv4Addr;

    fn frame(src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16) -> crate::Packet {
        PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(src, dst)
            .udp(sp, dp)
            .build()
    }

    #[test]
    fn any_matches_everything() {
        let p = frame(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 1, 2);
        assert!(WildcardRule::any().matches(&p.parse()));
        assert!(WildcardRule::any().matches_bytes(&[0u8; 3]));
    }

    #[test]
    fn exact_five_tuple_rule() {
        let p = frame(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            9000,
        );
        let rule = WildcardRule::any()
            .with_src_ip(IpPrefix::host(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1))))
            .with_dst_ip(IpPrefix::host(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2))))
            .with_ip_protocol(protocol::UDP)
            .with_src_port(5000)
            .with_dst_port(9000);
        assert!(rule.matches(&p.parse()));
        let other = frame(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            9001,
        );
        assert!(!rule.matches(&other.parse()));
    }

    #[test]
    fn prefix_matching() {
        let rule = WildcardRule::any()
            .with_dst_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::new(192, 168, 0, 0)), 16));
        let inside = frame(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(192, 168, 77, 3),
            1,
            2,
        );
        let outside = frame(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(192, 169, 0, 1),
            1,
            2,
        );
        assert!(rule.matches(&inside.parse()));
        assert!(!rule.matches(&outside.parse()));
    }

    #[test]
    fn zero_length_prefix_matches_family() {
        let p = IpPrefix::new(IpAddr::V4(Ipv4Addr::UNSPECIFIED), 0);
        assert!(p.contains(IpAddr::V4(Ipv4Addr::new(8, 8, 8, 8))));
        assert!(!p.contains("::1".parse().unwrap()));
    }

    #[test]
    fn mac_and_ethertype_fields() {
        let p = frame(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 1, 2);
        let good = WildcardRule::any()
            .with_src_mac(MacAddr::local(1))
            .with_ethertype(crate::ethernet::ethertype::IPV4);
        let bad = WildcardRule::any().with_src_mac(MacAddr::local(9));
        assert!(good.matches(&p.parse()));
        assert!(!bad.matches(&p.parse()));
    }

    #[test]
    fn vlan_rule_requires_tag() {
        let untagged = frame(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 1, 2);
        let tagged = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .vlan(7)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(1, 2)
            .build();
        let rule = WildcardRule::any().with_vlan(7);
        assert!(!rule.matches(&untagged.parse()));
        assert!(rule.matches(&tagged.parse()));
    }

    #[test]
    fn specificity_counts_fields() {
        assert_eq!(WildcardRule::any().specificity(), 0);
        let r = WildcardRule::any().with_src_port(1).with_dst_port(2);
        assert_eq!(r.specificity(), 2);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn bad_prefix_len_panics() {
        let _ = IpPrefix::new(IpAddr::V4(Ipv4Addr::UNSPECIFIED), 33);
    }
}
