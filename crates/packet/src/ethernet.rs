//! Ethernet II framing.

use crate::mac::MacAddr;
use crate::parser::ParseError;

/// Length of an untagged Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// Well-known EtherType values used throughout OSNT-rs.
pub mod ethertype {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// IEEE 802.1Q VLAN tag.
    pub const VLAN: u16 = 0x8100;
    /// IPv6.
    pub const IPV6: u16 = 0x86DD;
    /// Experimental/local EtherType used by OSNT probe frames that carry
    /// only an embedded timestamp (no IP payload).
    pub const OSNT_PROBE: u16 = 0x88B5; // IEEE 802 local experimental 1
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination station.
    pub dst: MacAddr,
    /// Source station.
    pub src: MacAddr,
    /// EtherType of the payload (possibly [`ethertype::VLAN`]).
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Parse from the start of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "ethernet",
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&bytes[0..6]);
        src.copy_from_slice(&bytes[6..12]);
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([bytes[12], bytes[13]]),
        })
    }

    /// Append the serialised header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.ethertype.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: ethertype::IPV4,
        };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn truncated_is_reported() {
        let err = EthernetHeader::parse(&[0u8; 10]).unwrap_err();
        match err {
            ParseError::Truncated {
                layer,
                needed,
                have,
            } => {
                assert_eq!(layer, "ethernet");
                assert_eq!(needed, HEADER_LEN);
                assert_eq!(have, 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_ignores_trailing_payload() {
        let h = EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(9),
            ethertype: ethertype::ARP,
        };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), h);
    }
}
