//! ICMPv4 echo request/reply (RFC 792) — the subset network testers send.

use crate::checksum;
use crate::parser::ParseError;

/// Length of an ICMP echo header (type, code, checksum, id, seq).
pub const HEADER_LEN: usize = 8;

/// ICMP message types modelled here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (type 0).
    EchoReply,
    /// Echo request (type 8).
    EchoRequest,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IcmpType {
    fn to_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::EchoRequest => 8,
            IcmpType::Other(v) => v,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            8 => IcmpType::EchoRequest,
            other => IcmpType::Other(other),
        }
    }
}

/// An ICMP echo message (header only; the payload follows in the packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpEcho {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Code (0 for echo).
    pub code: u8,
    /// Identifier (distinguishes ping sessions).
    pub identifier: u16,
    /// Sequence number.
    pub sequence: u16,
}

impl IcmpEcho {
    /// An echo request.
    pub fn request(identifier: u16, sequence: u16) -> Self {
        IcmpEcho {
            icmp_type: IcmpType::EchoRequest,
            code: 0,
            identifier,
            sequence,
        }
    }

    /// The reply answering `req`.
    pub fn reply_to(req: &IcmpEcho) -> Self {
        IcmpEcho {
            icmp_type: IcmpType::EchoReply,
            code: 0,
            identifier: req.identifier,
            sequence: req.sequence,
        }
    }

    /// Parse the header and verify the checksum over `bytes` (header +
    /// payload, as ICMP checksums cover the full message).
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "icmp",
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if !checksum::verify(bytes) {
            return Err(ParseError::BadChecksum { layer: "icmp" });
        }
        Ok(IcmpEcho {
            icmp_type: IcmpType::from_u8(bytes[0]),
            code: bytes[1],
            identifier: u16::from_be_bytes([bytes[4], bytes[5]]),
            sequence: u16::from_be_bytes([bytes[6], bytes[7]]),
        })
    }

    /// Serialise header + `payload` with a correct checksum.
    pub fn write_with_payload(&self, out: &mut Vec<u8>, payload: &[u8]) {
        let start = out.len();
        out.push(self.icmp_type.to_u8());
        out.push(self.code);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.identifier.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(payload);
        let ck = checksum::internet_checksum(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_payload() {
        let req = IcmpEcho::request(0x1234, 7);
        let mut buf = Vec::new();
        req.write_with_payload(&mut buf, b"ping payload");
        let parsed = IcmpEcho::parse(&buf).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpEcho::request(9, 21);
        let rep = IcmpEcho::reply_to(&req);
        assert_eq!(rep.icmp_type, IcmpType::EchoReply);
        assert_eq!(rep.identifier, 9);
        assert_eq!(rep.sequence, 21);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let req = IcmpEcho::request(1, 1);
        let mut buf = Vec::new();
        req.write_with_payload(&mut buf, b"data");
        let n = buf.len();
        buf[n - 1] ^= 0xff;
        assert!(matches!(
            IcmpEcho::parse(&buf),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated() {
        assert!(IcmpEcho::parse(&[0u8; 7]).is_err());
    }
}
