//! Flow identification: the classic 5-tuple.

use core::fmt;
use core::net::IpAddr;

/// The (source IP, destination IP, protocol, source port, destination
/// port) 5-tuple that identifies a transport flow. For non-TCP/UDP
/// packets the port fields are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IP address.
    pub src_ip: IpAddr,
    /// Destination IP address.
    pub dst_ip: IpAddr,
    /// IP protocol / next-header number.
    pub protocol: u8,
    /// Transport source port (zero when not applicable).
    pub src_port: u16,
    /// Transport destination port (zero when not applicable).
    pub dst_port: u16,
}

impl FiveTuple {
    /// The tuple with source and destination swapped — the reverse
    /// direction of the same conversation.
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            protocol: self.protocol,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A direction-agnostic key: both directions of a conversation map to
    /// the same value (the lexicographically smaller orientation).
    pub fn canonical(self) -> FiveTuple {
        let rev = self.reversed();
        if self <= rev {
            self
        } else {
            rev
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} > {}:{} proto {}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::net::Ipv4Addr;

    fn tuple(a: u8, b: u8, sp: u16, dp: u16) -> FiveTuple {
        FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, a)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, b)),
            protocol: 17,
            src_port: sp,
            dst_port: dp,
        }
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tuple(1, 2, 100, 200);
        let r = t.reversed();
        assert_eq!(r.src_port, 200);
        assert_eq!(r.dst_port, 100);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn canonical_is_direction_agnostic() {
        let t = tuple(1, 2, 100, 200);
        assert_eq!(t.canonical(), t.reversed().canonical());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            tuple(1, 2, 100, 200).to_string(),
            "10.0.0.1:100 > 10.0.0.2:200 proto 17"
        );
    }
}
