//! libpcap file reading and writing.
//!
//! The OSNT generator's headline function is **PCAP replay**: take a
//! capture file and retransmit it with tunable inter-departure times. The
//! monitor's host path writes captures back out as pcap. Both the classic
//! microsecond format (magic `0xa1b2c3d4`) and the nanosecond variant
//! (magic `0xa1b23c4d`) are supported, in either byte order on read.
//!
//! Timestamps cross this API as **picoseconds** (`u64`), the native unit
//! of OSNT-rs; they are truncated to the file's resolution on write.

use std::io::{self, Read, Write};

/// Magic for microsecond-resolution files.
pub const MAGIC_MICRO: u32 = 0xa1b2_c3d4;
/// Magic for nanosecond-resolution files.
pub const MAGIC_NANO: u32 = 0xa1b2_3c4d;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Timestamp resolution of a pcap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsResolution {
    /// Classic microsecond timestamps.
    Micro,
    /// Nanosecond timestamps (what a hardware tester should write).
    Nano,
}

impl TsResolution {
    fn magic(self) -> u32 {
        match self {
            TsResolution::Micro => MAGIC_MICRO,
            TsResolution::Nano => MAGIC_NANO,
        }
    }

    /// Picoseconds per subsecond unit.
    fn unit_ps(self) -> u64 {
        match self {
            TsResolution::Micro => 1_000_000,
            TsResolution::Nano => 1_000,
        }
    }
}

/// One captured packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp, picoseconds since the file epoch.
    pub ts_ps: u64,
    /// Original length of the packet on the wire (may exceed
    /// `data.len()` when the capture was snapped/thinned).
    pub orig_len: u32,
    /// Captured bytes.
    pub data: Vec<u8>,
}

impl PcapRecord {
    /// A record whose captured bytes are complete.
    pub fn full(ts_ps: u64, data: Vec<u8>) -> Self {
        PcapRecord {
            ts_ps,
            orig_len: data.len() as u32,
            data,
        }
    }
}

/// Errors reading a pcap stream.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with a known pcap magic.
    BadMagic(u32),
    /// A record claims more captured bytes than the configured sanity
    /// limit (corrupt file).
    OversizedRecord(u32),
    /// The stream ended in the middle of a record.
    TruncatedRecord,
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap stream (magic {m:#010x})"),
            PcapError::OversizedRecord(n) => write!(f, "pcap record of {n} bytes exceeds limit"),
            PcapError::TruncatedRecord => write!(f, "pcap stream ends mid-record"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Sanity cap on `incl_len` when reading (jumbo + slack).
const MAX_RECORD: u32 = 256 * 1024;

/// Streaming pcap writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    out: W,
    resolution: TsResolution,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut out: W, resolution: TsResolution) -> io::Result<Self> {
        out.write_all(&resolution.magic().to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&(MAX_RECORD).to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter {
            out,
            resolution,
            records: 0,
        })
    }

    /// Append one record.
    pub fn write_record(&mut self, rec: &PcapRecord) -> io::Result<()> {
        let unit = self.resolution.unit_ps();
        let secs = (rec.ts_ps / 1_000_000_000_000) as u32;
        let subsec = ((rec.ts_ps % 1_000_000_000_000) / unit) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&subsec.to_le_bytes())?;
        self.out.write_all(&(rec.data.len() as u32).to_le_bytes())?;
        self.out.write_all(&rec.orig_len.to_le_bytes())?;
        self.out.write_all(&rec.data)?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and hand back the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming pcap reader.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    input: R,
    resolution: TsResolution,
    swapped: bool,
}

impl<R: Read> PcapReader<R> {
    /// Read and validate the global header.
    pub fn new(mut input: R) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 24];
        input.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (resolution, swapped) = match magic {
            MAGIC_MICRO => (TsResolution::Micro, false),
            MAGIC_NANO => (TsResolution::Nano, false),
            m if m.swap_bytes() == MAGIC_MICRO => (TsResolution::Micro, true),
            m if m.swap_bytes() == MAGIC_NANO => (TsResolution::Nano, true),
            m => return Err(PcapError::BadMagic(m)),
        };
        Ok(PcapReader {
            input,
            resolution,
            swapped,
        })
    }

    /// The file's timestamp resolution.
    pub fn resolution(&self) -> TsResolution {
        self.resolution
    }

    fn u32_at(&self, b: &[u8]) -> u32 {
        let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        if self.swapped {
            v.swap_bytes()
        } else {
            v
        }
    }

    /// Read the next record, or `None` at a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        let mut hdr = [0u8; 16];
        match self.input.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let secs = self.u32_at(&hdr[0..4]) as u64;
        let subsec = self.u32_at(&hdr[4..8]) as u64;
        let incl = self.u32_at(&hdr[8..12]);
        let orig = self.u32_at(&hdr[12..16]);
        if incl > MAX_RECORD {
            return Err(PcapError::OversizedRecord(incl));
        }
        let mut data = vec![0u8; incl as usize];
        self.input
            .read_exact(&mut data)
            .map_err(|e| match e.kind() {
                io::ErrorKind::UnexpectedEof => PcapError::TruncatedRecord,
                _ => PcapError::Io(e),
            })?;
        let ts_ps = secs * 1_000_000_000_000 + subsec * self.resolution.unit_ps();
        Ok(Some(PcapRecord {
            ts_ps,
            orig_len: orig,
            data,
        }))
    }

    /// Drain the remaining records into a vector.
    pub fn read_all(&mut self) -> Result<Vec<PcapRecord>, PcapError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Serialise records to an in-memory pcap image.
pub fn to_bytes(records: &[PcapRecord], resolution: TsResolution) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new(), resolution).expect("Vec write cannot fail");
    for r in records {
        w.write_record(r).expect("Vec write cannot fail");
    }
    w.finish().expect("Vec flush cannot fail")
}

/// Parse an in-memory pcap image.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<PcapRecord>, PcapError> {
    PcapReader::new(bytes)?.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<PcapRecord> {
        vec![
            PcapRecord::full(0, vec![1, 2, 3, 4]),
            PcapRecord::full(1_000_000_000_000, vec![5; 60]), // t = 1 s
            PcapRecord {
                ts_ps: 1_500_000_123_000, // 1.500000123 s
                orig_len: 1514,
                data: vec![9; 64], // snapped
            },
        ]
    }

    #[test]
    fn nano_round_trip_preserves_ns() {
        let recs = sample_records();
        let img = to_bytes(&recs, TsResolution::Nano);
        let back = from_bytes(&img).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], recs[0]);
        assert_eq!(back[1], recs[1]);
        // ps below ns are truncated.
        assert_eq!(back[2].ts_ps, 1_500_000_123_000);
        assert_eq!(back[2].orig_len, 1514);
    }

    #[test]
    fn micro_resolution_truncates_to_us() {
        let recs = vec![PcapRecord::full(1_234_567_000, vec![1])]; // 1.234567 ms
        let img = to_bytes(&recs, TsResolution::Micro);
        let back = from_bytes(&img).unwrap();
        assert_eq!(back[0].ts_ps, 1_234_000_000); // µs granularity
    }

    #[test]
    fn resolution_detected_from_magic() {
        let img = to_bytes(&[], TsResolution::Nano);
        let r = PcapReader::new(&img[..]).unwrap();
        assert_eq!(r.resolution(), TsResolution::Nano);
        let img = to_bytes(&[], TsResolution::Micro);
        let r = PcapReader::new(&img[..]).unwrap();
        assert_eq!(r.resolution(), TsResolution::Micro);
    }

    #[test]
    fn swapped_byte_order_is_read() {
        // Hand-build a big-endian microsecond file with one 2-byte packet.
        let mut img = Vec::new();
        img.extend_from_slice(&MAGIC_MICRO.to_be_bytes());
        img.extend_from_slice(&2u16.to_be_bytes());
        img.extend_from_slice(&4u16.to_be_bytes());
        img.extend_from_slice(&0i32.to_be_bytes());
        img.extend_from_slice(&0u32.to_be_bytes());
        img.extend_from_slice(&65535u32.to_be_bytes());
        img.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        img.extend_from_slice(&7u32.to_be_bytes()); // 7 s
        img.extend_from_slice(&3u32.to_be_bytes()); // 3 µs
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&[0xaa, 0xbb]);
        let recs = from_bytes(&img).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts_ps, 7_000_003_000_000);
        assert_eq!(recs[0].data, vec![0xaa, 0xbb]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            from_bytes(&[0u8; 24]),
            Err(PcapError::BadMagic(0))
        ));
    }

    #[test]
    fn truncated_record_is_reported() {
        let mut img = to_bytes(&sample_records(), TsResolution::Nano);
        img.truncate(img.len() - 10);
        assert!(matches!(from_bytes(&img), Err(PcapError::TruncatedRecord)));
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut img = to_bytes(&[], TsResolution::Nano);
        img.extend_from_slice(&0u32.to_le_bytes());
        img.extend_from_slice(&0u32.to_le_bytes());
        img.extend_from_slice(&(MAX_RECORD + 1).to_le_bytes());
        img.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            from_bytes(&img),
            Err(PcapError::OversizedRecord(_))
        ));
    }

    #[test]
    fn empty_file_round_trips() {
        let img = to_bytes(&[], TsResolution::Micro);
        assert_eq!(img.len(), 24);
        assert!(from_bytes(&img).unwrap().is_empty());
    }

    #[test]
    fn writer_counts_records() {
        let mut w = PcapWriter::new(Vec::new(), TsResolution::Nano).unwrap();
        for r in sample_records() {
            w.write_record(&r).unwrap();
        }
        assert_eq!(w.records_written(), 3);
    }
}
