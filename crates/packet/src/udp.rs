//! UDP headers (RFC 768).

use crate::parser::ParseError;

/// Length of a UDP header.
pub const HEADER_LEN: usize = 8;

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload, bytes.
    pub length: u16,
    /// Checksum over the pseudo-header and segment; zero means "not
    /// computed" (legal over IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Header for a segment with `payload_len` bytes of data; checksum
    /// left at zero (the [`crate::builder::PacketBuilder`] fills it).
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (HEADER_LEN + payload_len) as u16,
            checksum: 0,
        }
    }

    /// Parse from the start of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "udp",
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            length: u16::from_be_bytes([bytes[4], bytes[5]]),
            checksum: u16::from_be_bytes([bytes[6], bytes[7]]),
        })
    }

    /// Append the serialised header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = UdpHeader::new(1234, 5678, 100);
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(UdpHeader::parse(&buf).unwrap(), h);
        assert_eq!(h.length, 108);
    }

    #[test]
    fn truncated() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
    }
}
