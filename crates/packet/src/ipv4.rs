//! IPv4 headers (RFC 791).

use crate::checksum;
use crate::parser::ParseError;
use core::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers used throughout OSNT-rs.
pub mod protocol {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// An IPv4 header (options unsupported: IHL must be 5 — hardware-friendly,
/// matching OSNT's filter datapath).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services code point + ECN byte.
    pub dscp_ecn: u8,
    /// Total length of the datagram (header + payload), bytes.
    pub total_len: u16,
    /// Identification field (used by fragmentation; OSNT-rs uses it as a
    /// convenient per-flow sequence tag in some workloads).
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (see [`protocol`]).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Sensible defaults for a generated packet carrying `payload_len`
    /// bytes of transport data.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (HEADER_LEN + payload_len) as u16,
            identification: 0,
            dont_fragment: true,
            ttl: 64,
            protocol,
            src,
            dst,
        }
    }

    /// Parse from the start of `bytes`, verifying version, IHL and the
    /// header checksum.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "ipv4",
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(ParseError::Unsupported {
                layer: "ipv4",
                what: "version field is not 4",
            });
        }
        let ihl = (bytes[0] & 0x0f) as usize;
        if ihl != 5 {
            return Err(ParseError::Unsupported {
                layer: "ipv4",
                what: "IP options are not supported (IHL must be 5)",
            });
        }
        if !checksum::verify(&bytes[..HEADER_LEN]) {
            return Err(ParseError::BadChecksum { layer: "ipv4" });
        }
        let flags_frag = u16::from_be_bytes([bytes[6], bytes[7]]);
        Ok(Ipv4Header {
            dscp_ecn: bytes[1],
            total_len: u16::from_be_bytes([bytes[2], bytes[3]]),
            identification: u16::from_be_bytes([bytes[4], bytes[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            ttl: bytes[8],
            protocol: bytes[9],
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
        })
    }

    /// Append the serialised header (with a freshly computed checksum) to
    /// `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(0x45); // version 4, IHL 5
        out.push(self.dscp_ecn);
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let flags_frag: u16 = if self.dont_fragment { 0x4000 } else { 0 };
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let ck = checksum::internet_checksum(&out[start..start + HEADER_LEN]);
        out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Length of the payload according to `total_len`.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(HEADER_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(192, 168, 0, 199),
            protocol::UDP,
            100,
        )
    }

    #[test]
    fn round_trip_with_valid_checksum() {
        let h = sample();
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert!(checksum::verify(&buf));
        assert_eq!(Ipv4Header::parse(&buf).unwrap(), h);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let h = sample();
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        buf[8] ^= 0xff; // mangle TTL without fixing checksum
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(ParseError::BadChecksum { layer: "ipv4" })
        ));
    }

    #[test]
    fn options_rejected() {
        let h = sample();
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        buf[0] = 0x46; // IHL 6
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let h = sample();
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        buf[0] = 0x65;
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn payload_len_subtracts_header() {
        assert_eq!(sample().payload_len(), 100);
    }

    #[test]
    fn truncated() {
        assert!(Ipv4Header::parse(&[0x45; 19]).is_err());
    }
}
