//! ARP for IPv4 over Ethernet (RFC 826).

use crate::mac::MacAddr;
use crate::parser::ParseError;
use core::net::Ipv4Addr;

/// Length of an Ethernet/IPv4 ARP packet body.
pub const PACKET_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
    /// Any other opcode, preserved verbatim.
    Other(u16),
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
            ArpOp::Other(v) => v,
        }
    }

    fn from_u16(v: u16) -> Self {
        match v {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => ArpOp::Other(other),
        }
    }
}

/// An Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation (request/reply).
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// A who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// The reply answering `req` from the owner of the requested address.
    pub fn reply_to(req: &ArpPacket, my_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: req.target_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        }
    }

    /// Parse an ARP body (the bytes after the Ethernet header).
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < PACKET_LEN {
            return Err(ParseError::Truncated {
                layer: "arp",
                needed: PACKET_LEN,
                have: bytes.len(),
            });
        }
        let htype = u16::from_be_bytes([bytes[0], bytes[1]]);
        let ptype = u16::from_be_bytes([bytes[2], bytes[3]]);
        if htype != 1 || ptype != 0x0800 || bytes[4] != 6 || bytes[5] != 4 {
            return Err(ParseError::Unsupported {
                layer: "arp",
                what: "only Ethernet/IPv4 ARP is supported",
            });
        }
        let mac_at = |off: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&bytes[off..off + 6]);
            MacAddr(m)
        };
        let ip_at =
            |off: usize| Ipv4Addr::new(bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]);
        Ok(ArpPacket {
            op: ArpOp::from_u16(u16::from_be_bytes([bytes[6], bytes[7]])),
            sender_mac: mac_at(8),
            sender_ip: ip_at(14),
            target_mac: mac_at(18),
            target_ip: ip_at(24),
        })
    }

    /// Append the serialised body to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&1u16.to_be_bytes()); // htype Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype IPv4
        out.push(6); // hlen
        out.push(4); // plen
        out.extend_from_slice(&self.op.to_u16().to_be_bytes());
        out.extend_from_slice(&self.sender_mac.octets());
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.octets());
        out.extend_from_slice(&self.target_ip.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_round_trip() {
        let req = ArpPacket::request(
            MacAddr::local(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut buf = Vec::new();
        req.write_to(&mut buf);
        assert_eq!(buf.len(), PACKET_LEN);
        let parsed = ArpPacket::parse(&buf).unwrap();
        assert_eq!(parsed, req);

        let rep = ArpPacket::reply_to(&parsed, MacAddr::local(2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.target_mac, MacAddr::local(1));
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let req = ArpPacket::request(
            MacAddr::local(1),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
        );
        let mut buf = Vec::new();
        req.write_to(&mut buf);
        buf[0] = 9; // bogus htype
        assert!(matches!(
            ArpPacket::parse(&buf),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn truncated() {
        assert!(ArpPacket::parse(&[0u8; 27]).is_err());
    }
}
