//! Fluent frame construction for the traffic generator.
//!
//! ```
//! use osnt_packet::{PacketBuilder, MacAddr};
//! use core::net::Ipv4Addr;
//!
//! let pkt = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
//!     .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
//!     .udp(5000, 9000)
//!     .payload(b"hello")
//!     .pad_to_frame(128)
//!     .build();
//! assert_eq!(pkt.frame_len(), 128);
//! assert!(pkt.parse().five_tuple().is_some());
//! ```
//!
//! The builder fills in every derived field: IP total length, UDP/TCP
//! lengths and checksums (including pseudo-headers) and the IPv4 header
//! checksum. Frames shorter than the Ethernet minimum are zero-padded to
//! 64 bytes, as the MAC would.

use crate::checksum;
use crate::ethernet::{ethertype, EthernetHeader};
use crate::icmp::IcmpEcho;
use crate::ipv4::{protocol, Ipv4Header};
use crate::ipv6::Ipv6Header;
use crate::mac::MacAddr;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::vlan::VlanTag;
use crate::{Packet, FCS_LEN, MIN_FRAME};
use core::net::{Ipv4Addr, Ipv6Addr};

#[derive(Debug, Clone, Copy)]
enum L3Plan {
    V4 { src: Ipv4Addr, dst: Ipv4Addr },
    V6 { src: Ipv6Addr, dst: Ipv6Addr },
}

#[derive(Debug, Clone)]
enum L4Plan {
    Udp {
        src_port: u16,
        dst_port: u16,
    },
    Tcp {
        src_port: u16,
        dst_port: u16,
        seq: u32,
        flags: u8,
    },
    IcmpEcho {
        identifier: u16,
        sequence: u16,
    },
    Raw {
        protocol: u8,
    },
}

/// Builder for well-formed Ethernet/IP frames. See the module docs.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    vlan: Option<u16>,
    raw_ethertype: Option<u16>,
    l3: Option<L3Plan>,
    l4: Option<L4Plan>,
    payload: Vec<u8>,
    pad_to: Option<usize>,
    ttl: Option<u8>,
    ip_id: u16,
}

impl PacketBuilder {
    /// Start a frame from `src` to `dst`.
    pub fn ethernet(src: MacAddr, dst: MacAddr) -> Self {
        PacketBuilder {
            src_mac: src,
            dst_mac: dst,
            vlan: None,
            raw_ethertype: None,
            l3: None,
            l4: None,
            payload: Vec::new(),
            pad_to: None,
            ttl: None,
            ip_id: 0,
        }
    }

    /// Insert an 802.1Q tag with VLAN id `vid`.
    pub fn vlan(mut self, vid: u16) -> Self {
        self.vlan = Some(vid);
        self
    }

    /// Add an IPv4 header.
    pub fn ipv4(mut self, src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        self.l3 = Some(L3Plan::V4 { src, dst });
        self
    }

    /// Add an IPv6 header.
    pub fn ipv6(mut self, src: Ipv6Addr, dst: Ipv6Addr) -> Self {
        self.l3 = Some(L3Plan::V6 { src, dst });
        self
    }

    /// Override the IPv4 TTL / IPv6 hop limit (default 64).
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Set the IPv4 identification field (handy as a sequence tag).
    pub fn ip_identification(mut self, id: u16) -> Self {
        self.ip_id = id;
        self
    }

    /// Add a UDP header.
    pub fn udp(mut self, src_port: u16, dst_port: u16) -> Self {
        self.l4 = Some(L4Plan::Udp { src_port, dst_port });
        self
    }

    /// Add a TCP header (ACK flag set, no options).
    pub fn tcp(mut self, src_port: u16, dst_port: u16, seq: u32) -> Self {
        self.l4 = Some(L4Plan::Tcp {
            src_port,
            dst_port,
            seq,
            flags: crate::tcp::flags::ACK,
        });
        self
    }

    /// Add a TCP header with explicit flags.
    pub fn tcp_with_flags(mut self, src_port: u16, dst_port: u16, seq: u32, flags: u8) -> Self {
        self.l4 = Some(L4Plan::Tcp {
            src_port,
            dst_port,
            seq,
            flags,
        });
        self
    }

    /// Add an ICMP echo-request header (IPv4 only).
    pub fn icmp_echo(mut self, identifier: u16, sequence: u16) -> Self {
        self.l4 = Some(L4Plan::IcmpEcho {
            identifier,
            sequence,
        });
        self
    }

    /// Carry `protocol` directly over IP with the payload as the raw
    /// transport bytes.
    pub fn ip_raw(mut self, protocol: u8) -> Self {
        self.l4 = Some(L4Plan::Raw { protocol });
        self
    }

    /// Use a bare (non-IP) EtherType; the payload follows the Ethernet
    /// header directly. Used for OSNT probe frames.
    pub fn raw_ethertype(mut self, ethertype: u16) -> Self {
        self.raw_ethertype = Some(ethertype);
        self
    }

    /// Set the payload bytes.
    pub fn payload(mut self, bytes: &[u8]) -> Self {
        self.payload = bytes.to_vec();
        self
    }

    /// Pad (with zeros) so the conventional frame length (incl. FCS)
    /// equals `frame_len`. Panics at [`build`](Self::build) time if the
    /// headers alone already exceed it.
    pub fn pad_to_frame(mut self, frame_len: usize) -> Self {
        self.pad_to = Some(frame_len);
        self
    }

    /// Assemble the frame.
    ///
    /// # Panics
    /// If the layer combination is inconsistent (e.g. UDP without IP, or
    /// `pad_to_frame` smaller than the headers require).
    pub fn build(self) -> Packet {
        let PacketBuilder {
            src_mac,
            dst_mac,
            vlan,
            raw_ethertype,
            l3,
            l4,
            mut payload,
            pad_to,
            ttl,
            ip_id,
        } = self;

        // Work out how much padding the payload needs before sizing
        // headers, because IP/UDP length fields must cover the padding if
        // it is to survive filters that check lengths.
        let l2_len = crate::ethernet::HEADER_LEN
            + if vlan.is_some() {
                crate::vlan::TAG_LEN
            } else {
                0
            };
        let l3_len = match l3 {
            Some(L3Plan::V4 { .. }) => crate::ipv4::HEADER_LEN,
            Some(L3Plan::V6 { .. }) => crate::ipv6::HEADER_LEN,
            None => 0,
        };
        let l4_len = match &l4 {
            Some(L4Plan::Udp { .. }) => crate::udp::HEADER_LEN,
            Some(L4Plan::Tcp { .. }) => crate::tcp::HEADER_LEN,
            Some(L4Plan::IcmpEcho { .. }) => crate::icmp::HEADER_LEN,
            Some(L4Plan::Raw { .. }) | None => 0,
        };
        if let Some(target) = pad_to {
            let fixed = l2_len + l3_len + l4_len + FCS_LEN;
            assert!(
                target >= fixed + payload.len(),
                "pad_to_frame({target}) smaller than headers+payload ({} bytes)",
                fixed + payload.len()
            );
            payload.resize(target - fixed, 0);
        }

        let mut out = Vec::with_capacity(l2_len + l3_len + l4_len + payload.len());

        // L2.
        let outer_type = if vlan.is_some() {
            ethertype::VLAN
        } else {
            match (&l3, raw_ethertype) {
                (_, Some(t)) => t,
                (Some(L3Plan::V4 { .. }), _) => ethertype::IPV4,
                (Some(L3Plan::V6 { .. }), _) => ethertype::IPV6,
                (None, None) => ethertype::OSNT_PROBE,
            }
        };
        EthernetHeader {
            dst: dst_mac,
            src: src_mac,
            ethertype: outer_type,
        }
        .write_to(&mut out);
        if let Some(vid) = vlan {
            let inner = match (&l3, raw_ethertype) {
                (_, Some(t)) => t,
                (Some(L3Plan::V4 { .. }), _) => ethertype::IPV4,
                (Some(L3Plan::V6 { .. }), _) => ethertype::IPV6,
                (None, None) => ethertype::OSNT_PROBE,
            };
            VlanTag::new(vid, inner).write_to(&mut out);
        }

        // Build the transport segment first (checksum needs the payload).
        let segment = match (&l3, &l4) {
            (None, None) => payload.clone(),
            (None, Some(_)) => panic!("transport layer requires an IP layer"),
            (Some(_), None) => panic!("IP layer requires a transport plan (use ip_raw)"),
            (Some(plan), Some(l4plan)) => build_segment(plan, l4plan, &payload),
        };

        // L3.
        match l3 {
            Some(L3Plan::V4 { src, dst }) => {
                let proto = match &l4 {
                    Some(L4Plan::Udp { .. }) => protocol::UDP,
                    Some(L4Plan::Tcp { .. }) => protocol::TCP,
                    Some(L4Plan::IcmpEcho { .. }) => protocol::ICMP,
                    Some(L4Plan::Raw { protocol }) => *protocol,
                    None => unreachable!(),
                };
                let mut hdr = Ipv4Header::new(src, dst, proto, segment.len());
                if let Some(t) = ttl {
                    hdr.ttl = t;
                }
                hdr.identification = ip_id;
                hdr.write_to(&mut out);
            }
            Some(L3Plan::V6 { src, dst }) => {
                let next = match &l4 {
                    Some(L4Plan::Udp { .. }) => protocol::UDP,
                    Some(L4Plan::Tcp { .. }) => protocol::TCP,
                    Some(L4Plan::IcmpEcho { .. }) => {
                        panic!("ICMPv4 echo cannot be carried over IPv6 in this model")
                    }
                    Some(L4Plan::Raw { protocol }) => *protocol,
                    None => unreachable!(),
                };
                let mut hdr = Ipv6Header::new(src, dst, next, segment.len());
                if let Some(t) = ttl {
                    hdr.hop_limit = t;
                }
                hdr.write_to(&mut out);
            }
            None => {}
        }

        out.extend_from_slice(&segment);

        // Ethernet minimum: pad the stored frame to 60 bytes (64 incl.
        // FCS), exactly as a MAC pads on transmit.
        if out.len() < MIN_FRAME - FCS_LEN {
            out.resize(MIN_FRAME - FCS_LEN, 0);
        }
        Packet::from_vec(out)
    }
}

fn build_segment(l3: &L3Plan, l4: &L4Plan, payload: &[u8]) -> Vec<u8> {
    let mut seg = Vec::with_capacity(crate::tcp::HEADER_LEN + payload.len());
    match l4 {
        L4Plan::Udp { src_port, dst_port } => {
            UdpHeader::new(*src_port, *dst_port, payload.len()).write_to(&mut seg);
            seg.extend_from_slice(payload);
            let ck = transport_ck(l3, protocol::UDP, &seg);
            // RFC 768: a computed checksum of zero is transmitted as 0xffff.
            let ck = if ck == 0 { 0xffff } else { ck };
            seg[6..8].copy_from_slice(&ck.to_be_bytes());
        }
        L4Plan::Tcp {
            src_port,
            dst_port,
            seq,
            flags,
        } => {
            let mut hdr = TcpHeader::new(*src_port, *dst_port, *seq);
            hdr.flags = *flags;
            hdr.write_to(&mut seg);
            seg.extend_from_slice(payload);
            let ck = transport_ck(l3, protocol::TCP, &seg);
            seg[16..18].copy_from_slice(&ck.to_be_bytes());
        }
        L4Plan::IcmpEcho {
            identifier,
            sequence,
        } => {
            IcmpEcho::request(*identifier, *sequence).write_with_payload(&mut seg, payload);
        }
        L4Plan::Raw { .. } => {
            seg.extend_from_slice(payload);
        }
    }
    seg
}

fn transport_ck(l3: &L3Plan, proto: u8, segment: &[u8]) -> u16 {
    match l3 {
        L3Plan::V4 { src, dst } => checksum::transport_checksum_v4(*src, *dst, proto, segment),
        L3Plan::V6 { src, dst } => checksum::transport_checksum_v6(*src, *dst, proto, segment),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::{pseudo_header_v4, Checksum};
    use crate::parser::L3;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::local(1), MacAddr::local(2))
    }

    #[test]
    fn udp_checksum_verifies_end_to_end() {
        let (s, d) = macs();
        let pkt = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .udp(1111, 2222)
            .payload(b"some test payload bytes")
            .build();
        let v = pkt.parse();
        let Some(L3::Ipv4(ip)) = v.l3 else {
            panic!("not ipv4")
        };
        let seg = &pkt.data()[v.l4_offset..v.l4_offset + ip.payload_len()];
        let mut c = Checksum::new();
        pseudo_header_v4(&mut c, ip.src, ip.dst, protocol::UDP, seg.len() as u16);
        c.add_bytes(seg);
        assert_eq!(c.finish(), 0, "UDP checksum must verify");
    }

    #[test]
    fn tcp_checksum_verifies_end_to_end() {
        let (s, d) = macs();
        let pkt = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(4, 3, 2, 1))
            .tcp(80, 443, 0x01020304)
            .payload(b"tcp data")
            .build();
        let v = pkt.parse();
        let Some(L3::Ipv4(ip)) = v.l3 else {
            panic!("not ipv4")
        };
        let seg = &pkt.data()[v.l4_offset..v.l4_offset + ip.payload_len()];
        let mut c = Checksum::new();
        pseudo_header_v4(&mut c, ip.src, ip.dst, protocol::TCP, seg.len() as u16);
        c.add_bytes(seg);
        assert_eq!(c.finish(), 0, "TCP checksum must verify");
    }

    #[test]
    fn minimum_frame_is_padded() {
        let (s, d) = macs();
        let pkt = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(1, 2)
            .build();
        assert_eq!(pkt.frame_len(), MIN_FRAME);
    }

    #[test]
    fn pad_to_frame_hits_exact_size() {
        let (s, d) = macs();
        for size in [64usize, 128, 256, 512, 1024, 1518] {
            let pkt = PacketBuilder::ethernet(s, d)
                .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
                .udp(1, 2)
                .pad_to_frame(size)
                .build();
            assert_eq!(pkt.frame_len(), size);
            // Length fields must cover the padding.
            let v = pkt.parse();
            let Some(L3::Ipv4(ip)) = v.l3 else { panic!() };
            assert_eq!(
                ip.total_len as usize,
                size - FCS_LEN - crate::ethernet::HEADER_LEN
            );
        }
    }

    #[test]
    #[should_panic(expected = "smaller than headers")]
    fn pad_to_frame_rejects_impossible_size() {
        let (s, d) = macs();
        let _ = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(1, 2)
            .payload(&[0; 100])
            .pad_to_frame(64)
            .build();
    }

    #[test]
    #[should_panic(expected = "requires an IP layer")]
    fn udp_without_ip_panics() {
        let (s, d) = macs();
        let _ = PacketBuilder::ethernet(s, d).udp(1, 2).build();
    }

    #[test]
    fn icmp_echo_frame() {
        let (s, d) = macs();
        let pkt = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .icmp_echo(7, 3)
            .payload(b"abcdefgh")
            .build();
        let v = pkt.parse();
        assert_eq!(v.ip_protocol(), Some(protocol::ICMP));
        let icmp = crate::icmp::IcmpEcho::parse(&pkt.data()[v.l4_offset..v.l4_offset + 16])
            .expect("icmp parses");
        assert_eq!(icmp.identifier, 7);
        assert_eq!(icmp.sequence, 3);
    }

    #[test]
    fn bare_probe_frame_uses_experimental_ethertype() {
        let (s, d) = macs();
        let pkt = PacketBuilder::ethernet(s, d).payload(&[0xab; 46]).build();
        assert_eq!(
            pkt.parse().effective_ethertype(),
            Some(ethertype::OSNT_PROBE)
        );
    }

    #[test]
    fn ipv6_udp_builds_and_parses() {
        let (s, d) = macs();
        let pkt = PacketBuilder::ethernet(s, d)
            .ipv6(
                Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1),
                Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 2),
            )
            .udp(4242, 4243)
            .payload(&[1, 2, 3])
            .build();
        let ft = pkt.parse().five_tuple().unwrap();
        assert_eq!(ft.src_port, 4242);
        assert!(matches!(ft.src_ip, core::net::IpAddr::V6(_)));
    }

    #[test]
    fn vlan_and_ttl_options() {
        let (s, d) = macs();
        let pkt = PacketBuilder::ethernet(s, d)
            .vlan(99)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .ttl(7)
            .udp(5, 6)
            .build();
        let v = pkt.parse();
        assert_eq!(v.vlan.unwrap().vid, 99);
        let Some(L3::Ipv4(ip)) = v.l3 else { panic!() };
        assert_eq!(ip.ttl, 7);
    }
}
