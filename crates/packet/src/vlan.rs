//! IEEE 802.1Q VLAN tags.

use crate::parser::ParseError;

/// Length of one 802.1Q tag (TCI + inner EtherType).
pub const TAG_LEN: usize = 4;

/// A parsed 802.1Q tag: priority, drop-eligible bit, VLAN id and the inner
/// EtherType that follows the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanTag {
    /// Priority code point (0–7).
    pub pcp: u8,
    /// Drop-eligible indicator.
    pub dei: bool,
    /// VLAN identifier (0–4095).
    pub vid: u16,
    /// EtherType of the encapsulated payload.
    pub inner_ethertype: u16,
}

impl VlanTag {
    /// Build a tag with default priority for a VLAN id.
    pub fn new(vid: u16, inner_ethertype: u16) -> Self {
        assert!(vid < 4096, "VLAN id must be 12 bits");
        VlanTag {
            pcp: 0,
            dei: false,
            vid,
            inner_ethertype,
        }
    }

    /// Parse the 4 bytes that follow an outer EtherType of 0x8100.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < TAG_LEN {
            return Err(ParseError::Truncated {
                layer: "vlan",
                needed: TAG_LEN,
                have: bytes.len(),
            });
        }
        let tci = u16::from_be_bytes([bytes[0], bytes[1]]);
        Ok(VlanTag {
            pcp: (tci >> 13) as u8,
            dei: tci & 0x1000 != 0,
            vid: tci & 0x0fff,
            inner_ethertype: u16::from_be_bytes([bytes[2], bytes[3]]),
        })
    }

    /// Append the serialised tag to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let tci =
            ((self.pcp as u16) << 13) | (if self.dei { 0x1000 } else { 0 }) | (self.vid & 0x0fff);
        out.extend_from_slice(&tci.to_be_bytes());
        out.extend_from_slice(&self.inner_ethertype.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::ethertype;

    #[test]
    fn round_trip_all_fields() {
        let t = VlanTag {
            pcp: 5,
            dei: true,
            vid: 0x123,
            inner_ethertype: ethertype::IPV4,
        };
        let mut buf = Vec::new();
        t.write_to(&mut buf);
        assert_eq!(buf.len(), TAG_LEN);
        assert_eq!(VlanTag::parse(&buf).unwrap(), t);
    }

    #[test]
    fn new_defaults() {
        let t = VlanTag::new(100, ethertype::IPV6);
        assert_eq!(t.pcp, 0);
        assert!(!t.dei);
        assert_eq!(t.vid, 100);
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn new_rejects_large_vid() {
        let _ = VlanTag::new(4096, 0);
    }

    #[test]
    fn truncated() {
        assert!(VlanTag::parse(&[1, 2, 3]).is_err());
    }
}
