//! Compiled wildcard matching: fixed-width flow keys and masked-word
//! rules.
//!
//! [`crate::WildcardRule::matches`] re-walks a [`ParsedPacket`]'s
//! `Option` fields per rule — fine for a handful of rules, ruinous for a
//! filter-heavy monitor table where every frame pays the whole walk at
//! line rate. This module lowers both sides of the comparison to flat
//! machine words:
//!
//! * [`FlowKey::extract`] packs every filterable header field of one
//!   parsed frame into eight `u64` words (one parse, one extraction per
//!   packet, shared by every rule), and
//! * [`CompiledRule::compile`] lowers a `WildcardRule` into a
//!   value/mask pair over the same words, so a match is eight
//!   `(key & mask) == value` compares with no branches on header shape.
//!
//! `Option` semantics ("a named field requires its layer to exist")
//! survive lowering through the presence-flag word: a rule naming
//! `dst_port` also demands the `HAS_L4` bit, so an ARP frame whose key
//! holds zeroed port bits can never match a `dst_port == 0` rule by
//! accident. [`CompiledRule::compile`] is exact by construction —
//! `compiled.matches(&FlowKey::extract(&p)) == rule.matches(&p)` for
//! every frame, pinned by the corpus test below and the proptest suite.

use crate::mac::MacAddr;
use crate::parser::{ParsedPacket, L3};
use crate::wildcard::WildcardRule;
use core::net::IpAddr;

/// Number of `u64` words in a [`FlowKey`].
pub const KEY_WORDS: usize = 8;

// Word layout (field → word, bit position):
//   w0: src MAC (bits 0..48) | effective EtherType (bits 48..64)
//   w1: dst MAC (bits 0..48) | VLAN vid (bits 48..64)
//   w2: src IP high 64 bits (IPv6; zero for IPv4)
//   w3: src IP low 64 bits (IPv6) or the IPv4 address (bits 0..32)
//   w4: dst IP high 64 bits
//   w5: dst IP low 64 bits / IPv4 address
//   w6: src port (bits 0..16) | dst port (bits 16..32) | IP proto (32..40)
//   w7: presence flags (see the `flag` constants)
const W_SRC: usize = 0;
const W_DST: usize = 1;
const W_SIP_HI: usize = 2;
const W_SIP_LO: usize = 3;
const W_DIP_HI: usize = 4;
const W_DIP_LO: usize = 5;
const W_L4: usize = 6;
const W_FLAGS: usize = 7;

const MAC_MASK: u64 = (1 << 48) - 1;
const ETHERTYPE_SHIFT: u32 = 48;
const VID_SHIFT: u32 = 48;
const DPORT_SHIFT: u32 = 16;
const PROTO_SHIFT: u32 = 32;

/// Presence flags stored in word 7 of a [`FlowKey`]. A compiled rule
/// that names a field also requires the flag of the layer carrying it,
/// which is how `Option`-field semantics survive the lowering.
pub mod flag {
    /// An Ethernet header was parsed.
    pub const HAS_ETH: u64 = 1 << 0;
    /// An 802.1Q tag is present.
    pub const HAS_VLAN: u64 = 1 << 1;
    /// The frame is IP (v4 or v6).
    pub const HAS_IP: u64 = 1 << 2;
    /// The frame is IPv4.
    pub const IS_V4: u64 = 1 << 3;
    /// The frame is IPv6.
    pub const IS_V6: u64 = 1 << 4;
    /// A transport summary exists (every IP frame has one; ports are
    /// zero when the transport header is truncated or portless).
    pub const HAS_L4: u64 = 1 << 5;
}

#[inline]
fn mac_bits(m: MacAddr) -> u64 {
    m.octets().iter().fold(0u64, |a, &b| (a << 8) | b as u64)
}

/// Every filterable header field of one frame, pre-extracted into
/// fixed-width words. Extract once per packet, match against any number
/// of [`CompiledRule`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowKey {
    /// The packed field words (layout documented in the module source).
    pub words: [u64; KEY_WORDS],
}

impl FlowKey {
    /// Pack `p`'s header fields. Absent layers leave their words zero
    /// and their presence flags clear.
    pub fn extract(p: &ParsedPacket<'_>) -> FlowKey {
        let mut w = [0u64; KEY_WORDS];
        let mut flags = 0u64;
        if let Some(eth) = p.ethernet {
            flags |= flag::HAS_ETH;
            w[W_SRC] = mac_bits(eth.src);
            w[W_DST] = mac_bits(eth.dst);
            // `effective_ethertype` is Some exactly when ethernet is.
            if let Some(t) = p.effective_ethertype() {
                w[W_SRC] |= (t as u64) << ETHERTYPE_SHIFT;
            }
        }
        if let Some(tag) = p.vlan {
            flags |= flag::HAS_VLAN;
            w[W_DST] |= (tag.vid as u64) << VID_SHIFT;
        }
        match p.l3 {
            Some(L3::Ipv4(h)) => {
                flags |= flag::HAS_IP | flag::IS_V4;
                w[W_SIP_LO] = u32::from(h.src) as u64;
                w[W_DIP_LO] = u32::from(h.dst) as u64;
            }
            Some(L3::Ipv6(h)) => {
                flags |= flag::HAS_IP | flag::IS_V6;
                let (s, d) = (u128::from(h.src), u128::from(h.dst));
                w[W_SIP_HI] = (s >> 64) as u64;
                w[W_SIP_LO] = s as u64;
                w[W_DIP_HI] = (d >> 64) as u64;
                w[W_DIP_LO] = d as u64;
            }
            _ => {}
        }
        if let Some(l4) = p.l4 {
            flags |= flag::HAS_L4;
            w[W_L4] = l4.src_port as u64
                | (l4.dst_port as u64) << DPORT_SHIFT
                | (l4.protocol as u64) << PROTO_SHIFT;
        }
        w[W_FLAGS] = flags;
        FlowKey { words: w }
    }

    /// Parse + extract in one call (the per-rule cost this module
    /// exists to avoid; use only where no parse is at hand).
    pub fn of_bytes(bytes: &[u8]) -> FlowKey {
        FlowKey::extract(&ParsedPacket::parse(bytes))
    }

    /// The key with `mask` applied word-wise: the canonical form a
    /// tuple-space classifier hashes. For any [`KeyMatch`] whose mask is
    /// `mask`, the match succeeds exactly when this equals the rule's
    /// value words — so grouping rules by mask turns wildcard matching
    /// into exact-match hashing on the masked key.
    #[inline]
    pub fn masked(&self, mask: &[u64; KEY_WORDS]) -> [u64; KEY_WORDS] {
        let mut out = [0u64; KEY_WORDS];
        for (o, (&k, &m)) in out.iter_mut().zip(self.words.iter().zip(mask)) {
            *o = k & m;
        }
        out
    }

    /// The frame's source MAC, when an Ethernet header was parsed —
    /// recovered from the packed words, so consumers holding only a key
    /// (e.g. a switch learning addresses from staged burst lanes) need
    /// no second parse.
    pub fn src_mac(&self) -> Option<MacAddr> {
        if self.words[W_FLAGS] & flag::HAS_ETH == 0 {
            return None;
        }
        let bits = self.words[W_SRC] & MAC_MASK;
        let b = bits.to_be_bytes();
        Some(MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

/// Number of key lanes in a [`FlowKeyBlock`]. Must stay ≤ 8 so a hit
/// mask fits a `u8`.
pub const BLOCK_LANES: usize = 8;

/// A struct-of-arrays block of up to [`BLOCK_LANES`] flow keys.
///
/// The layout is the transpose of `[FlowKey; BLOCK_LANES]`:
/// `words[w][lane]` holds word `w` of lane `lane`'s key, so one
/// [`CompiledRule`]'s masked compare of word `w` touches eight
/// consecutive `u64`s — a loop shape the compiler auto-vectorizes
/// across packets instead of across words. Classifying a burst fills a
/// block once and runs every rule against it
/// ([`CompiledRule::matches_block`]), turning the per-frame
/// rule-table walk into a per-block one.
#[derive(Debug, Clone)]
pub struct FlowKeyBlock {
    words: [[u64; BLOCK_LANES]; KEY_WORDS],
    len: usize,
}

impl Default for FlowKeyBlock {
    fn default() -> Self {
        FlowKeyBlock::new()
    }
}

impl FlowKeyBlock {
    /// An empty block.
    pub fn new() -> Self {
        FlowKeyBlock {
            words: [[0; BLOCK_LANES]; KEY_WORDS],
            len: 0,
        }
    }

    /// Number of occupied lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no lane is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when all [`BLOCK_LANES`] lanes are occupied.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == BLOCK_LANES
    }

    /// Reset to empty (keeps the allocation-free storage).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Transpose `key` into the next free lane; returns its lane index.
    /// Panics when the block is full.
    #[inline]
    pub fn push(&mut self, key: &FlowKey) -> usize {
        assert!(self.len < BLOCK_LANES, "flow-key block is full");
        let lane = self.len;
        for w in 0..KEY_WORDS {
            self.words[w][lane] = key.words[w];
        }
        self.len = lane + 1;
        lane
    }

    /// Reconstruct the key in `lane` (must be occupied).
    pub fn key(&self, lane: usize) -> FlowKey {
        assert!(lane < self.len, "lane {lane} not occupied");
        let mut words = [0u64; KEY_WORDS];
        for (w, word) in words.iter_mut().enumerate() {
            *word = self.words[w][lane];
        }
        FlowKey { words }
    }

    /// Lane `lane`'s key with `mask` applied, straight out of the
    /// transposed storage — [`FlowKey::masked`] without materialising
    /// the intermediate key. Lane must be occupied.
    #[inline]
    pub fn masked_lane(&self, lane: usize, mask: &[u64; KEY_WORDS]) -> [u64; KEY_WORDS] {
        debug_assert!(lane < self.len, "lane {lane} not occupied");
        let mut out = [0u64; KEY_WORDS];
        for (w, (o, m)) in out.iter_mut().zip(mask).enumerate() {
            *o = self.words[w][lane] & m;
        }
        out
    }
}

/// A raw value/mask requirement over [`FlowKey`] words — the shared
/// substrate every compiled rule language lowers onto.
///
/// [`CompiledRule`] (the monitor's [`WildcardRule`] lowering) is a thin
/// wrapper over it, and foreign rule languages — the switch crate's
/// OpenFlow 1.0 `ofp_match` — compile onto the same key layout through
/// the named `require_*` methods, without this module having to export
/// its private word layout. Every `require_*` call ANDs one more field
/// constraint into the value/mask pair; the presence-flag discipline
/// (naming a field also demands the flag of the layer carrying it) is
/// applied by each method, so `Option`-field semantics survive any
/// lowering built on this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyMatch {
    value: [u64; KEY_WORDS],
    mask: [u64; KEY_WORDS],
}

impl Default for KeyMatch {
    fn default() -> Self {
        KeyMatch::new()
    }
}

impl KeyMatch {
    /// The unconstrained match (accepts every key).
    pub fn new() -> Self {
        KeyMatch {
            value: [0u64; KEY_WORDS],
            mask: [0u64; KEY_WORDS],
        }
    }

    #[inline]
    fn require(&mut self, w: usize, mask: u64, value: u64) {
        debug_assert_eq!(value & !mask, 0, "value bits outside the mask");
        self.mask[w] |= mask;
        self.value[w] |= value;
    }

    #[inline]
    fn require_flags(&mut self, flags: u64) {
        self.require(W_FLAGS, flags, flags);
    }

    /// Demand an Ethernet source address.
    pub fn require_src_mac(&mut self, m: MacAddr) {
        self.require_flags(flag::HAS_ETH);
        self.require(W_SRC, MAC_MASK, mac_bits(m));
    }

    /// Demand an Ethernet destination address.
    pub fn require_dst_mac(&mut self, m: MacAddr) {
        self.require_flags(flag::HAS_ETH);
        self.require(W_DST, MAC_MASK, mac_bits(m));
    }

    /// Demand an effective EtherType (the inner type when VLAN-tagged).
    pub fn require_ethertype(&mut self, t: u16) {
        self.require_flags(flag::HAS_ETH);
        self.require(
            W_SRC,
            0xFFFF << ETHERTYPE_SHIFT,
            (t as u64) << ETHERTYPE_SHIFT,
        );
    }

    /// Demand an 802.1Q tag carrying `vid`.
    pub fn require_vlan(&mut self, vid: u16) {
        self.require_flags(flag::HAS_VLAN);
        self.require(W_DST, 0xFFFF << VID_SHIFT, (vid as u64) << VID_SHIFT);
    }

    /// Demand the *absence* of an 802.1Q tag (OpenFlow's
    /// `OFP_VLAN_NONE`) — something [`WildcardRule`] cannot express.
    pub fn forbid_vlan(&mut self) {
        self.require(W_FLAGS, flag::HAS_VLAN, 0);
    }

    /// Demand an IP protocol / next-header value (implies the frame is
    /// IP).
    pub fn require_ip_protocol(&mut self, proto: u8) {
        self.require_flags(flag::HAS_IP);
        self.require(W_L4, 0xFF << PROTO_SHIFT, (proto as u64) << PROTO_SHIFT);
    }

    /// Demand a transport source port.
    pub fn require_src_port(&mut self, port: u16) {
        self.require_flags(flag::HAS_L4);
        self.require(W_L4, 0xFFFF, port as u64);
    }

    /// Demand a transport destination port.
    pub fn require_dst_port(&mut self, port: u16) {
        self.require_flags(flag::HAS_L4);
        self.require(W_L4, 0xFFFF << DPORT_SHIFT, (port as u64) << DPORT_SHIFT);
    }

    /// Demand a source address inside `prefix` (implies the matching
    /// address family). A zero-length prefix keeps only the family
    /// requirement — exactly
    /// [`crate::wildcard::IpPrefix::contains`]'s behaviour.
    pub fn require_src_ip(&mut self, prefix: crate::wildcard::IpPrefix) {
        self.require_prefix(prefix, W_SIP_HI, W_SIP_LO);
    }

    /// Demand a destination address inside `prefix`.
    pub fn require_dst_ip(&mut self, prefix: crate::wildcard::IpPrefix) {
        self.require_prefix(prefix, W_DIP_HI, W_DIP_LO);
    }

    fn require_prefix(&mut self, prefix: crate::wildcard::IpPrefix, w_hi: usize, w_lo: usize) {
        match prefix.addr {
            IpAddr::V4(base) => {
                self.require_flags(flag::IS_V4);
                let plen = prefix.prefix_len.min(32) as u32;
                if plen > 0 {
                    let m = (!0u32) << (32 - plen);
                    self.require(w_lo, m as u64, (u32::from(base) & m) as u64);
                }
            }
            IpAddr::V6(base) => {
                self.require_flags(flag::IS_V6);
                let plen = prefix.prefix_len.min(128) as u32;
                if plen > 0 {
                    let m = (!0u128) << (128 - plen);
                    let v = u128::from(base) & m;
                    self.require(w_hi, (m >> 64) as u64, (v >> 64) as u64);
                    self.require(w_lo, m as u64, v as u64);
                }
            }
        }
    }

    /// The mask words — which key bits the match constrains. Two
    /// `KeyMatch`es with equal masks differ only in value: the
    /// "tuple" of tuple-space search.
    #[inline]
    pub fn mask_words(&self) -> &[u64; KEY_WORDS] {
        &self.mask
    }

    /// The value words. Invariant (kept by [`KeyMatch::require`]):
    /// `value & !mask == 0`, so for a key `k`, `matches(k)` ⇔
    /// `k.masked(mask) == value` — the identity that lets a hash table
    /// keyed on masked keys answer wildcard lookups exactly.
    #[inline]
    pub fn value_words(&self) -> &[u64; KEY_WORDS] {
        &self.value
    }

    /// Whether `key` satisfies every requirement: eight masked compares.
    #[inline]
    pub fn matches(&self, key: &FlowKey) -> bool {
        let mut diff = 0u64;
        for i in 0..KEY_WORDS {
            diff |= (key.words[i] & self.mask[i]) ^ self.value[i];
        }
        diff == 0
    }

    /// Match every occupied lane of `block` at once; bit `i` of the
    /// returned mask is set when lane `i` matches. The lane loop is
    /// innermost — eight independent `(word & mask) ^ value`
    /// accumulations over consecutive memory — so the compiler
    /// vectorizes the compare across packets. Exactly equivalent to
    /// eight [`KeyMatch::matches`] calls.
    #[inline]
    pub fn matches_block(&self, block: &FlowKeyBlock) -> u8 {
        const { assert!(BLOCK_LANES <= 8, "hit mask is a u8") };
        let mut diff = [0u64; BLOCK_LANES];
        for w in 0..KEY_WORDS {
            let (value, mask) = (self.value[w], self.mask[w]);
            for (d, &kw) in diff.iter_mut().zip(&block.words[w]) {
                *d |= (kw & mask) ^ value;
            }
        }
        let mut hits = 0u8;
        for (lane, &d) in diff.iter().enumerate().take(block.len) {
            hits |= u8::from(d == 0) << lane;
        }
        hits
    }
}

/// A [`WildcardRule`] lowered to value/mask words over a [`FlowKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledRule {
    km: KeyMatch,
}

impl CompiledRule {
    /// Lower `rule`. Exact: matches the same packets as
    /// [`WildcardRule::matches`].
    pub fn compile(rule: &WildcardRule) -> CompiledRule {
        let mut km = KeyMatch::new();
        if let Some(m) = rule.src_mac {
            km.require_src_mac(m);
        }
        if let Some(m) = rule.dst_mac {
            km.require_dst_mac(m);
        }
        if let Some(t) = rule.ethertype {
            km.require_ethertype(t);
        }
        if let Some(vid) = rule.vlan {
            km.require_vlan(vid);
        }
        if let Some(prefix) = rule.src_ip {
            km.require_src_ip(prefix);
        }
        if let Some(prefix) = rule.dst_ip {
            km.require_dst_ip(prefix);
        }
        if let Some(proto) = rule.ip_protocol {
            km.require_ip_protocol(proto);
        }
        if let Some(port) = rule.src_port {
            km.require_src_port(port);
        }
        if let Some(port) = rule.dst_port {
            km.require_dst_port(port);
        }
        CompiledRule { km }
    }

    /// Whether `key` satisfies every named field: eight masked compares.
    #[inline]
    pub fn matches(&self, key: &FlowKey) -> bool {
        self.km.matches(key)
    }

    /// Match every occupied lane of `block` at once (see
    /// [`KeyMatch::matches_block`]). Exactly equivalent to eight
    /// [`CompiledRule::matches`] calls.
    #[inline]
    pub fn matches_block(&self, block: &FlowKeyBlock) -> u8 {
        self.km.matches_block(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ethernet::EthernetHeader;
    use crate::ipv4::protocol;
    use crate::wildcard::IpPrefix;
    use crate::Packet;
    use core::net::{Ipv4Addr, Ipv6Addr};

    /// A shape-diverse frame corpus: every layer combination the parser
    /// can produce.
    fn corpus() -> Vec<Packet> {
        let v4 = |s: u8, sp: u16, dp: u16| {
            PacketBuilder::ethernet(MacAddr::local(s), MacAddr::local(2))
                .ipv4(Ipv4Addr::new(10, 0, 0, s), Ipv4Addr::new(192, 168, 1, 2))
                .udp(sp, dp)
                .build()
        };
        let mut frames = vec![
            v4(1, 5000, 9000),
            v4(1, 0, 0),
            v4(7, 53, 53),
            PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
                .vlan(42)
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                .udp(1, 2)
                .build(),
            PacketBuilder::ethernet(MacAddr::local(3), MacAddr::local(4))
                .ipv6(
                    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
                    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
                )
                .udp(5000, 9000)
                .build(),
            // A zeroed frame: MACs 00:…:00, EtherType 0 — the aliasing
            // trap presence flags exist to defuse.
            Packet::zeroed(64),
        ];
        // Non-IP ethertype, and a truncated-at-IP frame (ports zeroed).
        let mut raw = Vec::new();
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(9),
            ethertype: 0x88B5,
        }
        .write_to(&mut raw);
        raw.extend_from_slice(&[0u8; 50]);
        frames.push(Packet::from_vec(raw));
        frames.push(Packet::from_vec(vec![0u8; 5]));
        frames
    }

    fn rules() -> Vec<WildcardRule> {
        let any = WildcardRule::any;
        vec![
            any(),
            any().with_src_mac(MacAddr::local(1)),
            any().with_src_mac(MacAddr([0; 6])),
            any().with_dst_mac(MacAddr::local(2)),
            any().with_ethertype(crate::ethernet::ethertype::IPV4),
            any().with_ethertype(0),
            any().with_vlan(42),
            any().with_vlan(0),
            any().with_src_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 0)), 24)),
            any().with_src_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::UNSPECIFIED), 0)),
            any().with_src_ip(IpPrefix::host(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)))),
            any().with_dst_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::new(192, 168, 0, 0)), 16)),
            any().with_src_ip(IpPrefix::new(
                IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0)),
                32,
            )),
            any().with_src_ip(IpPrefix::new(IpAddr::V6(Ipv6Addr::UNSPECIFIED), 0)),
            any().with_ip_protocol(protocol::UDP),
            any().with_ip_protocol(0),
            any().with_src_port(5000),
            any().with_dst_port(9000),
            any().with_src_port(0),
            any().with_dst_port(0),
            any()
                .with_src_mac(MacAddr::local(1))
                .with_ethertype(crate::ethernet::ethertype::IPV4)
                .with_src_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 0)), 8))
                .with_ip_protocol(protocol::UDP)
                .with_dst_port(9000),
        ]
    }

    #[test]
    fn compiled_rules_match_exactly_like_interpreted() {
        for rule in rules() {
            let compiled = CompiledRule::compile(&rule);
            for frame in corpus() {
                let parsed = frame.parse();
                let key = FlowKey::extract(&parsed);
                assert_eq!(
                    compiled.matches(&key),
                    rule.matches(&parsed),
                    "divergence: rule {rule:?} on frame {:02x?}",
                    frame.data()
                );
            }
        }
    }

    #[test]
    fn presence_flags_defuse_zero_field_aliasing() {
        // A 5-byte runt parses to nothing; its key is all-zero words.
        // Rules naming zero-valued fields must still miss it.
        let key = FlowKey::of_bytes(&[0u8; 5]);
        assert_eq!(key.words, [0u64; KEY_WORDS]);
        for rule in [
            WildcardRule::any().with_src_mac(MacAddr([0; 6])),
            WildcardRule::any().with_ethertype(0),
            WildcardRule::any().with_vlan(0),
            WildcardRule::any().with_ip_protocol(0),
            WildcardRule::any().with_dst_port(0),
        ] {
            assert!(!CompiledRule::compile(&rule).matches(&key));
        }
        // The all-wildcard rule still matches everything.
        assert!(CompiledRule::compile(&WildcardRule::any()).matches(&key));
    }

    #[test]
    fn block_matching_equals_per_lane_matching() {
        // Every rule × every block fill level: matches_block bit i must
        // equal matches() on lane i's key, with unoccupied lanes 0.
        let frames = corpus();
        for rule in rules() {
            let compiled = CompiledRule::compile(&rule);
            let mut block = FlowKeyBlock::new();
            let mut expect = 0u8;
            for (i, frame) in frames.iter().take(BLOCK_LANES).enumerate() {
                let key = FlowKey::extract(&frame.parse());
                let lane = block.push(&key);
                assert_eq!(lane, i);
                expect |= u8::from(compiled.matches(&key)) << lane;
                // Partial fills must agree too (mask of occupied lanes).
                assert_eq!(
                    compiled.matches_block(&block),
                    expect,
                    "rule {rule:?} at fill {}",
                    block.len()
                );
            }
        }
    }

    #[test]
    fn block_roundtrips_keys_and_clears() {
        let frames = corpus();
        let keys: Vec<FlowKey> = frames
            .iter()
            .map(|f| FlowKey::extract(&f.parse()))
            .collect();
        let mut block = FlowKeyBlock::new();
        for k in keys.iter().take(BLOCK_LANES) {
            block.push(k);
        }
        for (i, k) in keys.iter().take(BLOCK_LANES).enumerate() {
            assert_eq!(block.key(i), *k);
        }
        block.clear();
        assert!(block.is_empty());
        assert_eq!(
            CompiledRule::compile(&WildcardRule::any()).matches_block(&block),
            0,
            "empty block matches nothing"
        );
    }

    #[test]
    fn masked_key_equality_is_exactly_matching() {
        // The tuple-space identity: for every rule and frame,
        // `km.matches(key)` ⇔ `key.masked(km.mask) == km.value`.
        for rule in rules() {
            let km = CompiledRule::compile(&rule).km;
            for frame in corpus() {
                let key = FlowKey::extract(&frame.parse());
                assert_eq!(
                    km.matches(&key),
                    &key.masked(km.mask_words()) == km.value_words(),
                    "identity broke: rule {rule:?} frame {:02x?}",
                    frame.data()
                );
            }
        }
    }

    #[test]
    fn masked_lane_equals_masked_key() {
        let frames = corpus();
        let mask: [u64; KEY_WORDS] = [MAC_MASK, !0, 0, !0, 0, 0xffff_ffff, 0xffff, 0b111111];
        let mut block = FlowKeyBlock::new();
        for (lane, frame) in frames.iter().take(BLOCK_LANES).enumerate() {
            let key = FlowKey::extract(&frame.parse());
            block.push(&key);
            assert_eq!(block.masked_lane(lane, &mask), key.masked(&mask));
        }
    }

    #[test]
    fn one_extraction_serves_many_rules() {
        let frame = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .udp(5000, 9000)
            .build();
        let key = FlowKey::extract(&frame.parse());
        assert!(CompiledRule::compile(&WildcardRule::any().with_dst_port(9000)).matches(&key));
        assert!(!CompiledRule::compile(&WildcardRule::any().with_dst_port(9001)).matches(&key));
        assert!(
            CompiledRule::compile(&WildcardRule::any().with_ip_protocol(protocol::UDP))
                .matches(&key)
        );
    }
}
