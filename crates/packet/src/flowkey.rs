//! Compiled wildcard matching: fixed-width flow keys and masked-word
//! rules.
//!
//! [`crate::WildcardRule::matches`] re-walks a [`ParsedPacket`]'s
//! `Option` fields per rule — fine for a handful of rules, ruinous for a
//! filter-heavy monitor table where every frame pays the whole walk at
//! line rate. This module lowers both sides of the comparison to flat
//! machine words:
//!
//! * [`FlowKey::extract`] packs every filterable header field of one
//!   parsed frame into eight `u64` words (one parse, one extraction per
//!   packet, shared by every rule), and
//! * [`CompiledRule::compile`] lowers a `WildcardRule` into a
//!   value/mask pair over the same words, so a match is eight
//!   `(key & mask) == value` compares with no branches on header shape.
//!
//! `Option` semantics ("a named field requires its layer to exist")
//! survive lowering through the presence-flag word: a rule naming
//! `dst_port` also demands the `HAS_L4` bit, so an ARP frame whose key
//! holds zeroed port bits can never match a `dst_port == 0` rule by
//! accident. [`CompiledRule::compile`] is exact by construction —
//! `compiled.matches(&FlowKey::extract(&p)) == rule.matches(&p)` for
//! every frame, pinned by the corpus test below and the proptest suite.

use crate::mac::MacAddr;
use crate::parser::{ParsedPacket, L3};
use crate::wildcard::WildcardRule;
use core::net::IpAddr;

/// Number of `u64` words in a [`FlowKey`].
pub const KEY_WORDS: usize = 8;

// Word layout (field → word, bit position):
//   w0: src MAC (bits 0..48) | effective EtherType (bits 48..64)
//   w1: dst MAC (bits 0..48) | VLAN vid (bits 48..64)
//   w2: src IP high 64 bits (IPv6; zero for IPv4)
//   w3: src IP low 64 bits (IPv6) or the IPv4 address (bits 0..32)
//   w4: dst IP high 64 bits
//   w5: dst IP low 64 bits / IPv4 address
//   w6: src port (bits 0..16) | dst port (bits 16..32) | IP proto (32..40)
//   w7: presence flags (see the `flag` constants)
const W_SRC: usize = 0;
const W_DST: usize = 1;
const W_SIP_HI: usize = 2;
const W_SIP_LO: usize = 3;
const W_DIP_HI: usize = 4;
const W_DIP_LO: usize = 5;
const W_L4: usize = 6;
const W_FLAGS: usize = 7;

const MAC_MASK: u64 = (1 << 48) - 1;
const ETHERTYPE_SHIFT: u32 = 48;
const VID_SHIFT: u32 = 48;
const DPORT_SHIFT: u32 = 16;
const PROTO_SHIFT: u32 = 32;

/// Presence flags stored in word 7 of a [`FlowKey`]. A compiled rule
/// that names a field also requires the flag of the layer carrying it,
/// which is how `Option`-field semantics survive the lowering.
pub mod flag {
    /// An Ethernet header was parsed.
    pub const HAS_ETH: u64 = 1 << 0;
    /// An 802.1Q tag is present.
    pub const HAS_VLAN: u64 = 1 << 1;
    /// The frame is IP (v4 or v6).
    pub const HAS_IP: u64 = 1 << 2;
    /// The frame is IPv4.
    pub const IS_V4: u64 = 1 << 3;
    /// The frame is IPv6.
    pub const IS_V6: u64 = 1 << 4;
    /// A transport summary exists (every IP frame has one; ports are
    /// zero when the transport header is truncated or portless).
    pub const HAS_L4: u64 = 1 << 5;
}

#[inline]
fn mac_bits(m: MacAddr) -> u64 {
    m.octets().iter().fold(0u64, |a, &b| (a << 8) | b as u64)
}

/// Every filterable header field of one frame, pre-extracted into
/// fixed-width words. Extract once per packet, match against any number
/// of [`CompiledRule`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowKey {
    /// The packed field words (layout documented in the module source).
    pub words: [u64; KEY_WORDS],
}

impl FlowKey {
    /// Pack `p`'s header fields. Absent layers leave their words zero
    /// and their presence flags clear.
    pub fn extract(p: &ParsedPacket<'_>) -> FlowKey {
        let mut w = [0u64; KEY_WORDS];
        let mut flags = 0u64;
        if let Some(eth) = p.ethernet {
            flags |= flag::HAS_ETH;
            w[W_SRC] = mac_bits(eth.src);
            w[W_DST] = mac_bits(eth.dst);
            // `effective_ethertype` is Some exactly when ethernet is.
            if let Some(t) = p.effective_ethertype() {
                w[W_SRC] |= (t as u64) << ETHERTYPE_SHIFT;
            }
        }
        if let Some(tag) = p.vlan {
            flags |= flag::HAS_VLAN;
            w[W_DST] |= (tag.vid as u64) << VID_SHIFT;
        }
        match p.l3 {
            Some(L3::Ipv4(h)) => {
                flags |= flag::HAS_IP | flag::IS_V4;
                w[W_SIP_LO] = u32::from(h.src) as u64;
                w[W_DIP_LO] = u32::from(h.dst) as u64;
            }
            Some(L3::Ipv6(h)) => {
                flags |= flag::HAS_IP | flag::IS_V6;
                let (s, d) = (u128::from(h.src), u128::from(h.dst));
                w[W_SIP_HI] = (s >> 64) as u64;
                w[W_SIP_LO] = s as u64;
                w[W_DIP_HI] = (d >> 64) as u64;
                w[W_DIP_LO] = d as u64;
            }
            _ => {}
        }
        if let Some(l4) = p.l4 {
            flags |= flag::HAS_L4;
            w[W_L4] = l4.src_port as u64
                | (l4.dst_port as u64) << DPORT_SHIFT
                | (l4.protocol as u64) << PROTO_SHIFT;
        }
        w[W_FLAGS] = flags;
        FlowKey { words: w }
    }

    /// Parse + extract in one call (the per-rule cost this module
    /// exists to avoid; use only where no parse is at hand).
    pub fn of_bytes(bytes: &[u8]) -> FlowKey {
        FlowKey::extract(&ParsedPacket::parse(bytes))
    }
}

/// A [`WildcardRule`] lowered to value/mask words over a [`FlowKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledRule {
    value: [u64; KEY_WORDS],
    mask: [u64; KEY_WORDS],
}

impl CompiledRule {
    /// Lower `rule`. Exact: matches the same packets as
    /// [`WildcardRule::matches`].
    pub fn compile(rule: &WildcardRule) -> CompiledRule {
        let mut value = [0u64; KEY_WORDS];
        let mut mask = [0u64; KEY_WORDS];
        let mut req_flags = 0u64;
        if let Some(m) = rule.src_mac {
            req_flags |= flag::HAS_ETH;
            mask[W_SRC] |= MAC_MASK;
            value[W_SRC] |= mac_bits(m);
        }
        if let Some(m) = rule.dst_mac {
            req_flags |= flag::HAS_ETH;
            mask[W_DST] |= MAC_MASK;
            value[W_DST] |= mac_bits(m);
        }
        if let Some(t) = rule.ethertype {
            req_flags |= flag::HAS_ETH;
            mask[W_SRC] |= 0xFFFF << ETHERTYPE_SHIFT;
            value[W_SRC] |= (t as u64) << ETHERTYPE_SHIFT;
        }
        if let Some(vid) = rule.vlan {
            req_flags |= flag::HAS_VLAN;
            mask[W_DST] |= 0xFFFF << VID_SHIFT;
            value[W_DST] |= (vid as u64) << VID_SHIFT;
        }
        if let Some(prefix) = rule.src_ip {
            compile_prefix(prefix, W_SIP_HI, W_SIP_LO, &mut value, &mut mask);
        }
        if let Some(prefix) = rule.dst_ip {
            compile_prefix(prefix, W_DIP_HI, W_DIP_LO, &mut value, &mut mask);
        }
        if let Some(proto) = rule.ip_protocol {
            req_flags |= flag::HAS_IP;
            mask[W_L4] |= 0xFF << PROTO_SHIFT;
            value[W_L4] |= (proto as u64) << PROTO_SHIFT;
        }
        if let Some(port) = rule.src_port {
            req_flags |= flag::HAS_L4;
            mask[W_L4] |= 0xFFFF;
            value[W_L4] |= port as u64;
        }
        if let Some(port) = rule.dst_port {
            req_flags |= flag::HAS_L4;
            mask[W_L4] |= 0xFFFF << DPORT_SHIFT;
            value[W_L4] |= (port as u64) << DPORT_SHIFT;
        }
        mask[W_FLAGS] |= req_flags;
        value[W_FLAGS] |= req_flags;
        CompiledRule { value, mask }
    }

    /// Whether `key` satisfies every named field: eight masked compares.
    #[inline]
    pub fn matches(&self, key: &FlowKey) -> bool {
        let mut diff = 0u64;
        for i in 0..KEY_WORDS {
            diff |= (key.words[i] & self.mask[i]) ^ self.value[i];
        }
        diff == 0
    }
}

/// Lower an IP-prefix match into address-word masks plus the family
/// flag. A zero-length prefix keeps only the family requirement —
/// exactly [`crate::wildcard::IpPrefix::contains`]'s behaviour.
fn compile_prefix(
    prefix: crate::wildcard::IpPrefix,
    w_hi: usize,
    w_lo: usize,
    value: &mut [u64; KEY_WORDS],
    mask: &mut [u64; KEY_WORDS],
) {
    match prefix.addr {
        IpAddr::V4(base) => {
            mask[W_FLAGS] |= flag::IS_V4;
            value[W_FLAGS] |= flag::IS_V4;
            let plen = prefix.prefix_len.min(32) as u32;
            if plen > 0 {
                let m = (!0u32) << (32 - plen);
                mask[w_lo] |= m as u64;
                value[w_lo] |= (u32::from(base) & m) as u64;
            }
        }
        IpAddr::V6(base) => {
            mask[W_FLAGS] |= flag::IS_V6;
            value[W_FLAGS] |= flag::IS_V6;
            let plen = prefix.prefix_len.min(128) as u32;
            if plen > 0 {
                let m = (!0u128) << (128 - plen);
                let v = u128::from(base) & m;
                mask[w_hi] |= (m >> 64) as u64;
                mask[w_lo] |= m as u64;
                value[w_hi] |= (v >> 64) as u64;
                value[w_lo] |= v as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ethernet::EthernetHeader;
    use crate::ipv4::protocol;
    use crate::wildcard::IpPrefix;
    use crate::Packet;
    use core::net::{Ipv4Addr, Ipv6Addr};

    /// A shape-diverse frame corpus: every layer combination the parser
    /// can produce.
    fn corpus() -> Vec<Packet> {
        let v4 = |s: u8, sp: u16, dp: u16| {
            PacketBuilder::ethernet(MacAddr::local(s), MacAddr::local(2))
                .ipv4(Ipv4Addr::new(10, 0, 0, s), Ipv4Addr::new(192, 168, 1, 2))
                .udp(sp, dp)
                .build()
        };
        let mut frames = vec![
            v4(1, 5000, 9000),
            v4(1, 0, 0),
            v4(7, 53, 53),
            PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
                .vlan(42)
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                .udp(1, 2)
                .build(),
            PacketBuilder::ethernet(MacAddr::local(3), MacAddr::local(4))
                .ipv6(
                    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
                    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
                )
                .udp(5000, 9000)
                .build(),
            // A zeroed frame: MACs 00:…:00, EtherType 0 — the aliasing
            // trap presence flags exist to defuse.
            Packet::zeroed(64),
        ];
        // Non-IP ethertype, and a truncated-at-IP frame (ports zeroed).
        let mut raw = Vec::new();
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(9),
            ethertype: 0x88B5,
        }
        .write_to(&mut raw);
        raw.extend_from_slice(&[0u8; 50]);
        frames.push(Packet::from_vec(raw));
        frames.push(Packet::from_vec(vec![0u8; 5]));
        frames
    }

    fn rules() -> Vec<WildcardRule> {
        let any = WildcardRule::any;
        vec![
            any(),
            any().with_src_mac(MacAddr::local(1)),
            any().with_src_mac(MacAddr([0; 6])),
            any().with_dst_mac(MacAddr::local(2)),
            any().with_ethertype(crate::ethernet::ethertype::IPV4),
            any().with_ethertype(0),
            any().with_vlan(42),
            any().with_vlan(0),
            any().with_src_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 0)), 24)),
            any().with_src_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::UNSPECIFIED), 0)),
            any().with_src_ip(IpPrefix::host(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)))),
            any().with_dst_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::new(192, 168, 0, 0)), 16)),
            any().with_src_ip(IpPrefix::new(
                IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0)),
                32,
            )),
            any().with_src_ip(IpPrefix::new(IpAddr::V6(Ipv6Addr::UNSPECIFIED), 0)),
            any().with_ip_protocol(protocol::UDP),
            any().with_ip_protocol(0),
            any().with_src_port(5000),
            any().with_dst_port(9000),
            any().with_src_port(0),
            any().with_dst_port(0),
            any()
                .with_src_mac(MacAddr::local(1))
                .with_ethertype(crate::ethernet::ethertype::IPV4)
                .with_src_ip(IpPrefix::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 0)), 8))
                .with_ip_protocol(protocol::UDP)
                .with_dst_port(9000),
        ]
    }

    #[test]
    fn compiled_rules_match_exactly_like_interpreted() {
        for rule in rules() {
            let compiled = CompiledRule::compile(&rule);
            for frame in corpus() {
                let parsed = frame.parse();
                let key = FlowKey::extract(&parsed);
                assert_eq!(
                    compiled.matches(&key),
                    rule.matches(&parsed),
                    "divergence: rule {rule:?} on frame {:02x?}",
                    frame.data()
                );
            }
        }
    }

    #[test]
    fn presence_flags_defuse_zero_field_aliasing() {
        // A 5-byte runt parses to nothing; its key is all-zero words.
        // Rules naming zero-valued fields must still miss it.
        let key = FlowKey::of_bytes(&[0u8; 5]);
        assert_eq!(key.words, [0u64; KEY_WORDS]);
        for rule in [
            WildcardRule::any().with_src_mac(MacAddr([0; 6])),
            WildcardRule::any().with_ethertype(0),
            WildcardRule::any().with_vlan(0),
            WildcardRule::any().with_ip_protocol(0),
            WildcardRule::any().with_dst_port(0),
        ] {
            assert!(!CompiledRule::compile(&rule).matches(&key));
        }
        // The all-wildcard rule still matches everything.
        assert!(CompiledRule::compile(&WildcardRule::any()).matches(&key));
    }

    #[test]
    fn one_extraction_serves_many_rules() {
        let frame = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .udp(5000, 9000)
            .build();
        let key = FlowKey::extract(&frame.parse());
        assert!(CompiledRule::compile(&WildcardRule::any().with_dst_port(9000)).matches(&key));
        assert!(!CompiledRule::compile(&WildcardRule::any().with_dst_port(9001)).matches(&key));
        assert!(
            CompiledRule::compile(&WildcardRule::any().with_ip_protocol(protocol::UDP))
                .matches(&key)
        );
    }
}
