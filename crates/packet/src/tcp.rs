//! TCP headers (RFC 9293). Options are not modelled (data offset is fixed
//! at 5 words), which is all the generator and filters need.

use crate::parser::ParseError;

/// Length of a TCP header without options.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits.
pub mod flags {
    /// Final segment.
    pub const FIN: u8 = 0x01;
    /// Synchronise sequence numbers.
    pub const SYN: u8 = 0x02;
    /// Reset connection.
    pub const RST: u8 = 0x04;
    /// Push.
    pub const PSH: u8 = 0x08;
    /// Acknowledgement valid.
    pub const ACK: u8 = 0x10;
    /// Urgent pointer valid.
    pub const URG: u8 = 0x20;
}

/// A TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag byte (see [`flags`]).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
    /// Checksum (zero until computed).
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
}

impl TcpHeader {
    /// A plain data segment header.
    pub fn new(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: flags::ACK,
            window: 65_535,
            checksum: 0,
            urgent: 0,
        }
    }

    /// Parse from the start of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "tcp",
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let data_offset = (bytes[12] >> 4) as usize;
        if data_offset != 5 {
            return Err(ParseError::Unsupported {
                layer: "tcp",
                what: "TCP options are not supported (data offset must be 5)",
            });
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            flags: bytes[13],
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
            checksum: u16::from_be_bytes([bytes[16], bytes[17]]),
            urgent: u16::from_be_bytes([bytes[18], bytes[19]]),
        })
    }

    /// Append the serialised header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset 5, reserved 0
        out.push(self.flags);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(&self.urgent.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut h = TcpHeader::new(80, 50_000, 0xdead_beef);
        h.flags = flags::SYN | flags::ACK;
        h.ack = 42;
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(TcpHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn options_rejected() {
        let mut buf = Vec::new();
        TcpHeader::new(1, 2, 3).write_to(&mut buf);
        buf[12] = 6 << 4;
        assert!(matches!(
            TcpHeader::parse(&buf),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn truncated() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
    }
}
