#![warn(missing_docs)]
//! # osnt-packet — packets, protocols, filters and pcap I/O
//!
//! Everything OSNT-rs knows about bytes on the wire lives here:
//!
//! * [`Packet`] — an Ethernet frame (layer 2 through payload, excluding
//!   preamble and FCS) over cheaply-cloneable shared storage with
//!   copy-on-write mutation, plus the wire-length arithmetic that the
//!   10 GbE MAC imposes.
//! * [`pool`] — a recycling [`PacketPool`] that eliminates per-frame
//!   heap allocation on the generate → deliver → drop fast path.
//! * Protocol headers — [`mac`], [`ethernet`], [`vlan`], [`arp`],
//!   [`ipv4`], [`ipv6`], [`udp`], [`tcp`], [`icmp`] with parse *and* build
//!   support and checksum handling ([`checksum`]).
//! * [`builder`] — a fluent builder that assembles correct frames
//!   (lengths and checksums filled in) for the traffic generator.
//! * [`parser`] — a zero-copy header-offset parser, the input to
//!   filtering and flow extraction.
//! * [`flow`] / [`wildcard`] — 5-tuple flow keys and the wildcard match
//!   rules used by the OSNT monitor's hardware filters and by the
//!   OpenFlow switch model's flow table.
//! * [`hash`] — CRC-32 and Toeplitz hashing, as used by the monitor's
//!   packet-thinning stage.
//! * [`pcap`] — libpcap classic (microsecond) and nanosecond file
//!   read/write, used by the generator's PCAP-replay function and the
//!   monitor's capture sink.

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod flowkey;
pub mod hash;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod mac;
pub mod parser;
pub mod pcap;
pub mod pool;
pub mod tcp;
pub mod udp;
pub mod vlan;
pub mod wildcard;

pub use builder::PacketBuilder;
pub use flow::FiveTuple;
pub use flowkey::{CompiledRule, FlowKey, FlowKeyBlock, KeyMatch, BLOCK_LANES, KEY_WORDS};
pub use hash::{fx_hash_words, FxBuildHasher, FxHasher64};
pub use mac::MacAddr;
pub use parser::ParsedPacket;
pub use pool::PacketPool;
pub use wildcard::{IpPrefix, WildcardRule};

use core::fmt;
use std::rc::{Rc, Weak};

/// Length of the Ethernet frame check sequence (FCS), bytes. Frames in
/// OSNT-rs carry data *without* the FCS; [`Packet::wire_len`] adds it
/// back.
pub const FCS_LEN: usize = 4;

/// Preamble (7) + start-of-frame delimiter (1), bytes.
pub const PREAMBLE_LEN: usize = 8;

/// Minimum inter-frame gap, bytes (12 byte times at line rate).
pub const IFG_LEN: usize = 12;

/// Per-frame overhead on the wire beyond the frame itself:
/// preamble + SFD + inter-frame gap = 20 bytes.
pub const WIRE_OVERHEAD: usize = PREAMBLE_LEN + IFG_LEN;

/// Minimum Ethernet frame size including FCS (64 bytes), i.e. the
/// conventional "64-byte packet" of line-rate tables.
pub const MIN_FRAME: usize = 64;

/// Maximum standard Ethernet frame size including FCS (1518 bytes).
pub const MAX_FRAME: usize = 1518;

/// An Ethernet frame over cheaply-shareable storage.
///
/// The frame bytes hold destination MAC through the end of the payload;
/// the 4-byte FCS is *not* stored (hardware strips it) but *is*
/// accounted for in [`Packet::frame_len`] / [`Packet::wire_len`], so "a
/// 64-byte packet" carries 60 bytes of data. Instead of carrying FCS
/// bytes, each packet carries an [`Packet::fcs_ok`] verdict: in-flight
/// corruption ([`Packet::flip_bit`]) clears it, exactly as any bit flip
/// after the transmitting MAC computed the FCS would make the receiving
/// MAC's check fail. Receivers (the OSNT monitor, switches) consult the
/// verdict and count CRC errors instead of silently delivering mangled
/// frames.
///
/// # Sharing and copy-on-write
///
/// Storage is a reference-counted buffer: [`Clone`] is a refcount bump
/// (no byte copy), which makes fan-out paths — switch flooding, monitor
/// capture, PCAP replay — O(1) per copy. Mutation goes through
/// [`Packet::data_mut`], which copies the visible bytes into a fresh
/// (or pooled, see [`pool::PacketPool`]) buffer first if the storage is
/// shared, so clones never observe each other's writes. Equality and
/// hashing are by visible bytes, exactly as with the old owned-`Vec`
/// representation. [`Packet::truncate`] only moves the visible-length
/// mark, so thinning a captured copy is O(1) and leaves the original
/// untouched.
#[derive(Clone)]
pub struct Packet {
    buf: Rc<pool::PoolBuf>,
    /// Visible prefix of `buf.data`: invariant `len <= buf.data.len()`.
    len: usize,
    /// Whether the (implicit) frame check sequence still verifies — false
    /// after in-flight corruption.
    fcs_ok: bool,
}

impl Packet {
    /// Wrap raw frame bytes (L2 header .. payload, no FCS).
    pub fn from_vec(data: Vec<u8>) -> Self {
        let len = data.len();
        Packet {
            buf: Rc::new(pool::PoolBuf {
                data,
                home: Weak::new(),
            }),
            len,
            fcs_ok: true,
        }
    }

    /// Build a frame of conventional size `frame_len` (incl. FCS) filled
    /// with zeros. Panics if `frame_len < 18` (a frame must at least hold
    /// an Ethernet header + FCS).
    pub fn zeroed(frame_len: usize) -> Self {
        assert!(frame_len >= ethernet::HEADER_LEN + FCS_LEN);
        Packet::from_vec(vec![0; frame_len - FCS_LEN])
    }

    /// Assemble from a pool-owned buffer (used by [`pool::PacketPool`]).
    pub(crate) fn from_pool_parts(data: Vec<u8>, home: Weak<pool::PoolInner>) -> Self {
        let len = data.len();
        Packet {
            buf: Rc::new(pool::PoolBuf { data, home }),
            len,
            fcs_ok: true,
        }
    }

    /// Frame bytes (no FCS).
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.buf.data[..self.len]
    }

    /// Mutable frame bytes. If the storage is shared with clones, the
    /// visible bytes are first copied into a private buffer
    /// (copy-on-write) — drawn from the packet's home pool when it has
    /// one.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        if Rc::strong_count(&self.buf) != 1 {
            self.unshare();
        }
        let buf = Rc::get_mut(&mut self.buf).expect("unshared above");
        &mut buf.data[..self.len]
    }

    /// Copy the visible bytes into private storage (the slow path of
    /// [`Packet::data_mut`], kept out of line).
    #[cold]
    fn unshare(&mut self) {
        let mut data = match self.buf.home.upgrade() {
            Some(pool) => pool.take_buf(self.len),
            None => Vec::with_capacity(self.len),
        };
        data.extend_from_slice(&self.buf.data[..self.len]);
        self.buf = Rc::new(pool::PoolBuf {
            data,
            home: self.buf.home.clone(),
        });
    }

    /// True if clones currently share this packet's storage (mutating
    /// through [`Packet::data_mut`] would copy).
    #[inline]
    pub fn is_shared(&self) -> bool {
        Rc::strong_count(&self.buf) != 1
    }

    /// Consume into an owned buffer of the visible bytes. Steals the
    /// storage without copying when this packet is the sole owner.
    pub fn into_vec(self) -> Vec<u8> {
        let len = self.len;
        match Rc::try_unwrap(self.buf) {
            Ok(mut pb) => {
                // Sole owner: steal. `PoolBuf::drop` then sees an empty
                // vec, which the pool declines to keep.
                let mut data = core::mem::take(&mut pb.data);
                data.truncate(len);
                data
            }
            Err(shared) => shared.data[..len].to_vec(),
        }
    }

    /// Stored length (no FCS).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the frame holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Conventional frame length: stored bytes + FCS. This is the "packet
    /// size" of every table in the paper (64…1518).
    #[inline]
    pub fn frame_len(&self) -> usize {
        self.len + FCS_LEN
    }

    /// Bytes this frame occupies on the wire including preamble, SFD and
    /// the minimum inter-frame gap: `frame_len + 20`.
    ///
    /// At 10 Gb/s each byte takes 800 ps, so a 64-byte frame occupies
    /// 84 B × 800 ps = 67.2 ns → 14.88 Mpps, the classic line-rate figure.
    #[inline]
    pub fn wire_len(&self) -> usize {
        self.frame_len() + WIRE_OVERHEAD
    }

    /// Truncate the stored frame to at most `keep` bytes (packet
    /// *thinning* / snapping). The conventional `frame_len` shrinks
    /// accordingly; callers that need the original length must record it
    /// before cutting. O(1): only the visible-length mark moves, shared
    /// storage is untouched.
    pub fn truncate(&mut self, keep: usize) {
        self.len = self.len.min(keep);
    }

    /// Parse the frame's headers (convenience for
    /// [`ParsedPacket::parse`]).
    pub fn parse(&self) -> ParsedPacket<'_> {
        ParsedPacket::parse(self.data())
    }

    /// Whether the frame's FCS would still verify at a receiving MAC.
    /// True for every freshly built frame; cleared by in-flight
    /// corruption ([`Packet::flip_bit`] / [`Packet::mark_fcs_bad`]).
    #[inline]
    pub fn fcs_ok(&self) -> bool {
        self.fcs_ok
    }

    /// Corrupt the frame in flight: flip bit `bit` (indexed over the
    /// visible bytes, MSB first within each byte, reduced modulo the
    /// frame's bit length) and invalidate the FCS. Copy-on-write applies,
    /// so corrupting a captured/forwarded clone never touches siblings.
    /// No-op on empty frames.
    pub fn flip_bit(&mut self, bit: usize) {
        if self.len == 0 {
            return;
        }
        let bit = bit % (self.len * 8);
        self.data_mut()[bit / 8] ^= 0x80 >> (bit % 8);
        self.fcs_ok = false;
    }

    /// Invalidate the FCS without touching the bytes (models corruption
    /// confined to the FCS trailer itself, which OSNT-rs does not store).
    pub fn mark_fcs_bad(&mut self) {
        self.fcs_ok = false;
    }

    /// Flatten into a thread-portable [`SendPacket`] for cross-shard
    /// handoff. Steals the storage without copying when this packet is
    /// the sole owner of its buffer (the common case for a frame in
    /// flight); copies the visible bytes otherwise. The home pool, if
    /// any, is left behind — the receiving shard re-homes the frame into
    /// its own pool domain.
    pub fn into_send(self) -> SendPacket {
        let fcs_ok = self.fcs_ok;
        SendPacket {
            data: self.into_vec(),
            fcs_ok,
        }
    }
}

/// A [`Packet`] flattened to plain owned bytes so it can cross a thread
/// boundary (`Packet` itself is deliberately `!Send`: its storage is
/// `Rc`-shared within one shard of the simulation).
///
/// Produced by [`Packet::into_send`] on the sending shard, consumed by
/// [`SendPacket::into_packet`] on the receiving shard. The round trip
/// preserves everything a receiver can observe: the visible bytes (so
/// `frame_len`/`wire_len` are unchanged, including any truncation the
/// sender applied) and the FCS verdict. No atomics are needed at all:
/// ownership transfers wholesale, and intra-shard clones made after
/// reconstruction go back to plain `Rc` counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendPacket {
    data: Vec<u8>,
    fcs_ok: bool,
}

impl SendPacket {
    /// Rebuild a [`Packet`] on the receiving shard. Zero-copy: the byte
    /// buffer carried across the boundary becomes the packet's storage.
    pub fn into_packet(self) -> Packet {
        let mut p = Packet::from_vec(self.data);
        if !self.fcs_ok {
            p.mark_fcs_bad();
        }
        p
    }

    /// Rebuild a [`Packet`] on the receiving shard **homed into
    /// `pool`**: zero-copy like [`SendPacket::into_packet`], but the
    /// carried buffer is adopted by the pool, so when the packet's last
    /// owner drops, the storage parks on *this* pool's free list
    /// instead of going back to the global allocator. This is what
    /// keeps cross-shard traffic from bouncing allocator state between
    /// cores: each shard recycles every buffer it retires — including
    /// ones another shard allocated — entirely shard-locally.
    pub fn into_packet_pooled(self, pool: &pool::PacketPool) -> Packet {
        let mut p = Packet::from_pool_parts(self.data, pool.handle());
        if !self.fcs_ok {
            p.mark_fcs_bad();
        }
        p
    }

    /// Conventional frame length (stored bytes + FCS), as
    /// [`Packet::frame_len`] would report after reconstruction.
    pub fn frame_len(&self) -> usize {
        self.data.len() + FCS_LEN
    }
}

// `SendPacket` exists to cross threads; hold the compiler to that.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SendPacket>();
};

impl PartialEq for Packet {
    /// Content equality over the visible bytes (clones and deep copies
    /// compare equal regardless of storage sharing).
    fn eq(&self, other: &Self) -> bool {
        self.data() == other.data()
    }
}

impl Eq for Packet {}

impl core::hash::Hash for Packet {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.data().hash(state);
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet({}B", self.frame_len())?;
        let p = self.parse();
        if let Some(ft) = p.five_tuple() {
            write!(f, " {ft}")?;
        }
        write!(f, ")")
    }
}

impl AsRef<[u8]> for Packet {
    fn as_ref(&self) -> &[u8] {
        self.data()
    }
}

/// Number of bits a frame of conventional length `frame_len` occupies on
/// the wire (including preamble/SFD/IFG overhead).
pub const fn wire_bits(frame_len: usize) -> u64 {
    ((frame_len + WIRE_OVERHEAD) as u64) * 8
}

/// Theoretical maximum frames/second at `line_rate_bps` for frames of
/// conventional length `frame_len`.
pub fn line_rate_pps(line_rate_bps: u64, frame_len: usize) -> f64 {
    line_rate_bps as f64 / wire_bits(frame_len) as f64
}

/// Theoretical maximum *frame* throughput (frame bits per second, the
/// usual "achieved bandwidth" metric) at `line_rate_bps` for frames of
/// conventional length `frame_len`.
pub fn line_rate_goodput_bps(line_rate_bps: u64, frame_len: usize) -> f64 {
    line_rate_pps(line_rate_bps, frame_len) * (frame_len as f64) * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_accounts_for_overheads() {
        let p = Packet::zeroed(64);
        assert_eq!(p.len(), 60);
        assert_eq!(p.frame_len(), 64);
        assert_eq!(p.wire_len(), 84);
    }

    #[test]
    fn classic_line_rate_numbers() {
        // 10G, 64B frames → 14.880952... Mpps.
        let pps = line_rate_pps(10_000_000_000, 64);
        assert!((pps - 14_880_952.38).abs() < 1.0, "{pps}");
        // 1518B frames → 812743.8 pps.
        let pps = line_rate_pps(10_000_000_000, 1518);
        assert!((pps - 812_743.82).abs() < 1.0, "{pps}");
    }

    #[test]
    fn goodput_grows_with_frame_size() {
        let small = line_rate_goodput_bps(10_000_000_000, 64);
        let large = line_rate_goodput_bps(10_000_000_000, 1518);
        assert!(small < large);
        // 64B: 64/84 of line rate ≈ 7.62 Gb/s.
        assert!((small / 1e9 - 7.619).abs() < 0.01, "{small}");
        // 1518B: 1518/1538 ≈ 9.87 Gb/s.
        assert!((large / 1e9 - 9.87).abs() < 0.01, "{large}");
    }

    #[test]
    fn truncate_shrinks_frame() {
        let mut p = Packet::zeroed(1518);
        p.truncate(64);
        assert_eq!(p.len(), 64);
        assert_eq!(p.frame_len(), 68);
    }

    #[test]
    #[should_panic]
    fn zeroed_rejects_tiny_frames() {
        let _ = Packet::zeroed(10);
    }

    #[test]
    fn clone_shares_storage_until_written() {
        let mut a = Packet::from_vec((0u8..60).collect());
        let b = a.clone();
        assert!(a.is_shared() && b.is_shared());
        assert_eq!(a.data().as_ptr(), b.data().as_ptr());

        a.data_mut()[0] = 0xFF;
        assert!(!a.is_shared() && !b.is_shared());
        assert_eq!(a.data()[0], 0xFF);
        assert_eq!(b.data()[0], 0, "clone must not observe the write");
    }

    #[test]
    fn data_mut_without_sharing_does_not_copy() {
        let mut p = Packet::from_vec(vec![1; 60]);
        let before = p.data().as_ptr();
        p.data_mut()[5] = 9;
        assert_eq!(p.data().as_ptr(), before);
    }

    #[test]
    fn truncate_is_private_to_each_clone() {
        let original = Packet::zeroed(1518);
        let mut snap = original.clone();
        snap.truncate(40);
        assert_eq!(snap.len(), 40);
        assert_eq!(original.len(), 1514, "thinning a copy leaves the original");
        // Equality and hashing see only the visible prefix.
        assert_ne!(snap, original);
    }

    #[test]
    fn into_vec_steals_when_unique_and_copies_when_shared() {
        let p = Packet::from_vec(vec![7; 60]);
        let ptr = p.data().as_ptr();
        let v = p.into_vec();
        assert_eq!(v.as_ptr(), ptr, "unique owner steals the buffer");

        let p = Packet::from_vec(vec![8; 60]);
        let q = p.clone();
        let v = p.into_vec();
        assert_eq!(v, q.data());
        assert_ne!(v.as_ptr(), q.data().as_ptr());
    }

    #[test]
    fn into_vec_respects_truncation() {
        let mut p = Packet::from_vec((0u8..60).collect());
        p.truncate(10);
        assert_eq!(p.clone().into_vec().len(), 10); // shared path
        assert_eq!(p.into_vec().len(), 10); // steal path
    }

    #[test]
    fn flip_bit_corrupts_and_invalidates_fcs() {
        let mut p = Packet::zeroed(64);
        assert!(p.fcs_ok());
        p.flip_bit(0);
        assert!(!p.fcs_ok());
        assert_eq!(p.data()[0], 0x80, "MSB of byte 0 flipped");
        // Bit index wraps modulo the frame length.
        let mut q = Packet::zeroed(64);
        q.flip_bit(60 * 8 + 1);
        assert_eq!(q.data()[0], 0x40);
    }

    #[test]
    fn corrupting_a_clone_is_private() {
        let template = Packet::zeroed(64);
        let mut hit = template.clone();
        hit.flip_bit(37);
        assert!(!hit.fcs_ok());
        assert!(template.fcs_ok(), "template keeps a good FCS");
        assert_eq!(template.data()[4], 0, "template bytes untouched");
        assert_ne!(hit, template);
    }

    #[test]
    fn mark_fcs_bad_leaves_bytes_alone() {
        let mut p = Packet::from_vec(vec![5; 60]);
        p.mark_fcs_bad();
        assert!(!p.fcs_ok());
        assert_eq!(p.data(), &[5; 60][..]);
    }

    #[test]
    fn send_roundtrip_preserves_observables() {
        let mut p = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4([10, 0, 0, 1].into(), [10, 0, 0, 2].into())
            .udp(5001, 9001)
            .pad_to_frame(256)
            .build();
        p.truncate(100);
        p.mark_fcs_bad();
        let reference = (p.data().to_vec(), p.frame_len(), p.fcs_ok());
        let back = p.into_send().into_packet();
        assert_eq!(back.data(), &reference.0[..]);
        assert_eq!(back.frame_len(), reference.1);
        assert_eq!(back.fcs_ok(), reference.2);
    }

    #[test]
    fn pooled_reconstruction_is_zero_copy_and_rehomes() {
        let pool = pool::PacketPool::new();
        let mut p = Packet::from_vec(vec![3; 60]);
        p.mark_fcs_bad();
        let ptr = p.data().as_ptr();
        let back = p.into_send().into_packet_pooled(&pool);
        // Zero-copy: the buffer that crossed the boundary is the
        // storage of the reconstructed packet.
        assert_eq!(back.data().as_ptr(), ptr);
        assert!(!back.fcs_ok());
        assert_eq!(back.data(), &[3; 60][..]);
        // Rehomed: retiring the packet parks the buffer on the
        // receiving pool's free list.
        drop(back);
        assert_eq!(pool.free_buffers(), 1);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn into_send_steals_when_unique() {
        // Unique owner: the buffer pointer survives the round trip.
        let p = Packet::from_vec(vec![7; 60]);
        let ptr = p.data().as_ptr();
        let back = p.into_send().into_packet();
        assert_eq!(back.data().as_ptr(), ptr);
        // Shared: the flattening copies, siblings are untouched.
        let a = Packet::from_vec(vec![9; 60]);
        let b = a.clone();
        let sent = b.into_send();
        assert_eq!(sent.frame_len(), a.frame_len());
        assert_eq!(a.data(), &[9; 60][..]);
    }

    #[test]
    fn equality_ignores_storage_strategy() {
        let a = Packet::from_vec(vec![3; 60]);
        let pool = pool::PacketPool::new();
        let b = pool.from_slice(a.data());
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }
}
