#![warn(missing_docs)]
//! # osnt-packet — packets, protocols, filters and pcap I/O
//!
//! Everything OSNT-rs knows about bytes on the wire lives here:
//!
//! * [`Packet`] — an owned Ethernet frame (layer 2 through payload,
//!   excluding preamble and FCS) plus the wire-length arithmetic that the
//!   10 GbE MAC imposes.
//! * Protocol headers — [`mac`], [`ethernet`], [`vlan`], [`arp`],
//!   [`ipv4`], [`ipv6`], [`udp`], [`tcp`], [`icmp`] with parse *and* build
//!   support and checksum handling ([`checksum`]).
//! * [`builder`] — a fluent builder that assembles correct frames
//!   (lengths and checksums filled in) for the traffic generator.
//! * [`parser`] — a zero-copy header-offset parser, the input to
//!   filtering and flow extraction.
//! * [`flow`] / [`wildcard`] — 5-tuple flow keys and the wildcard match
//!   rules used by the OSNT monitor's hardware filters and by the
//!   OpenFlow switch model's flow table.
//! * [`hash`] — CRC-32 and Toeplitz hashing, as used by the monitor's
//!   packet-thinning stage.
//! * [`pcap`] — libpcap classic (microsecond) and nanosecond file
//!   read/write, used by the generator's PCAP-replay function and the
//!   monitor's capture sink.

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod hash;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod mac;
pub mod parser;
pub mod pcap;
pub mod tcp;
pub mod udp;
pub mod vlan;
pub mod wildcard;

pub use builder::PacketBuilder;
pub use flow::FiveTuple;
pub use mac::MacAddr;
pub use parser::ParsedPacket;
pub use wildcard::WildcardRule;

use core::fmt;

/// Length of the Ethernet frame check sequence (FCS), bytes. Frames in
/// OSNT-rs carry data *without* the FCS; [`Packet::wire_len`] adds it
/// back.
pub const FCS_LEN: usize = 4;

/// Preamble (7) + start-of-frame delimiter (1), bytes.
pub const PREAMBLE_LEN: usize = 8;

/// Minimum inter-frame gap, bytes (12 byte times at line rate).
pub const IFG_LEN: usize = 12;

/// Per-frame overhead on the wire beyond the frame itself:
/// preamble + SFD + inter-frame gap = 20 bytes.
pub const WIRE_OVERHEAD: usize = PREAMBLE_LEN + IFG_LEN;

/// Minimum Ethernet frame size including FCS (64 bytes), i.e. the
/// conventional "64-byte packet" of line-rate tables.
pub const MIN_FRAME: usize = 64;

/// Maximum standard Ethernet frame size including FCS (1518 bytes).
pub const MAX_FRAME: usize = 1518;

/// An owned Ethernet frame.
///
/// `data` holds destination MAC through the end of the payload; the 4-byte
/// FCS is *not* stored (the simulator never corrupts frames, and hardware
/// strips it) but *is* accounted for in [`Packet::frame_len`] /
/// [`Packet::wire_len`], so "a 64-byte packet" carries 60 bytes of `data`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    data: Vec<u8>,
}

impl Packet {
    /// Wrap raw frame bytes (L2 header .. payload, no FCS).
    pub fn from_vec(data: Vec<u8>) -> Self {
        Packet { data }
    }

    /// Build a frame of conventional size `frame_len` (incl. FCS) filled
    /// with zeros. Panics if `frame_len < 18` (a frame must at least hold
    /// an Ethernet header + FCS).
    pub fn zeroed(frame_len: usize) -> Self {
        assert!(frame_len >= ethernet::HEADER_LEN + FCS_LEN);
        Packet {
            data: vec![0; frame_len - FCS_LEN],
        }
    }

    /// Frame bytes (no FCS).
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable frame bytes.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Stored length (no FCS).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the frame holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Conventional frame length: stored bytes + FCS. This is the "packet
    /// size" of every table in the paper (64…1518).
    #[inline]
    pub fn frame_len(&self) -> usize {
        self.data.len() + FCS_LEN
    }

    /// Bytes this frame occupies on the wire including preamble, SFD and
    /// the minimum inter-frame gap: `frame_len + 20`.
    ///
    /// At 10 Gb/s each byte takes 800 ps, so a 64-byte frame occupies
    /// 84 B × 800 ps = 67.2 ns → 14.88 Mpps, the classic line-rate figure.
    #[inline]
    pub fn wire_len(&self) -> usize {
        self.frame_len() + WIRE_OVERHEAD
    }

    /// Truncate the stored frame to at most `keep` bytes (packet
    /// *thinning* / snapping). The conventional `frame_len` shrinks
    /// accordingly; callers that need the original length must record it
    /// before cutting.
    pub fn truncate(&mut self, keep: usize) {
        self.data.truncate(keep);
    }

    /// Parse the frame's headers (convenience for
    /// [`ParsedPacket::parse`]).
    pub fn parse(&self) -> ParsedPacket<'_> {
        ParsedPacket::parse(&self.data)
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet({}B", self.frame_len())?;
        let p = self.parse();
        if let Some(ft) = p.five_tuple() {
            write!(f, " {ft}")?;
        }
        write!(f, ")")
    }
}

impl AsRef<[u8]> for Packet {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Number of bits a frame of conventional length `frame_len` occupies on
/// the wire (including preamble/SFD/IFG overhead).
pub const fn wire_bits(frame_len: usize) -> u64 {
    ((frame_len + WIRE_OVERHEAD) as u64) * 8
}

/// Theoretical maximum frames/second at `line_rate_bps` for frames of
/// conventional length `frame_len`.
pub fn line_rate_pps(line_rate_bps: u64, frame_len: usize) -> f64 {
    line_rate_bps as f64 / wire_bits(frame_len) as f64
}

/// Theoretical maximum *frame* throughput (frame bits per second, the
/// usual "achieved bandwidth" metric) at `line_rate_bps` for frames of
/// conventional length `frame_len`.
pub fn line_rate_goodput_bps(line_rate_bps: u64, frame_len: usize) -> f64 {
    line_rate_pps(line_rate_bps, frame_len) * (frame_len as f64) * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_accounts_for_overheads() {
        let p = Packet::zeroed(64);
        assert_eq!(p.len(), 60);
        assert_eq!(p.frame_len(), 64);
        assert_eq!(p.wire_len(), 84);
    }

    #[test]
    fn classic_line_rate_numbers() {
        // 10G, 64B frames → 14.880952... Mpps.
        let pps = line_rate_pps(10_000_000_000, 64);
        assert!((pps - 14_880_952.38).abs() < 1.0, "{pps}");
        // 1518B frames → 812743.8 pps.
        let pps = line_rate_pps(10_000_000_000, 1518);
        assert!((pps - 812_743.82).abs() < 1.0, "{pps}");
    }

    #[test]
    fn goodput_grows_with_frame_size() {
        let small = line_rate_goodput_bps(10_000_000_000, 64);
        let large = line_rate_goodput_bps(10_000_000_000, 1518);
        assert!(small < large);
        // 64B: 64/84 of line rate ≈ 7.62 Gb/s.
        assert!((small / 1e9 - 7.619).abs() < 0.01, "{small}");
        // 1518B: 1518/1538 ≈ 9.87 Gb/s.
        assert!((large / 1e9 - 9.87).abs() < 0.01, "{large}");
    }

    #[test]
    fn truncate_shrinks_frame() {
        let mut p = Packet::zeroed(1518);
        p.truncate(64);
        assert_eq!(p.len(), 64);
        assert_eq!(p.frame_len(), 68);
    }

    #[test]
    #[should_panic]
    fn zeroed_rejects_tiny_frames() {
        let _ = Packet::zeroed(10);
    }
}
