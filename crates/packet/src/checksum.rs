//! The Internet checksum (RFC 1071) and transport pseudo-header sums.

use core::net::{Ipv4Addr, Ipv6Addr};

/// Ones-complement sum accumulator for the Internet checksum.
///
/// Feed arbitrary byte slices (odd lengths handled per RFC 1071) and
/// 16-bit words, then [`Checksum::finish`] to get the checksum field
/// value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Checksum::default()
    }

    /// Add a big-endian 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        self.sum += v as u32;
    }

    /// Add a 32-bit value as two 16-bit words.
    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16(v as u16);
    }

    /// Add a byte slice. A trailing odd byte is padded with zero, as the
    /// RFC specifies.
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.add_u16(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Fold carries and return the ones-complement of the sum — the value
    /// to place in the checksum field.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Checksum of a self-contained header (e.g. IPv4 header with its checksum
/// field zeroed).
pub fn internet_checksum(bytes: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish()
}

/// Verify a region whose checksum field is in place: the ones-complement
/// sum over everything (field included) must fold to zero.
pub fn verify(bytes: &[u8]) -> bool {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish() == 0
}

/// Accumulate the IPv4 pseudo-header for TCP/UDP (`proto` is the IP
/// protocol number, `len` the transport segment length).
pub fn pseudo_header_v4(c: &mut Checksum, src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) {
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(proto as u16);
    c.add_u16(len);
}

/// Accumulate the IPv6 pseudo-header for TCP/UDP/ICMPv6.
pub fn pseudo_header_v6(c: &mut Checksum, src: Ipv6Addr, dst: Ipv6Addr, next: u8, len: u32) {
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(len);
    c.add_u32(next as u32);
}

/// Checksum of a UDP/TCP segment over IPv4 (pseudo-header + segment with a
/// zeroed checksum field).
pub fn transport_checksum_v4(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> u16 {
    let mut c = Checksum::new();
    pseudo_header_v4(&mut c, src, dst, proto, segment.len() as u16);
    c.add_bytes(segment);
    c.finish()
}

/// Checksum of a UDP/TCP/ICMPv6 segment over IPv6.
pub fn transport_checksum_v6(src: Ipv6Addr, dst: Ipv6Addr, next: u8, segment: &[u8]) -> u16 {
    let mut c = Checksum::new();
    pseudo_header_v6(&mut c, src, dst, next, segment.len() as u32);
    c.add_bytes(segment);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example: 00 01 f2 03 f4 f5 f6 f7 → checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), !0xab00u16);
    }

    #[test]
    fn verify_accepts_correct_header() {
        // A real IPv4 header from RFC examples (checksum 0xb861 in place).
        let hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert!(verify(&hdr));
        let mut bad = hdr;
        bad[0] ^= 0x10;
        assert!(!verify(&bad));
    }

    #[test]
    fn zero_length_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn udp_v4_checksum_round_trip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        // UDP header (ports 1000→2000, len 12) + 4 payload bytes, checksum
        // field zeroed at offset 6..8.
        let mut seg = vec![
            0x03, 0xe8, 0x07, 0xd0, 0x00, 0x0c, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef,
        ];
        let ck = transport_checksum_v4(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        // Re-verify: sum including the field folds to zero.
        let mut c = Checksum::new();
        pseudo_header_v4(&mut c, src, dst, 17, seg.len() as u16);
        c.add_bytes(&seg);
        assert_eq!(c.finish(), 0);
    }

    #[test]
    fn v6_pseudo_header_differs_from_v4() {
        let seg = [0u8; 8];
        let v4 = transport_checksum_v4(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            17,
            &seg,
        );
        let v6 = transport_checksum_v6(
            Ipv6Addr::new(1, 2, 3, 4, 5, 6, 7, 8),
            Ipv6Addr::LOCALHOST,
            17,
            &seg,
        );
        assert_ne!(v4, v6);
    }
}
