//! Ethernet (MAC) addresses.

use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (never legitimately on the wire; used as a
    /// placeholder).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from raw bytes.
    pub const fn new(b: [u8; 6]) -> Self {
        MacAddr(b)
    }

    /// A locally-administered unicast address derived from a small index,
    /// in the style of the smoltcp examples: `02:00:00:00:00:xx`.
    pub const fn local(index: u8) -> Self {
        MacAddr([0x02, 0, 0, 0, 0, index])
    }

    /// Raw bytes.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True if the group bit (I/G, least-significant bit of the first
    /// octet) is set — broadcast or multicast.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for a unicast address.
    pub fn is_unicast(self) -> bool {
        !self.is_multicast()
    }

    /// True if the locally-administered bit is set.
    pub fn is_local(self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

/// Error parsing a MAC address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid MAC address (expected aa:bb:cc:dd:ee:ff)")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, ParseMacError> {
        let mut bytes = [0u8; 6];
        let mut parts = s.split(':');
        for b in bytes.iter_mut() {
            let p = parts.next().ok_or(ParseMacError)?;
            if p.len() != 2 {
                return Err(ParseMacError);
            }
            *b = u8::from_str_radix(p, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let m = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert_eq!("de:ad:be:ef:00:01".parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:zz:01".parse::<MacAddr>().is_err());
        assert!("dead:beef:0001".parse::<MacAddr>().is_err());
    }

    #[test]
    fn classification_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let uni = MacAddr::local(7);
        assert!(uni.is_unicast());
        assert!(uni.is_local());
        let mcast = MacAddr::new([0x01, 0x00, 0x5e, 0, 0, 1]);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_broadcast());
    }

    #[test]
    fn local_helper_sets_index() {
        assert_eq!(MacAddr::local(3).octets(), [0x02, 0, 0, 0, 0, 3]);
    }
}
