//! Packet hashing: CRC-32, Toeplitz, and the flow-key word hasher.
//!
//! The OSNT monitor can replace a cut-away payload with a **hash** of the
//! original packet so the host can still correlate and de-duplicate thinned
//! captures. We provide the two hashes hardware commonly implements:
//! CRC-32 (IEEE 802.3, as in the FCS) over arbitrary bytes, and the
//! Toeplitz hash over the 5-tuple (as used by RSS NICs for flow steering).
//!
//! [`FxHasher64`] is different in kind: not a wire-format hash but the
//! in-memory hasher the classification structures key their tables with.
//! Masked [`crate::FlowKey`] words are already well-mixed machine words,
//! so a multiply-rotate fold (the rustc/Firefox "Fx" recipe) beats
//! SipHash by an order of magnitude at identical lookup behaviour —
//! exactly the trade a flow table probing millions of wildcard entries
//! per second wants. It is **not** DoS-hardened; use it only for keys a
//! simulation controls, never for untrusted wire input.

use crate::flow::FiveTuple;
use core::hash::{BuildHasherDefault, Hasher};
use core::net::IpAddr;

/// CRC-32 (IEEE 802.3 polynomial, reflected, init all-ones) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xffff_ffff, bytes) ^ 0xffff_ffff
}

/// Byte-at-a-time lookup table for the reflected IEEE polynomial,
/// generated at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32: feed `state` (start with `0xffff_ffff`) and XOR the
/// final state with `0xffff_ffff`.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC32_TABLE[((state ^ b as u32) & 0xff) as usize];
    }
    state
}

/// The Fx multiply constant (π's fractional bits, as used by rustc).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic word hasher for flow-key
/// material (the rustc "FxHash" recipe: rotate, xor, multiply per word).
///
/// Designed for [`std::collections::HashMap`]s keyed on masked
/// [`crate::FlowKey`] words: every `write_u64` folds one word in three
/// ALU ops, so hashing a full 8-word key costs ~24 ops where SipHash
/// costs hundreds. Deterministic across processes and platforms (no
/// random state), which the repo's digest-pinned experiments require.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Chunked fold: full 8-byte words, then a zero-padded tail. Keys
        // of differing lengths are already distinguished upstream (the
        // derived `Hash` of fixed-shape structs), so no length suffix.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, w: u64) {
        self.fold(w);
    }

    #[inline]
    fn write_u32(&mut self, w: u32) {
        self.fold(w as u64);
    }

    #[inline]
    fn write_u16(&mut self, w: u16) {
        self.fold(w as u64);
    }

    #[inline]
    fn write_u8(&mut self, w: u8) {
        self.fold(w as u64);
    }

    #[inline]
    fn write_usize(&mut self, w: usize) {
        self.fold(w as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`] — drop-in `HashMap` third parameter.
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// One-shot Fx hash of a word slice (the masked flow-key fast path).
#[inline]
pub fn fx_hash_words(words: &[u64]) -> u64 {
    let mut h = FxHasher64::default();
    for &w in words {
        h.fold(w);
    }
    h.finish()
}

/// The default 40-byte Toeplitz key from the Microsoft RSS specification
/// (the one every NIC datasheet quotes).
pub const MS_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Toeplitz hash of `input` under `key`. `key` must be at least
/// `input.len() + 4` bytes.
pub fn toeplitz(key: &[u8], input: &[u8]) -> u32 {
    assert!(
        key.len() >= input.len() + 4,
        "Toeplitz key too short: {} bytes for {} input bytes",
        key.len(),
        input.len()
    );
    let mut result: u32 = 0;
    // The sliding 32-bit window over the key, advanced one bit per input
    // bit.
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut next_key_bit = 32usize;
    for &byte in input {
        for bit in (0..8).rev() {
            if byte >> bit & 1 == 1 {
                result ^= window;
            }
            // Slide the window left by one bit, pulling in the next key
            // bit.
            let incoming = key[next_key_bit / 8] >> (7 - next_key_bit % 8) & 1;
            window = (window << 1) | incoming as u32;
            next_key_bit += 1;
        }
    }
    result
}

/// Toeplitz hash of a flow 5-tuple in the canonical RSS field order
/// (source IP, destination IP, source port, destination port). IPv4 and
/// IPv6 tuples use their respective address widths, exactly as RSS does.
pub fn toeplitz_five_tuple(key: &[u8], ft: &FiveTuple) -> u32 {
    let mut input = Vec::with_capacity(36);
    match (ft.src_ip, ft.dst_ip) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            input.extend_from_slice(&s.octets());
            input.extend_from_slice(&d.octets());
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            input.extend_from_slice(&s.octets());
            input.extend_from_slice(&d.octets());
        }
        _ => panic!("mixed address families in five-tuple"),
    }
    input.extend_from_slice(&ft.src_port.to_be_bytes());
    input.extend_from_slice(&ft.dst_port.to_be_bytes());
    toeplitz(key, &input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::net::Ipv4Addr;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn crc32_streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut state = 0xffff_ffff;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xffff_ffff, crc32(data));
    }

    #[test]
    fn toeplitz_microsoft_test_vector() {
        // From the MSDN "Verifying the RSS Hash Calculation" examples:
        // 66.9.149.187:2794 -> 161.142.100.80:1766 hashes to 0x51ccc178.
        let ft = FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::new(66, 9, 149, 187)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(161, 142, 100, 80)),
            protocol: 6,
            src_port: 2794,
            dst_port: 1766,
        };
        assert_eq!(toeplitz_five_tuple(&MS_RSS_KEY, &ft), 0x51cc_c178);
    }

    #[test]
    fn toeplitz_microsoft_second_vector() {
        // 199.92.111.2:14230 -> 65.69.140.83:4739 → 0xc626b0ea.
        let ft = FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::new(199, 92, 111, 2)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(65, 69, 140, 83)),
            protocol: 6,
            src_port: 14230,
            dst_port: 4739,
        };
        assert_eq!(toeplitz_five_tuple(&MS_RSS_KEY, &ft), 0xc626_b0ea);
    }

    #[test]
    fn different_flows_hash_differently() {
        let a = FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            protocol: 17,
            src_port: 1,
            dst_port: 2,
        };
        let mut b = a;
        b.src_port = 3;
        assert_ne!(
            toeplitz_five_tuple(&MS_RSS_KEY, &a),
            toeplitz_five_tuple(&MS_RSS_KEY, &b)
        );
    }

    #[test]
    #[should_panic(expected = "key too short")]
    fn short_key_panics() {
        let _ = toeplitz(&[0u8; 8], &[0u8; 8]);
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let words = [1u64, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(fx_hash_words(&words), fx_hash_words(&words));
        // Single-bit key differences must not collide (sanity, not a
        // cryptographic claim).
        let mut seen = std::collections::HashSet::new();
        for bit in 0..64 {
            let mut w = words;
            w[3] ^= 1 << bit;
            assert!(seen.insert(fx_hash_words(&w)), "collision at bit {bit}");
        }
        assert_ne!(fx_hash_words(&words), fx_hash_words(&words[..7]));
    }

    #[test]
    fn fx_hasher_write_matches_word_fold() {
        // Byte-stream writes of whole little-endian words must agree
        // with the word fold, so derived `Hash` impls and the one-shot
        // helper land in the same buckets.
        let words = [0xdead_beef_0123_4567u64, 42, u64::MAX];
        let mut h = FxHasher64::default();
        for w in words {
            h.write(&w.to_le_bytes());
        }
        assert_eq!(h.finish(), fx_hash_words(&words));
    }
}
