//! Zero-copy packet header parsing.
//!
//! [`ParsedPacket`] walks a frame once, recording the byte offset of each
//! layer and decoding the fields the rest of OSNT-rs needs (MACs,
//! EtherType, IPs, protocol, ports). It deliberately does **not** validate
//! transport checksums — the monitor's filter datapath, like the hardware
//! it models, matches on header fields at line rate and leaves payload
//! integrity to the host.

use crate::ethernet::{ethertype, EthernetHeader};
use crate::flow::FiveTuple;
use crate::ipv4::Ipv4Header;
use crate::ipv6::Ipv6Header;
use crate::mac::MacAddr;
use crate::vlan::VlanTag;
use core::fmt;
use core::net::IpAddr;

/// Why a frame (or header) could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Not enough bytes for the header of `layer`.
    Truncated {
        /// Protocol layer that was being parsed.
        layer: &'static str,
        /// Bytes the header requires.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A header field selects a feature this implementation does not
    /// model.
    Unsupported {
        /// Protocol layer.
        layer: &'static str,
        /// Human-readable description.
        what: &'static str,
    },
    /// A verified checksum failed.
    BadChecksum {
        /// Protocol layer.
        layer: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated {
                layer,
                needed,
                have,
            } => {
                write!(f, "{layer}: truncated (need {needed} bytes, have {have})")
            }
            ParseError::Unsupported { layer, what } => write!(f, "{layer}: {what}"),
            ParseError::BadChecksum { layer } => write!(f, "{layer}: bad checksum"),
        }
    }
}

impl std::error::Error for ParseError {}

/// The network layer found in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3 {
    /// IPv4 with its parsed header.
    Ipv4(Ipv4Header),
    /// IPv6 with its parsed header.
    Ipv6(Ipv6Header),
    /// ARP (body not decoded here; see [`crate::arp`]).
    Arp,
    /// Anything else, tagged with the EtherType.
    Other(u16),
}

/// Transport-layer summary: just what filters and flow keys need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L4 {
    /// IP protocol / next header.
    pub protocol: u8,
    /// Source port (zero if the protocol has no ports or the frame is too
    /// short).
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

/// A parsed frame: layer offsets plus decoded headers.
#[derive(Debug, Clone)]
pub struct ParsedPacket<'a> {
    bytes: &'a [u8],
    /// The Ethernet header (always present if parsing got anywhere).
    pub ethernet: Option<EthernetHeader>,
    /// An 802.1Q tag if present.
    pub vlan: Option<VlanTag>,
    /// Network layer.
    pub l3: Option<L3>,
    /// Transport summary, when the network layer carries one.
    pub l4: Option<L4>,
    /// Byte offset of the L3 header within the frame.
    pub l3_offset: usize,
    /// Byte offset of the L4 header within the frame (when `l4` is set).
    pub l4_offset: usize,
}

impl<'a> ParsedPacket<'a> {
    /// Parse as much of `bytes` as possible. Parsing never fails outright:
    /// layers that cannot be decoded are simply absent, mirroring how the
    /// hardware filter treats short or alien frames (they fall through to
    /// the default rule).
    pub fn parse(bytes: &'a [u8]) -> Self {
        let mut out = ParsedPacket {
            bytes,
            ethernet: None,
            vlan: None,
            l3: None,
            l4: None,
            l3_offset: 0,
            l4_offset: 0,
        };
        let Ok(eth) = EthernetHeader::parse(bytes) else {
            return out;
        };
        out.ethernet = Some(eth);
        let mut offset = crate::ethernet::HEADER_LEN;
        let mut ethertype = eth.ethertype;
        if ethertype == ethertype::VLAN {
            let Ok(tag) = VlanTag::parse(&bytes[offset..]) else {
                return out;
            };
            out.vlan = Some(tag);
            offset += crate::vlan::TAG_LEN;
            ethertype = tag.inner_ethertype;
        }
        out.l3_offset = offset;
        match ethertype {
            ethertype::IPV4 => {
                let Ok(ip) = Ipv4Header::parse(&bytes[offset..]) else {
                    return out;
                };
                out.l3 = Some(L3::Ipv4(ip));
                out.l4_offset = offset + crate::ipv4::HEADER_LEN;
                out.l4 = Some(parse_l4(ip.protocol, &bytes[out.l4_offset..]));
            }
            ethertype::IPV6 => {
                let Ok(ip) = Ipv6Header::parse(&bytes[offset..]) else {
                    return out;
                };
                out.l3 = Some(L3::Ipv6(ip));
                out.l4_offset = offset + crate::ipv6::HEADER_LEN;
                out.l4 = Some(parse_l4(ip.next_header, &bytes[out.l4_offset..]));
            }
            ethertype::ARP => {
                out.l3 = Some(L3::Arp);
            }
            other => {
                out.l3 = Some(L3::Other(other));
            }
        }
        out
    }

    /// The raw frame bytes this view was parsed from.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Destination MAC, if an Ethernet header was present.
    pub fn dst_mac(&self) -> Option<MacAddr> {
        self.ethernet.map(|e| e.dst)
    }

    /// Source MAC.
    pub fn src_mac(&self) -> Option<MacAddr> {
        self.ethernet.map(|e| e.src)
    }

    /// The effective EtherType (inner type when VLAN-tagged).
    pub fn effective_ethertype(&self) -> Option<u16> {
        match (&self.vlan, &self.ethernet) {
            (Some(tag), _) => Some(tag.inner_ethertype),
            (None, Some(eth)) => Some(eth.ethertype),
            _ => None,
        }
    }

    /// Source IP address if the frame is IP.
    pub fn src_ip(&self) -> Option<IpAddr> {
        match self.l3 {
            Some(L3::Ipv4(h)) => Some(IpAddr::V4(h.src)),
            Some(L3::Ipv6(h)) => Some(IpAddr::V6(h.src)),
            _ => None,
        }
    }

    /// Destination IP address if the frame is IP.
    pub fn dst_ip(&self) -> Option<IpAddr> {
        match self.l3 {
            Some(L3::Ipv4(h)) => Some(IpAddr::V4(h.dst)),
            Some(L3::Ipv6(h)) => Some(IpAddr::V6(h.dst)),
            _ => None,
        }
    }

    /// IP protocol / next header, if the frame is IP.
    pub fn ip_protocol(&self) -> Option<u8> {
        match self.l3 {
            Some(L3::Ipv4(h)) => Some(h.protocol),
            Some(L3::Ipv6(h)) => Some(h.next_header),
            _ => None,
        }
    }

    /// The flow 5-tuple, if the frame is IP.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        let l4 = self.l4?;
        Some(FiveTuple {
            src_ip: self.src_ip()?,
            dst_ip: self.dst_ip()?,
            protocol: l4.protocol,
            src_port: l4.src_port,
            dst_port: l4.dst_port,
        })
    }

    /// The transport payload bytes (after the L4 header), when the frame
    /// carries UDP or TCP and is long enough.
    pub fn l4_payload(&self) -> Option<&'a [u8]> {
        let l4 = self.l4?;
        let hdr_len = match l4.protocol {
            crate::ipv4::protocol::UDP => crate::udp::HEADER_LEN,
            crate::ipv4::protocol::TCP => crate::tcp::HEADER_LEN,
            _ => return None,
        };
        self.bytes.get(self.l4_offset + hdr_len..)
    }
}

fn parse_l4(protocol: u8, bytes: &[u8]) -> L4 {
    let (src_port, dst_port) = match protocol {
        crate::ipv4::protocol::UDP | crate::ipv4::protocol::TCP if bytes.len() >= 4 => (
            u16::from_be_bytes([bytes[0], bytes[1]]),
            u16::from_be_bytes([bytes[2], bytes[3]]),
        ),
        _ => (0, 0),
    };
    L4 {
        protocol,
        src_port,
        dst_port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use core::net::Ipv4Addr;

    fn udp_frame() -> crate::Packet {
        PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .udp(5000, 9000)
            .payload(&[0xaa; 30])
            .build()
    }

    #[test]
    fn parses_udp_five_tuple() {
        let p = udp_frame();
        let v = p.parse();
        let ft = v.five_tuple().expect("five tuple");
        assert_eq!(ft.src_port, 5000);
        assert_eq!(ft.dst_port, 9000);
        assert_eq!(ft.protocol, crate::ipv4::protocol::UDP);
        assert_eq!(ft.src_ip, IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn vlan_tagged_frame_reports_inner_type() {
        let p = PacketBuilder::ethernet(MacAddr::local(1), MacAddr::local(2))
            .vlan(42)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(1, 2)
            .payload(&[0; 8])
            .build();
        let v = p.parse();
        assert_eq!(v.vlan.unwrap().vid, 42);
        assert_eq!(v.effective_ethertype(), Some(ethertype::IPV4));
        assert!(v.five_tuple().is_some());
    }

    #[test]
    fn short_frame_parses_to_nothing() {
        let v = ParsedPacket::parse(&[0u8; 5]);
        assert!(v.ethernet.is_none());
        assert!(v.five_tuple().is_none());
    }

    #[test]
    fn non_ip_frame_has_no_tuple() {
        let mut bytes = Vec::new();
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(1),
            ethertype: 0x88B5,
        }
        .write_to(&mut bytes);
        bytes.extend_from_slice(&[0u8; 46]);
        let v = ParsedPacket::parse(&bytes);
        assert_eq!(v.l3, Some(L3::Other(0x88B5)));
        assert!(v.five_tuple().is_none());
    }

    #[test]
    fn l4_payload_extraction() {
        let p = udp_frame();
        let v = p.parse();
        assert_eq!(v.l4_payload().unwrap(), &[0xaa; 30]);
    }

    #[test]
    fn truncated_transport_gives_zero_ports() {
        // IPv4 header claims UDP but the frame ends right after IP.
        let mut bytes = Vec::new();
        EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: ethertype::IPV4,
        }
        .write_to(&mut bytes);
        Ipv4Header::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            crate::ipv4::protocol::UDP,
            0,
        )
        .write_to(&mut bytes);
        let v = ParsedPacket::parse(&bytes);
        let l4 = v.l4.unwrap();
        assert_eq!((l4.src_port, l4.dst_port), (0, 0));
    }
}
