#![warn(missing_docs)]
//! # oflops-turbo — OpenFlow switch evaluation on the OSNT platform
//!
//! "OFLOPS-turbo is an holistic OpenFlow switch evaluation framework
//! which takes advantage of the OSNT high-precision measurement
//! capabilities. Using OFLOPS-turbo users can develop measurement modules
//! which can access information from multiple measurement channels (data
//! and control plane and SNMP) and measure the impact of the switch
//! OpenFlow implementation in data plane performance with high
//! precision."
//!
//! The reproduction keeps the same architecture:
//!
//! * [`controller`] — the OpenFlow controller endpoint: a simulated
//!   component speaking real OpenFlow 1.0 over a control link, driving a
//!   user-supplied [`MeasurementModule`] and logging every control-plane
//!   event with timestamps.
//! * [`harness`] — the standard testbed (paper Fig. 2): an OSNT card
//!   provides a stamped probe stream into the switch and captures both
//!   candidate output ports; the controller hangs off the switch's
//!   control channel.
//! * [`modules`] — the measurement modules used by the demo: flow
//!   insertion latency (control vs data plane, E6), flow modification
//!   latency and forwarding consistency during large updates (E7), and
//!   PACKET_IN (punt path) latency.

pub mod controller;
pub mod faults;
pub mod harness;
pub mod modules;

pub use controller::{
    ControlDir, ControlError, ControlErrorKind, ControlLogEntry, MeasurementModule, ModuleCtx,
    OflopsController, RetryPolicy,
};
pub use faults::{ControlFaultConfig, ControlFaultStats, FaultyControlChannel};
pub use harness::{Testbed, TestbedSpec};
