//! The standard OFLOPS-turbo testbed (paper Fig. 2).
//!
//! ```text
//!                         ┌────────────────────┐
//!   controller ──(1GbE)──▶│ ctrl   OF switch   │
//!                         │                    │
//!   OSNT gen port ───────▶│ of1            of2 │──▶ OSNT monitor A
//!                         │                of3 │──▶ OSNT monitor B
//!                         └────────────────────┘
//! ```
//!
//! The OSNT card supplies a stamped probe stream into OpenFlow port 1 and
//! captures whatever exits ports 2 and 3 with MAC-level timestamps; the
//! controller runs a [`crate::MeasurementModule`] over the control
//! channel. Modules correlate the three channels after the run.

use crate::controller::{
    ControlError, ControlLogEntry, MeasurementModule, OflopsController, RetryPolicy,
};
use crate::faults::{ControlFaultConfig, ControlFaultStats, FaultyControlChannel};
use osnt_core::{DeviceConfig, OsntDevice, PortRole};
use osnt_gen::{GenConfig, Workload};
use osnt_mon::{CaptureBuffer, HostPathConfig, MonConfig, MonStats};
use osnt_netsim::{LinkSpec, Sim, SimBuilder};
use osnt_switch::{OfSwitchConfig, OpenFlowSwitch};
use osnt_time::{DriftModel, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The OpenFlow wire-port numbers of the standard testbed.
pub mod ports {
    /// Probe ingress.
    pub const PROBE_IN: u16 = 1;
    /// Primary egress (monitor A).
    pub const OUT_A: u16 = 2;
    /// Alternate egress (monitor B).
    pub const OUT_B: u16 = 3;
}

/// Testbed configuration.
pub struct TestbedSpec {
    /// The switch under test.
    pub switch: OfSwitchConfig,
    /// Probe traffic (workload + pacing); `None` for control-plane-only
    /// modules.
    pub probe: Option<(Box<dyn Workload>, GenConfig)>,
    /// Card clock model.
    pub clock_model: DriftModel,
    /// Clock seed.
    pub clock_seed: u64,
    /// Scripted control-channel faults (`None` = clean channel).
    pub control_faults: Option<ControlFaultConfig>,
    /// Timeout/retry budget for tracked control requests.
    pub retry: RetryPolicy,
    /// Supervisor heartbeat: when set, the controller bumps this probe
    /// on every control event it processes, and the simulation's
    /// dispatch loop both heartbeats it and honours its abort flag.
    pub progress: Option<std::sync::Arc<osnt_time::ProgressProbe>>,
}

impl TestbedSpec {
    /// Control-plane-only testbed with the default switch.
    pub fn control_only() -> Self {
        TestbedSpec {
            switch: OfSwitchConfig::default(),
            probe: None,
            clock_model: DriftModel::ideal(),
            clock_seed: 1,
            control_faults: None,
            retry: RetryPolicy::default(),
            progress: None,
        }
    }
}

/// A built testbed, ready to run.
pub struct Testbed {
    /// The simulation.
    pub sim: Sim,
    /// Control-plane event log (timestamped at the controller).
    pub control_log: Rc<RefCell<Vec<ControlLogEntry>>>,
    /// Monitor A's capture buffer (switch port 2).
    pub capture_a: Rc<RefCell<CaptureBuffer>>,
    /// Monitor B's capture buffer (switch port 3).
    pub capture_b: Rc<RefCell<CaptureBuffer>>,
    /// Monitor A statistics.
    pub mon_a: Rc<RefCell<MonStats>>,
    /// Monitor B statistics.
    pub mon_b: Rc<RefCell<MonStats>>,
    /// Probe generator statistics (when a probe was configured).
    pub gen_stats: Option<Rc<RefCell<osnt_gen::GenStats>>>,
    /// Control-channel errors the controller recorded (timeouts,
    /// retries given up, decode failures). Empty on a clean channel.
    pub control_errors: Rc<RefCell<Vec<ControlError>>>,
    /// What the control-channel fault injector did (`None` when the
    /// spec scripted no faults).
    pub control_fault_stats: Option<Rc<RefCell<ControlFaultStats>>>,
}

impl Testbed {
    /// Assemble the standard testbed around a measurement module.
    ///
    /// # Panics
    ///
    /// Panics if `spec.control_faults` fails validation — scripting the
    /// faults is test code, and a bad schedule is a bug in the test.
    /// Use [`ControlFaultConfig::validate`] first to get a typed error.
    pub fn build(spec: TestbedSpec, module: Box<dyn MeasurementModule>) -> Testbed {
        let mut b = SimBuilder::new();
        let n_data = spec.switch.n_ports.max(3);
        let mut sw_cfg = spec.switch;
        sw_cfg.n_ports = n_data;
        let switch = OpenFlowSwitch::new(sw_cfg);
        let ctrl_port = switch.control_port();
        let kernel_ports = switch.kernel_ports();
        let sw = b.add_component("of-switch", Box::new(switch), kernel_ports);

        let (mut controller, control_log) = OflopsController::with_policy(module, spec.retry);
        let control_errors = controller.errors_handle();
        if let Some(probe) = &spec.progress {
            controller.attach_progress(std::sync::Arc::clone(probe));
        }
        let ctl = b.add_component("controller", Box::new(controller), 1);
        let control_fault_stats = match spec.control_faults {
            Some(cfg) => {
                let (channel, stats) =
                    FaultyControlChannel::new(cfg).expect("invalid control fault schedule");
                let fc = b.add_component("ctrl-faults", Box::new(channel), 2);
                b.connect(ctl, 0, fc, 0, LinkSpec::one_gig());
                b.connect(fc, 1, sw, ctrl_port, LinkSpec::one_gig());
                Some(stats)
            }
            None => {
                b.connect(ctl, 0, sw, ctrl_port, LinkSpec::one_gig());
                None
            }
        };

        let unlimited_mon = || MonConfig {
            host: HostPathConfig::unlimited(),
            ..MonConfig::default()
        };
        let mut roles = Vec::new();
        match spec.probe {
            Some((workload, cfg)) => roles.push(PortRole::generator(workload, cfg)),
            None => roles.push(PortRole::monitor_only()),
        }
        roles.push(PortRole::monitor_only().with_monitor(unlimited_mon()));
        roles.push(PortRole::monitor_only().with_monitor(unlimited_mon()));
        let device = OsntDevice::install(
            &mut b,
            DeviceConfig {
                clock_model: spec.clock_model,
                clock_seed: spec.clock_seed,
                gps: None,
                gps_signal: osnt_time::GpsSignal::always_on(),
                ports: roles,
            },
        );
        // OSNT port 0 → switch OF port 1; monitors on OF ports 2 and 3.
        b.connect(
            device.ports[0].id,
            0,
            sw,
            (ports::PROBE_IN - 1) as usize,
            LinkSpec::ten_gig(),
        );
        b.connect(
            device.ports[1].id,
            0,
            sw,
            (ports::OUT_A - 1) as usize,
            LinkSpec::ten_gig(),
        );
        b.connect(
            device.ports[2].id,
            0,
            sw,
            (ports::OUT_B - 1) as usize,
            LinkSpec::ten_gig(),
        );

        let gen_stats = device.ports[0].gen_stats.clone();
        let mut sim = b.build();
        if let Some(probe) = spec.progress {
            sim.attach_progress(probe);
        }
        Testbed {
            sim,
            control_log,
            capture_a: device.ports[1].capture.clone(),
            capture_b: device.ports[2].capture.clone(),
            mon_a: device.ports[1].mon_stats.clone(),
            mon_b: device.ports[2].mon_stats.clone(),
            gen_stats,
            control_errors,
            control_fault_stats,
        }
    }

    /// Run until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }
}
