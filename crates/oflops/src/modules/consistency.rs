//! Flow-modification latency and forwarding consistency during large
//! table updates (E7, demo Part II).
//!
//! Phase 1 installs `n_rules` /32 rules steering probe traffic to
//! monitor **A**. Phase 2, at a configured instant, rewrites all of them
//! (strict MODIFY) to monitor **B** and issues a barrier. While the
//! update propagates through the switch's CPU and into hardware, probe
//! packets keep flowing — each one lands at A (stale rule), at B (new
//! rule) or nowhere. The module quantifies:
//!
//! * per-rule **modification latency** (first packet at B),
//! * **stale forwarding after the barrier reply** — packets that the
//!   switch forwarded per the *old* rule after telling the controller
//!   the update was done ("forwarding consistency during large flow
//!   table updates", exactly the demo's closing measurement).

use crate::controller::{MeasurementModule, ModuleCtx};
use crate::harness::{ports, Testbed};
use crate::modules::probe::rule_ip;
use osnt_openflow::messages::{FlowMod, FlowModCommand, Message};
use osnt_openflow::{Action, OfMatch};
use osnt_time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared observable state of a running [`ConsistencyModule`].
#[derive(Debug, Default)]
pub struct ConsistencyState {
    /// When the MODIFY burst started.
    pub t_modify_start: Option<SimTime>,
    /// When the modify barrier reply arrived.
    pub t_barrier_reply: Option<SimTime>,
    /// xid of the modify barrier.
    pub barrier_xid: Option<u32>,
    /// Errors received.
    pub errors: u64,
}

enum Phase {
    InstallA,
    Settled,
    Modifying,
    Done,
}

/// The module.
pub struct ConsistencyModule {
    n_rules: usize,
    modify_at: SimTime,
    state: Rc<RefCell<ConsistencyState>>,
    phase: Phase,
    install_barrier: Option<u32>,
}

const TAG_MODIFY: u64 = 1;

impl ConsistencyModule {
    /// Modify `n_rules` rules at `modify_at`.
    pub fn new(n_rules: usize, modify_at: SimTime) -> (Self, Rc<RefCell<ConsistencyState>>) {
        let state = Rc::new(RefCell::new(ConsistencyState::default()));
        (
            ConsistencyModule {
                n_rules,
                modify_at,
                state: state.clone(),
                phase: Phase::InstallA,
                install_barrier: None,
            },
            state,
        )
    }
}

impl MeasurementModule for ConsistencyModule {
    fn on_ready(&mut self, ctx: &mut ModuleCtx<'_>) {
        ctx.send(Message::FlowMod(FlowMod::add(OfMatch::any(), 0, vec![])));
        for i in 0..self.n_rules {
            ctx.send(Message::FlowMod(FlowMod::add(
                OfMatch::ipv4_dst(rule_ip(i)),
                100,
                vec![Action::Output {
                    port: ports::OUT_A,
                    max_len: 0,
                }],
            )));
        }
        // Tracked: these barriers advance the phase machine; a lost
        // barrier would otherwise wedge the run (see the control-fault
        // suite). Retries reuse the xid, so the phase match still holds.
        let xid = ctx.send_tracked(Message::BarrierRequest);
        self.install_barrier = Some(xid);
    }

    fn on_message(&mut self, ctx: &mut ModuleCtx<'_>, message: &Message, xid: u32) {
        match (&self.phase, message) {
            (Phase::InstallA, Message::BarrierReply) if Some(xid) == self.install_barrier => {
                self.phase = Phase::Settled;
                let at = self.modify_at.max(ctx.now());
                ctx.schedule_at(at, TAG_MODIFY);
            }
            (Phase::Modifying, Message::BarrierReply)
                if Some(xid) == self.state.borrow().barrier_xid =>
            {
                self.state.borrow_mut().t_barrier_reply = Some(ctx.now());
                self.phase = Phase::Done;
            }
            (_, Message::Error { .. }) => {
                self.state.borrow_mut().errors += 1;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, tag: u64) {
        debug_assert_eq!(tag, TAG_MODIFY);
        self.state.borrow_mut().t_modify_start = Some(ctx.now());
        for i in 0..self.n_rules {
            let mut fm = FlowMod::add(
                OfMatch::ipv4_dst(rule_ip(i)),
                100,
                vec![Action::Output {
                    port: ports::OUT_B,
                    max_len: 0,
                }],
            );
            fm.command = FlowModCommand::ModifyStrict;
            ctx.send(Message::FlowMod(fm));
        }
        let xid = ctx.send_tracked(Message::BarrierRequest);
        self.state.borrow_mut().barrier_xid = Some(xid);
        self.phase = Phase::Modifying;
    }
}

/// Post-run analysis of a consistency run.
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    /// Rules modified.
    pub n_rules: usize,
    /// Barrier (control-plane) latency from modify start.
    pub barrier_latency: Option<SimDuration>,
    /// Per-rule data-plane modification latency: first packet at B after
    /// the modify started.
    pub activation: Vec<Option<SimDuration>>,
    /// Probe packets forwarded per the *old* rule (to A) after the
    /// barrier reply claimed the update complete.
    pub stale_after_barrier: u64,
    /// The latest stale packet's lag behind the barrier reply.
    pub max_stale_lag: Option<SimDuration>,
}

impl ConsistencyReport {
    /// Compute the report from the testbed and module state.
    pub fn analyze(
        testbed: &Testbed,
        state: &ConsistencyState,
        n_rules: usize,
    ) -> ConsistencyReport {
        let t_mod = state.t_modify_start;
        let t_bar = state.t_barrier_reply;
        // First packet per rule at B after the modify burst started.
        let mut first_b: Vec<Option<SimTime>> = vec![None; n_rules];
        for cap in &testbed.capture_b.borrow().packets {
            if let Some(t0) = t_mod {
                if cap.rx_true < t0 {
                    continue;
                }
            }
            let Some(i) = rule_index(&cap.packet, n_rules) else {
                continue;
            };
            let slot = &mut first_b[i];
            if slot.map(|s| cap.rx_true < s).unwrap_or(true) {
                *slot = Some(cap.rx_true);
            }
        }
        // Stale packets at A after the barrier reply.
        let mut stale = 0u64;
        let mut max_lag: Option<SimDuration> = None;
        if let Some(tb) = t_bar {
            for cap in &testbed.capture_a.borrow().packets {
                if cap.rx_true <= tb {
                    continue;
                }
                if rule_index(&cap.packet, n_rules).is_none() {
                    continue;
                }
                stale += 1;
                let lag = cap.rx_true - tb;
                if max_lag.map(|m| lag > m).unwrap_or(true) {
                    max_lag = Some(lag);
                }
            }
        }
        let activation = first_b
            .iter()
            .map(|t| match (t_mod, t) {
                (Some(a), Some(b)) => b.checked_duration_since(a),
                _ => None,
            })
            .collect();
        ConsistencyReport {
            n_rules,
            barrier_latency: match (t_mod, t_bar) {
                (Some(a), Some(b)) => Some(b - a),
                _ => None,
            },
            activation,
            stale_after_barrier: stale,
            max_stale_lag: max_lag,
        }
    }

    /// Latest modification latency among rules that switched over.
    pub fn max_activation(&self) -> Option<SimDuration> {
        self.activation.iter().flatten().max().copied()
    }
}

/// Map a captured probe frame back to its rule index.
fn rule_index(packet: &osnt_packet::Packet, n_rules: usize) -> Option<usize> {
    let Some(std::net::IpAddr::V4(dst)) = packet.parse().dst_ip() else {
        return None;
    };
    let o = dst.octets();
    if o[0] != 10 || o[1] != 1 {
        return None;
    }
    let v = u16::from_be_bytes([o[2], o[3]]) as usize;
    if v == 0 || v > n_rules {
        return None;
    }
    Some(v - 1)
}
