//! Sustained flow_mod churn: the table-update campaign (E15's wire-level
//! counterpart).
//!
//! Insertion-latency (E6) measures one burst; this module measures a
//! *steady state*: round after round of ADD + strict-DELETE flow_mods
//! against a bounded live-rule window, each round fenced by a tracked
//! barrier. Per-round barrier latency is the switch's sustained update
//! cost — on a real switch this is where O(n) flow-table rewrite cost
//! shows up as rounds slowing down with table occupancy, and where the
//! tuple-space engine's O(1) flow_mods keep it flat.
//!
//! The module is classifier-agnostic on purpose: run it twice with
//! `OfSwitchConfig { classifier: Linear | TupleSpace, .. }` and the
//! control logs must be byte-identical (the engines differ only in host
//! cost, which the simulation does not observe unless
//! `lookup_per_unit` is configured).

use crate::controller::{MeasurementModule, ModuleCtx};
use crate::harness::ports;
use crate::modules::probe::rule_ip;
use osnt_openflow::messages::{FlowMod, Message};
use osnt_openflow::{Action, OfMatch};
use osnt_time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared observable state of a running [`FlowChurnModule`].
#[derive(Debug, Default)]
pub struct FlowChurnState {
    /// When the first churn round started.
    pub t_start: Option<SimTime>,
    /// Per-round barrier latency (round start → barrier reply).
    pub round_latencies: Vec<SimDuration>,
    /// FLOW_MODs sent (adds + deletes, excluding the quiesce rule).
    pub mods_sent: u64,
    /// Errors received (table full etc.).
    pub errors: u64,
    /// All rounds completed.
    pub done: bool,
}

impl FlowChurnState {
    /// Sustained flow_mod throughput over the churn phase, mods per
    /// simulated second (None until at least one round finished).
    pub fn mods_per_sec(&self, now_done: SimTime) -> Option<f64> {
        let t0 = self.t_start?;
        if self.round_latencies.is_empty() || now_done <= t0 {
            return None;
        }
        let secs = (now_done - t0).as_ps() as f64 / 1e12;
        Some(self.mods_sent as f64 / secs)
    }
}

enum Phase {
    Baseline,
    Churning,
    Done,
}

/// The module: `rounds` rounds of `batch` ADDs (fresh /32 rules), with
/// strict DELETEs holding the live-rule count at `window`, each round
/// fenced by a tracked barrier.
pub struct FlowChurnModule {
    rounds: usize,
    batch: usize,
    window: usize,
    start_at: SimTime,
    state: Rc<RefCell<FlowChurnState>>,
    phase: Phase,
    next_add: usize,
    next_del: usize,
    round_started: Option<SimTime>,
    barrier_xid: Option<u32>,
    baseline_xid: Option<u32>,
}

const TAG_ROUND: u64 = 1;

impl FlowChurnModule {
    /// `rounds` rounds of `batch` mods starting at `start_at`, holding
    /// at most `window` live rules. Returns the module and its state.
    pub fn new(
        rounds: usize,
        batch: usize,
        window: usize,
        start_at: SimTime,
    ) -> (Self, Rc<RefCell<FlowChurnState>>) {
        let state = Rc::new(RefCell::new(FlowChurnState::default()));
        (
            FlowChurnModule {
                rounds,
                batch,
                window,
                start_at,
                state: state.clone(),
                phase: Phase::Baseline,
                next_add: 0,
                next_del: 0,
                round_started: None,
                barrier_xid: None,
                baseline_xid: None,
            },
            state,
        )
    }

    fn run_round(&mut self, ctx: &mut ModuleCtx<'_>) {
        let mut st = self.state.borrow_mut();
        if st.t_start.is_none() {
            st.t_start = Some(ctx.now());
        }
        self.round_started = Some(ctx.now());
        for _ in 0..self.batch {
            ctx.send(Message::FlowMod(FlowMod::add(
                OfMatch::ipv4_dst(rule_ip(self.next_add)),
                100,
                vec![Action::Output {
                    port: ports::OUT_A,
                    max_len: 0,
                }],
            )));
            self.next_add += 1;
            st.mods_sent += 1;
        }
        while self.next_add - self.next_del > self.window {
            ctx.send(Message::FlowMod(FlowMod::delete_strict(
                OfMatch::ipv4_dst(rule_ip(self.next_del)),
                100,
            )));
            self.next_del += 1;
            st.mods_sent += 1;
        }
        drop(st);
        self.barrier_xid = Some(ctx.send_tracked(Message::BarrierRequest));
        self.phase = Phase::Churning;
    }
}

impl MeasurementModule for FlowChurnModule {
    fn on_ready(&mut self, ctx: &mut ModuleCtx<'_>) {
        // Quiesce the punt path, then fence before churning.
        ctx.send(Message::FlowMod(FlowMod::add(OfMatch::any(), 0, vec![])));
        self.baseline_xid = Some(ctx.send_tracked(Message::BarrierRequest));
    }

    fn on_message(&mut self, ctx: &mut ModuleCtx<'_>, message: &Message, xid: u32) {
        match (&self.phase, message) {
            (Phase::Baseline, Message::BarrierReply) if Some(xid) == self.baseline_xid => {
                ctx.schedule_at(self.start_at.max(ctx.now()), TAG_ROUND);
            }
            (Phase::Churning, Message::BarrierReply) if Some(xid) == self.barrier_xid => {
                let started = self.round_started.expect("round barrier without a round");
                let mut st = self.state.borrow_mut();
                st.round_latencies.push(ctx.now() - started);
                let finished = st.round_latencies.len();
                drop(st);
                if finished < self.rounds {
                    self.run_round(ctx);
                } else {
                    self.state.borrow_mut().done = true;
                    self.phase = Phase::Done;
                }
            }
            (_, Message::Error { .. }) => {
                self.state.borrow_mut().errors += 1;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, tag: u64) {
        debug_assert_eq!(tag, TAG_ROUND);
        self.run_round(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Testbed, TestbedSpec};
    use osnt_switch::{Classifier, OfSwitchConfig};

    fn churn_run(classifier: Classifier) -> (Rc<RefCell<FlowChurnState>>, String) {
        let (module, state) = FlowChurnModule::new(10, 16, 64, SimTime::from_ms(5));
        let spec = TestbedSpec {
            switch: OfSwitchConfig {
                classifier,
                honest_barrier: true,
                ..OfSwitchConfig::default()
            },
            ..TestbedSpec::control_only()
        };
        let mut tb = Testbed::build(spec, Box::new(module));
        tb.run_until(SimTime::from_ms(100));
        let log = format!("{:?}", tb.control_log.borrow());
        (state, log)
    }

    #[test]
    fn churn_completes_and_classifiers_are_indistinguishable() {
        let (lin, lin_log) = churn_run(Classifier::Linear);
        let (tup, tup_log) = churn_run(Classifier::TupleSpace);
        for st in [&lin, &tup] {
            let st = st.borrow();
            assert!(st.done, "all rounds completed");
            assert_eq!(st.round_latencies.len(), 10);
            assert_eq!(st.errors, 0);
            // 10 rounds × 16 adds + deletes keeping the window at 64.
            assert_eq!(st.mods_sent, 160 + (160 - 64));
            assert!(st.mods_per_sec(SimTime::from_ms(100)).unwrap() > 0.0);
        }
        // Same wire behaviour, to the picosecond, on either classifier.
        assert_eq!(lin.borrow().round_latencies, tup.borrow().round_latencies);
        assert_eq!(lin_log, tup_log);
    }
}
